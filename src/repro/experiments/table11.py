"""Table 11 — an AS's relationship-tagging community plan."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.exceptions import ExperimentError
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.topology.graph import Relationship


@register
class Table11Experiment(Experiment):
    """The published community plan of one tagging AS, next to the inferred meaning."""

    experiment_id = "table11"
    title = "Tagging communities of one AS (published plan vs. inferred semantics)"
    paper_reference = "Table 11, Appendix"
    requires = frozenset({Stage.TOPOLOGY, Stage.POLICIES, Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        engine = dataset.analysis
        tagging = engine.tagging_asns()
        if not tagging:
            raise ExperimentError("the dataset has no community-tagging Looking Glass AS")
        # Prefer a tagging AS that has providers (AS12859 in the paper is a
        # mid-size ISP), so all three ranges are exercised; break ties by the
        # number of visible neighbors.
        graph = dataset.ground_truth_graph
        asn = max(
            tagging,
            key=lambda a: (bool(graph.providers_of(a)), len(engine.glass_neighbors(a))),
        )
        plan = dataset.assignment.policies[asn].community_plan
        semantics = engine.infer_semantics(asn)
        result.headers = ["community range", "published meaning", "inferred meaning"]
        for relationship in (Relationship.PEER, Relationship.PROVIDER, Relationship.CUSTOMER):
            base = plan.base_for(relationship)
            bucket = base // 1000
            inferred = semantics.value_to_relationship.get(bucket)
            result.rows.append(
                [
                    f"{asn}:{base}-{asn}:{base + plan.range_size - 1}",
                    f"route received from {relationship.value}",
                    f"route received from {inferred.value}" if inferred else "(not inferred)",
                ]
            )
        result.notes.append(
            f"tagging AS under study: AS{asn} "
            f"({len(engine.glass_neighbors(asn))} neighbors visible)"
        )
        result.notes.append(
            "Paper Table 11 lists AS12859's published values: 1000-range = peers, "
            "2000-range = transit providers, 4000 = customers."
        )
        return result
