"""Fixture: one used suppression, one stale, one naming an unknown rule."""
import time


def stamp():
    return time.time()  # repro: noqa[DET002] -- fixture: wall-clock is the point here


def stale():
    return 1  # repro: noqa[DET002] -- nothing fires on this line


def unknown():
    return 2  # repro: noqa[NOPE999] -- no such rule
