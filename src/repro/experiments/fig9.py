"""Figure 9 — number of prefixes announced by each next-hop AS."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register


@register
class Figure9Experiment(Experiment):
    """Prefix counts by next-hop AS rank for three Looking Glass ASes."""

    experiment_id = "fig9"
    title = "Prefixes announced by the next-hop ASes, by rank"
    paper_reference = "Figure 9, Appendix"
    requires = frozenset({Stage.TOPOLOGY, Stage.ANALYSIS})

    #: How many Looking Glass ASes to plot (the paper shows AS1, AS3549 and
    #: AS8736 — two provider-free ASes and one with a provider).
    view_count = 3

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        engine = dataset.analysis
        tier1 = set(dataset.tier1_ases)
        looking_glass = engine.index.looking_glass_ases
        # Two provider-free (Tier-1) views plus one view of an AS that has
        # providers, mirroring the paper's three panels.
        tier1_views = [asn for asn in looking_glass if asn in tier1][:2]
        lower_views = [asn for asn in looking_glass if asn not in tier1][:1]
        views = tier1_views + lower_views
        result.headers = ["view AS", "has providers", "rank", "next-hop AS", "# prefixes"]
        graph = dataset.ground_truth_graph
        for asn in views[: self.view_count]:
            has_providers = bool(graph.providers_of(asn))
            ranked = engine.prefix_counts_by_rank(asn)
            for rank, (neighbor, count) in enumerate(ranked, start=1):
                result.rows.append(
                    [f"AS{asn}", "yes" if has_providers else "no", rank,
                     f"AS{neighbor}", count]
                )
        result.notes.append(
            "Paper Fig. 9: a provider announces ~the full table (the 100k+ outlier at "
            "AS8736); for provider-free ASes the top announcers are peers and the tail "
            "of 1-2 prefix announcers are customers."
        )
        return result
