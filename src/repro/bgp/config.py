"""Cisco-IOS-flavoured BGP configuration model, renderer and parser.

The paper's import-policy examples are IOS configuration snippets::

    router bgp 65503
     neighbor 192.1.250.23 remote-as 65504
     neighbor 192.1.250.23 route-map isp1 in
    access-list 1 permit 0.0.0.0 255.255.255.255
    route-map isp1 permit
     match ip address 1
     set local-preference 90

:class:`BgpConfig` models that configuration surface.  The synthetic
Internet's per-AS policies can be rendered to this text form (so the dataset
looks like something an operator would recognise) and parsed back, and the
import-policy inference can be validated against the parsed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.policy import (
    AccessList,
    MatchCondition,
    PolicyAction,
    PrefixList,
    RouteMap,
    RouteMapClause,
    SetActions,
)
from repro.exceptions import ConfigError
from repro.net.asn import ASN
from repro.net.prefix import Prefix, format_ipv4


@dataclass
class NeighborConfig:
    """Configuration of one BGP neighbor.

    Attributes:
        address: the neighbor's peering address (dotted quad).
        remote_as: the neighbor's AS number.
        route_map_in: name of the inbound route-map, if any.
        route_map_out: name of the outbound route-map, if any.
        description: free-form description (often the relationship).
    """

    address: str
    remote_as: ASN
    route_map_in: str | None = None
    route_map_out: str | None = None
    description: str | None = None


@dataclass
class BgpConfig:
    """A ``router bgp`` stanza plus the lists and route-maps it references."""

    local_as: ASN
    neighbors: dict[str, NeighborConfig] = field(default_factory=dict)
    networks: list[Prefix] = field(default_factory=list)
    route_maps: dict[str, RouteMap] = field(default_factory=dict)
    prefix_lists: dict[str, PrefixList] = field(default_factory=dict)
    access_lists: dict[str, AccessList] = field(default_factory=dict)

    # -- construction helpers --------------------------------------------------

    def add_neighbor(self, neighbor: NeighborConfig) -> "BgpConfig":
        """Register a neighbor (returns self for chaining)."""
        self.neighbors[neighbor.address] = neighbor
        return self

    def add_network(self, prefix: Prefix | str) -> "BgpConfig":
        """Add a locally originated network statement."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self.networks.append(prefix)
        return self

    def add_route_map(self, route_map: RouteMap) -> "BgpConfig":
        """Register a route-map (and the lists its clauses reference)."""
        self.route_maps[route_map.name] = route_map
        for clause in route_map.clauses:
            if clause.match.prefix_list is not None:
                self.prefix_lists[clause.match.prefix_list.name] = clause.match.prefix_list
            if clause.match.access_list is not None:
                self.access_lists[clause.match.access_list.name] = clause.match.access_list
        return self

    def inbound_route_map(self, neighbor_address: str) -> RouteMap | None:
        """Return the inbound route-map configured for a neighbor, if any."""
        neighbor = self.neighbors.get(neighbor_address)
        if neighbor is None or neighbor.route_map_in is None:
            return None
        return self.route_maps.get(neighbor.route_map_in)

    def neighbor_by_as(self, remote_as: ASN) -> NeighborConfig | None:
        """Return the first neighbor with the given remote AS, if any."""
        for neighbor in self.neighbors.values():
            if neighbor.remote_as == remote_as:
                return neighbor
        return None

    # -- rendering ------------------------------------------------------------------

    def render(self) -> str:
        """Render the configuration in IOS-like text form."""
        lines: list[str] = [f"router bgp {self.local_as}"]
        for prefix in self.networks:
            lines.append(f" network {format_ipv4(prefix.network)} mask {format_ipv4(prefix.mask)}")
        for neighbor in self.neighbors.values():
            lines.append(f" neighbor {neighbor.address} remote-as {neighbor.remote_as}")
            if neighbor.description:
                lines.append(f" neighbor {neighbor.address} description {neighbor.description}")
            if neighbor.route_map_in:
                lines.append(f" neighbor {neighbor.address} route-map {neighbor.route_map_in} in")
            if neighbor.route_map_out:
                lines.append(f" neighbor {neighbor.address} route-map {neighbor.route_map_out} out")
        lines.append("!")
        for access_list in self.access_lists.values():
            for action, address, wildcard in access_list.entries:
                lines.append(
                    f"access-list {access_list.name} {action} "
                    f"{format_ipv4(address)} {format_ipv4(wildcard)}"
                )
        for prefix_list in self.prefix_lists.values():
            for index, entry in enumerate(prefix_list.entries, start=1):
                suffix = ""
                if entry.ge is not None:
                    suffix += f" ge {entry.ge}"
                if entry.le is not None:
                    suffix += f" le {entry.le}"
                lines.append(
                    f"ip prefix-list {prefix_list.name} seq {index * 5} "
                    f"{entry.action} {entry.prefix}{suffix}"
                )
        lines.append("!")
        for route_map in self.route_maps.values():
            for clause in route_map.clauses:
                lines.append(f"route-map {route_map.name} {clause.action} {clause.sequence}")
                lines.extend(self._render_clause_body(clause))
        lines.append("!")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_clause_body(clause: RouteMapClause) -> list[str]:
        lines: list[str] = []
        match = clause.match
        if match.access_list is not None:
            lines.append(f" match ip address {match.access_list.name}")
        if match.prefix_list is not None:
            lines.append(f" match ip address prefix-list {match.prefix_list.name}")
        if match.community_list is not None:
            lines.append(f" match community {match.community_list.name}")
        if match.next_hop_as is not None:
            lines.append(f" match as-path neighbor {match.next_hop_as}")
        actions = clause.set_actions
        if actions.local_pref is not None:
            lines.append(f" set local-preference {actions.local_pref}")
        if actions.med is not None:
            lines.append(f" set metric {actions.med}")
        if actions.prepend is not None:
            asn, count = actions.prepend
            lines.append(" set as-path prepend " + " ".join([str(asn)] * count))
        if actions.add_communities:
            rendered = " ".join(str(c) for c in actions.add_communities)
            lines.append(f" set community {rendered} additive")
        return lines

    # -- parsing -----------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "BgpConfig":
        """Parse IOS-like configuration text produced by :meth:`render`.

        The parser accepts the subset of IOS syntax the paper's examples use;
        unknown lines raise :class:`~repro.exceptions.ConfigError` so silent
        misconfiguration cannot slip into experiments.
        """
        config: BgpConfig | None = None
        current_route_map: RouteMap | None = None
        current_clause: RouteMapClause | None = None
        prefix_lists: dict[str, PrefixList] = {}
        access_lists: dict[str, AccessList] = {}

        for raw_line in text.splitlines():
            line = raw_line.rstrip()
            stripped = line.strip()
            if not stripped or stripped == "!":
                continue
            tokens = stripped.split()
            if tokens[0] == "router" and tokens[1] == "bgp":
                config = cls(local_as=int(tokens[2]))
                current_route_map = None
                current_clause = None
            elif tokens[0] == "neighbor":
                if config is None:
                    raise ConfigError("neighbor statement before 'router bgp'")
                cls._parse_neighbor_line(config, tokens)
            elif tokens[0] == "network":
                if config is None:
                    raise ConfigError("network statement before 'router bgp'")
                prefix = cls._parse_network_line(tokens)
                config.networks.append(prefix)
            elif tokens[0] == "access-list":
                name = tokens[1]
                access = access_lists.setdefault(name, AccessList(name=name))
                action = PolicyAction(tokens[2])
                if action is PolicyAction.PERMIT:
                    access.permit(tokens[3], tokens[4])
                else:
                    access.deny(tokens[3], tokens[4])
            elif tokens[0] == "ip" and tokens[1] == "prefix-list":
                cls._parse_prefix_list_line(prefix_lists, tokens)
            elif tokens[0] == "route-map":
                name = tokens[1]
                action = PolicyAction(tokens[2])
                sequence = int(tokens[3]) if len(tokens) > 3 else 10
                if config is None:
                    raise ConfigError("route-map statement before 'router bgp'")
                current_route_map = config.route_maps.setdefault(name, RouteMap(name=name))
                current_clause = RouteMapClause(action=action, sequence=sequence)
                current_route_map.add_clause(current_clause)
            elif tokens[0] == "match":
                if current_clause is None:
                    raise ConfigError(f"match outside route-map clause: {stripped!r}")
                cls._parse_match_line(current_clause, tokens, prefix_lists, access_lists)
            elif tokens[0] == "set":
                if current_clause is None:
                    raise ConfigError(f"set outside route-map clause: {stripped!r}")
                cls._parse_set_line(current_clause, tokens)
            else:
                raise ConfigError(f"unrecognised configuration line: {stripped!r}")

        if config is None:
            raise ConfigError("configuration contains no 'router bgp' stanza")
        config.prefix_lists.update(prefix_lists)
        config.access_lists.update(access_lists)
        return config

    @staticmethod
    def _parse_neighbor_line(config: "BgpConfig", tokens: list[str]) -> None:
        address = tokens[1]
        neighbor = config.neighbors.setdefault(
            address, NeighborConfig(address=address, remote_as=0)
        )
        if tokens[2] == "remote-as":
            neighbor.remote_as = int(tokens[3])
        elif tokens[2] == "description":
            neighbor.description = " ".join(tokens[3:])
        elif tokens[2] == "route-map":
            if tokens[4] == "in":
                neighbor.route_map_in = tokens[3]
            elif tokens[4] == "out":
                neighbor.route_map_out = tokens[3]
            else:
                raise ConfigError(f"bad route-map direction: {tokens[4]!r}")
        else:
            raise ConfigError(f"unrecognised neighbor option: {tokens[2]!r}")

    @staticmethod
    def _parse_network_line(tokens: list[str]) -> Prefix:
        from repro.net.prefix import parse_ipv4

        address = parse_ipv4(tokens[1])
        if len(tokens) >= 4 and tokens[2] == "mask":
            mask = parse_ipv4(tokens[3])
            length = bin(mask).count("1")
        else:
            length = 24
        return Prefix(address, length)

    @staticmethod
    def _parse_prefix_list_line(prefix_lists: dict[str, PrefixList], tokens: list[str]) -> None:
        # ip prefix-list NAME [seq N] permit|deny PREFIX [ge N] [le N]
        name = tokens[2]
        rest = tokens[3:]
        if rest and rest[0] == "seq":
            rest = rest[2:]
        action = PolicyAction(rest[0])
        prefix = Prefix.parse(rest[1])
        ge = le = None
        remainder = rest[2:]
        while remainder:
            if remainder[0] == "ge":
                ge = int(remainder[1])
            elif remainder[0] == "le":
                le = int(remainder[1])
            else:
                raise ConfigError(f"bad prefix-list suffix: {' '.join(remainder)!r}")
            remainder = remainder[2:]
        plist = prefix_lists.setdefault(name, PrefixList(name=name))
        if action is PolicyAction.PERMIT:
            plist.permit(prefix, ge=ge, le=le)
        else:
            plist.deny(prefix, ge=ge, le=le)

    @staticmethod
    def _parse_match_line(
        clause: RouteMapClause,
        tokens: list[str],
        prefix_lists: dict[str, PrefixList],
        access_lists: dict[str, AccessList],
    ) -> None:
        if tokens[1] == "ip" and tokens[2] == "address":
            if tokens[3] == "prefix-list":
                name = tokens[4]
                clause.match.prefix_list = prefix_lists.setdefault(name, PrefixList(name=name))
            else:
                name = tokens[3]
                clause.match.access_list = access_lists.setdefault(name, AccessList(name=name))
        elif tokens[1] == "as-path" and tokens[2] == "neighbor":
            clause.match.next_hop_as = int(tokens[3])
        elif tokens[1] == "community":
            from repro.bgp.policy import CommunityList

            clause.match.community_list = CommunityList(name=tokens[2])
        else:
            raise ConfigError(f"unrecognised match: {' '.join(tokens)!r}")

    @staticmethod
    def _parse_set_line(clause: RouteMapClause, tokens: list[str]) -> None:
        from repro.bgp.attributes import Community

        if tokens[1] == "local-preference":
            clause.set_actions.local_pref = int(tokens[2])
        elif tokens[1] == "metric":
            clause.set_actions.med = int(tokens[2])
        elif tokens[1] == "as-path" and tokens[2] == "prepend":
            asns = [int(token) for token in tokens[3:]]
            clause.set_actions.prepend = (asns[0], len(asns))
        elif tokens[1] == "community":
            values = [token for token in tokens[2:] if token != "additive"]
            clause.set_actions.add_communities = tuple(
                Community.parse(value) for value in values
            )
        else:
            raise ConfigError(f"unrecognised set action: {' '.join(tokens)!r}")


def example_import_config() -> BgpConfig:
    """Recreate the exact configuration shown in the paper (Section 2.2.1).

    Useful in tests and documentation: AS65503 peers with AS65504 and sets
    LOCAL_PREF 90 on every route received from it.
    """
    access = AccessList(name="1").permit("0.0.0.0", "255.255.255.255")
    route_map = RouteMap(name="isp1").permit(
        match=MatchCondition(access_list=access),
        set_actions=SetActions(local_pref=90),
    )
    config = BgpConfig(local_as=65503)
    config.add_neighbor(
        NeighborConfig(address="192.1.250.23", remote_as=65504, route_map_in="isp1")
    )
    config.add_route_map(route_map)
    return config
