"""Unit tests of the fast propagation core and the satellite bug fixes.

Covers, under *both* engines where behaviour must match:

* the ORIGIN-attribute regression in ``_same_route`` (a best-route change
  that differs only in ORIGIN must be re-announced),
* ``run_prefix`` returning the message count and truncation flag it used to
  discard, including the budget-truncation path,
* withdrawal cascades: an AS whose best route flips to a non-exportable one
  retracts its earlier announcements from providers and peers.
"""

import pytest

from repro.bgp.attributes import Origin
from repro.bgp.route import Route, originate
from repro.exceptions import SimulationError
from repro.net.allocator import AddressAllocator
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.fastpath import FastPropagationEngine, compile_topology
from repro.simulation.policies import ASPolicy, PolicyAssignment
from repro.simulation.propagation import PrefixRun, PropagationEngine
from repro.topology.generator import GeneratorParameters, SyntheticInternet
from repro.topology.graph import AnnotatedASGraph
from repro.topology.hierarchy import classify_tiers

O, C, E, X, P = 10, 20, 30, 40, 50

PREFIX = Prefix.parse("10.10.0.0/16")


def _internet(graph: AnnotatedASGraph, originated: dict[ASN, list[Prefix]]) -> SyntheticInternet:
    return SyntheticInternet(
        parameters=GeneratorParameters(),
        graph=graph,
        tiers=classify_tiers(graph),
        allocator=AddressAllocator(),
        originated=originated,
    )


@pytest.fixture
def cascade_setup():
    """AS X prefers its peer E over its customer C (atypical LOCAL_PREF).

    ::

            P
            |           (P provides X; X peers with E; C is X's customer;
            X --- E      O is multihomed under C and E and originates PREFIX)
            |     |
            C     |
             \\   |
               O-+
    """
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[(P, X), (X, C), (C, O), (E, O)],
        peer_peer=[(X, E)],
    )
    internet = _internet(graph, {O: [PREFIX]})
    assignment = PolicyAssignment()
    for asn in graph.ases():
        assignment.policies[asn] = ASPolicy(asn=asn)
    # The atypical preference: routes from peer E beat customer routes.
    assignment.policies[X].neighbor_local_pref[E] = 120
    return internet, assignment


class TestWithdrawalCascade:
    @pytest.mark.parametrize("engine_cls", [PropagationEngine, FastPropagationEngine])
    def test_flip_to_peer_route_retracts_upstream_announcements(
        self, cascade_setup, engine_cls
    ):
        internet, assignment = cascade_setup
        engine = engine_cls(internet, assignment, observed_ases=[P, X])
        run = engine.run_prefix(PREFIX, O)
        # X first learns the route via its customer C (exportable to
        # everyone), then via peer E with LOCAL_PREF 120: the best flips to a
        # peer route, which must not be exported to provider P or peer E.
        best = run[X].best
        assert best is not None and best.is_peer_route
        assert best.local_pref == 120
        assert run[X].announced_to == {C}
        # The cascade: P and E held X's earlier announcement and must have
        # processed the retraction.
        assert X not in run[P].candidates
        assert X not in run[E].candidates
        # C keeps X's announcement (a customer may still hear the route).
        assert X in run[C].candidates

    @pytest.mark.parametrize("engine_cls", [PropagationEngine, FastPropagationEngine])
    def test_fully_withdrawn_prefix_leaves_no_table_entry(
        self, cascade_setup, engine_cls
    ):
        """An observed AS whose candidates were all retracted records no
        entry at all — not an empty one (regression: the fast engine used to
        load an empty RibEntry where the legacy engine recorded nothing)."""
        internet, assignment = cascade_setup
        result = engine_cls(internet, assignment, observed_ases=[P]).run()
        table = result.table_of(P)
        assert len(table) == 0
        assert list(table.prefixes()) == []

    def test_both_engines_agree_on_the_cascade(self, cascade_setup):
        internet, assignment = cascade_setup
        legacy = PropagationEngine(internet, assignment, observed_ases=[P]).run_prefix(
            PREFIX, O
        )
        fast = FastPropagationEngine(
            internet, assignment, observed_ases=[P]
        ).run_prefix(PREFIX, O)
        assert fast.message_count == legacy.message_count
        assert fast.truncated == legacy.truncated
        assert sorted(fast.states) == sorted(legacy.states)
        for asn, state in legacy.states.items():
            assert fast[asn].candidates == state.candidates
            assert fast[asn].best == state.best
            assert fast[asn].announced_to == state.announced_to


class TestSameRouteOriginFix:
    def test_routes_differing_only_in_origin_are_not_the_same(self):
        base = originate(PREFIX, O).replace(origin=Origin.IGP)
        shifted = base.replace(origin=Origin.EGP)
        assert base.export_signature != shifted.export_signature
        assert not PropagationEngine._same_route(base, shifted)

    def test_identical_routes_are_the_same(self):
        base = originate(PREFIX, O)
        assert PropagationEngine._same_route(base, base.replace())
        assert not PropagationEngine._same_route(base, None)

    def test_export_signature_covers_the_wire_attributes(self):
        route = Route(prefix=PREFIX, as_path=ASPath((C, O)), local_pref=90)
        as_path, communities, local_pref, med, origin = route.export_signature
        assert as_path == route.as_path
        assert communities == route.communities
        assert (local_pref, med, origin) == (90, route.med, route.origin)


class TestPrefixRun:
    @pytest.mark.parametrize("engine_cls", [PropagationEngine, FastPropagationEngine])
    def test_run_prefix_reports_messages_and_truncation(self, cascade_setup, engine_cls):
        internet, assignment = cascade_setup
        engine = engine_cls(internet, assignment, observed_ases=[P])
        run = engine.run_prefix(PREFIX, O)
        assert isinstance(run, PrefixRun)
        assert run.message_count > 0
        assert run.truncated is False

    @pytest.mark.parametrize("engine_cls", [PropagationEngine, FastPropagationEngine])
    def test_run_prefix_truncates_at_the_message_budget(self, cascade_setup, engine_cls):
        internet, assignment = cascade_setup
        budget = 3
        engine = engine_cls(
            internet, assignment, observed_ases=[P], message_budget_per_prefix=budget
        )
        run = engine.run_prefix(PREFIX, O)
        assert run.truncated is True
        # The message that trips the budget is counted but not processed.
        assert run.message_count == budget + 1

    @pytest.mark.parametrize("engine_cls", [PropagationEngine, FastPropagationEngine])
    def test_run_records_truncated_prefixes(self, cascade_setup, engine_cls):
        internet, assignment = cascade_setup
        engine = engine_cls(
            internet, assignment, observed_ases=[P], message_budget_per_prefix=3
        )
        result = engine.run()
        assert result.truncated_prefixes == [PREFIX]
        assert result.message_count == 4

    def test_run_prefix_is_mapping_compatible(self, cascade_setup):
        internet, assignment = cascade_setup
        run = PropagationEngine(internet, assignment, observed_ases=[P]).run_prefix(
            PREFIX, O
        )
        assert len(run) == len(run.states)
        assert set(run) == set(run.states)
        assert run.get(X) is run[X]
        assert run.get(999) is None


class TestCompiledTopology:
    def test_dense_ids_follow_asn_order(self, cascade_setup):
        internet, assignment = cascade_setup
        topology = compile_topology(internet, assignment)
        assert topology.asns == tuple(sorted(internet.graph.ases()))
        assert [topology.asns[i] for i in topology.observed] == sorted(internet.tier1)
        assert topology.as_count == len(internet.graph.ases())

    def test_seed_plans_cover_every_originated_prefix(self, cascade_setup):
        internet, assignment = cascade_setup
        topology = compile_topology(internet, assignment)
        assert topology.origin_tasks == [(topology.index_of[O], PREFIX)]
        seed = topology.seeds[(topology.index_of[O], PREFIX)]
        announced = {topology.asns[i] for i in seed.announced}
        assert announced == {C, E}

    def test_unknown_origin_is_rejected(self, cascade_setup):
        internet, assignment = cascade_setup
        engine = FastPropagationEngine(internet, assignment, observed_ases=[P])
        with pytest.raises(SimulationError):
            engine.run_prefix(PREFIX, 999)

    def test_adhoc_prefix_uses_the_same_export_policy(self, cascade_setup):
        """A prefix outside the compiled set still honours the origin policy."""
        internet, assignment = cascade_setup
        other = Prefix.parse("10.99.0.0/16")
        legacy = PropagationEngine(internet, assignment, observed_ases=[P]).run_prefix(
            other, O
        )
        fast = FastPropagationEngine(
            internet, assignment, observed_ases=[P]
        ).run_prefix(other, O)
        assert fast.message_count == legacy.message_count
        for asn, state in legacy.states.items():
            assert fast[asn].candidates == state.candidates
