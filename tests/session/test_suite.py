"""Tests for run_suite: determinism, parallelism, per-run instantiation."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.base import Experiment
from repro.experiments.registry import _REGISTRY, get_experiment
from repro.session import Stage, get_scenario, run_suite

#: Cheap experiments covering four distinct stage signatures.
CHEAP_IDS = ["fig9", "table1", "table2", "table5", "table9"]


@pytest.fixture(scope="module")
def study():
    return get_scenario("small").study()


class TestRunSuite:
    def test_runs_selected_experiments_in_id_order(self, study):
        report = run_suite(study, ["table5", "table1"])
        assert [r.experiment_id for r in report.experiments] == ["table1", "table5"]
        assert all(r.rows for r in report.experiments)
        assert all(r.timing >= 0 for r in report.experiments)

    def test_duplicate_ids_run_once(self, study):
        report = run_suite(study, ["table1", "table1", "table1"])
        assert [r.experiment_id for r in report.experiments] == ["table1"]

    def test_unknown_id_raises(self, study):
        with pytest.raises(ExperimentError):
            run_suite(study, ["table99"])

    def test_accepts_a_flat_dataset(self, study):
        report = run_suite(study.dataset(), ["table1"])
        assert report.get("table1").rows

    def test_get_unknown_report_raises(self, study):
        report = run_suite(study, ["table1"])
        with pytest.raises(ExperimentError):
            report.get("table5")

    def test_parallel_report_equals_serial(self, study):
        serial = run_suite(study, CHEAP_IDS, workers=1)
        parallel = run_suite(study, CHEAP_IDS, workers=4)
        assert serial.to_json(include_timing=False) == parallel.to_json(
            include_timing=False
        )
        assert parallel.workers == 4

    def test_workers_must_be_positive(self, study):
        with pytest.raises(ExperimentError):
            run_suite(study, ["table1"], workers=0)

    def test_json_is_parseable_and_schema_stable(self, study):
        report = run_suite(study, ["table1"], scenario="small")
        data = json.loads(report.to_json())
        assert data["scenario"] == "small"
        entry = data["experiments"][0]
        assert list(entry) == [
            "experiment_id",
            "title",
            "paper_reference",
            "headers",
            "rows",
            "notes",
            "timing",
        ]

    def test_timing_masked_json_is_deterministic(self, study):
        first = run_suite(study, ["table1"]).to_json(include_timing=False)
        second = run_suite(study, ["table1"]).to_json(include_timing=False)
        assert first == second


class _StatefulExperiment(Experiment):
    """Regression guard: a shared instance would leak `calls` across runs."""

    experiment_id = "stateful-test"
    title = "stateful"
    paper_reference = "-"
    requires = frozenset({Stage.TOPOLOGY})

    def __init__(self):
        self.calls = 0

    def run(self, dataset):
        self.calls += 1
        result = self._result()
        result.headers = ["calls"]
        result.rows = [[self.calls]]
        return result


class TestPerRunInstantiation:
    @pytest.fixture(autouse=True)
    def _register_stateful(self, monkeypatch):
        monkeypatch.setitem(_REGISTRY, "stateful-test", _StatefulExperiment)

    def test_get_experiment_returns_fresh_instances(self):
        assert get_experiment("stateful-test") is not get_experiment("stateful-test")

    def test_state_does_not_leak_across_suite_runs(self, study):
        first = run_suite(study, ["stateful-test"])
        second = run_suite(study, ["stateful-test"])
        assert first.get("stateful-test").rows == [[1]]
        assert second.get("stateful-test").rows == [[1]]


class TestRequiresEnforcement:
    # Sufficiency of every registered experiment's declared stages is covered
    # by tests/experiments/test_experiments.py, which runs each one against a
    # view restricted to its requires.

    def test_undeclared_stage_access_fails(self, study, monkeypatch):
        class Greedy(_StatefulExperiment):
            experiment_id = "greedy-test"
            requires = frozenset({Stage.TOPOLOGY})

            def run(self, dataset):
                dataset.collector  # not declared
                return self._result()

        monkeypatch.setitem(_REGISTRY, "greedy-test", Greedy)
        with pytest.raises(ExperimentError, match="observation"):
            run_suite(study, ["greedy-test"])
