"""Unit tests for repro.net.prefix."""

import pytest

from repro.exceptions import PrefixError
from repro.net.prefix import (
    Prefix,
    aggregate_prefixes,
    format_ipv4,
    parse_ipv4,
)


class TestParseFormat:
    def test_parse_ipv4_roundtrip(self):
        assert parse_ipv4("12.10.1.0") == (12 << 24) | (10 << 16) | (1 << 8)

    def test_format_ipv4_roundtrip(self):
        assert format_ipv4(parse_ipv4("192.1.250.23")) == "192.1.250.23"

    def test_parse_ipv4_rejects_short(self):
        with pytest.raises(PrefixError):
            parse_ipv4("10.0.0")

    def test_parse_ipv4_rejects_large_octet(self):
        with pytest.raises(PrefixError):
            parse_ipv4("10.0.0.256")

    def test_parse_ipv4_rejects_garbage(self):
        with pytest.raises(PrefixError):
            parse_ipv4("not.an.ip.addr")

    def test_format_ipv4_rejects_out_of_range(self):
        with pytest.raises(PrefixError):
            format_ipv4(1 << 33)


class TestPrefixConstruction:
    def test_parse_with_length(self):
        prefix = Prefix.parse("12.0.0.0/19")
        assert str(prefix) == "12.0.0.0/19"
        assert prefix.length == 19

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("80.96.180.1").length == 32

    def test_host_bits_are_cleared(self):
        assert str(Prefix.parse("10.1.1.7/24")) == "10.1.1.0/24"

    def test_from_octets(self):
        assert Prefix.from_octets(12, 10, 1, 0, 24) == Prefix.parse("12.10.1.0/24")

    def test_from_octets_rejects_bad_octet(self):
        with pytest.raises(PrefixError):
            Prefix.from_octets(300, 0, 0, 0, 8)

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/33")

    def test_rejects_non_numeric_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/abc")

    def test_immutability(self):
        prefix = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            prefix.length = 9


class TestPrefixProperties:
    def test_size(self):
        assert Prefix.parse("10.0.0.0/24").size == 256

    def test_broadcast(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert format_ipv4(prefix.broadcast) == "10.0.0.255"

    def test_default_route(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.size == 2**32
        assert default.contains(Prefix.parse("200.1.2.0/24"))

    def test_bits(self):
        assert Prefix.parse("128.0.0.0/2").bits() == "10"
        assert Prefix.parse("0.0.0.0/0").bits() == ""


class TestContainment:
    def test_contains_more_specific(self):
        assert Prefix.parse("12.0.0.0/19").contains(Prefix.parse("12.0.1.0/24"))

    def test_does_not_contain_disjoint(self):
        assert not Prefix.parse("12.0.0.0/19").contains(Prefix.parse("13.0.0.0/24"))

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("12.0.0.0/19").contains(Prefix.parse("12.0.0.0/8"))

    def test_contains_self(self):
        prefix = Prefix.parse("10.1.0.0/16")
        assert prefix.contains(prefix)

    def test_contains_address(self):
        assert Prefix.parse("10.1.0.0/16").contains_address("10.1.200.3")
        assert not Prefix.parse("10.1.0.0/16").contains_address("10.2.0.1")

    def test_is_proper_subnet_of(self):
        assert Prefix.parse("10.1.1.0/24").is_proper_subnet_of(Prefix.parse("10.1.0.0/16"))
        assert not Prefix.parse("10.1.0.0/16").is_proper_subnet_of(Prefix.parse("10.1.0.0/16"))


class TestAlgebra:
    def test_supernet_immediate(self):
        assert Prefix.parse("10.1.1.0/24").supernet() == Prefix.parse("10.1.0.0/23")

    def test_supernet_to_length(self):
        assert Prefix.parse("12.10.1.0/24").supernet(19) == Prefix.parse("12.10.0.0/19")

    def test_supernet_rejects_longer(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_subnets_default(self):
        children = list(Prefix.parse("10.0.0.0/8").subnets())
        assert children == [Prefix.parse("10.0.0.0/9"), Prefix.parse("10.128.0.0/9")]

    def test_subnets_cover_parent_exactly(self):
        parent = Prefix.parse("10.0.0.0/22")
        children = list(parent.subnets(24))
        assert len(children) == 4
        assert sum(child.size for child in children) == parent.size
        assert all(parent.contains(child) for child in children)

    def test_split_power_of_two(self):
        halves = Prefix.parse("12.0.0.0/19").split(2)
        assert [p.length for p in halves] == [20, 20]

    def test_split_rejects_non_power_of_two(self):
        with pytest.raises(PrefixError):
            Prefix.parse("12.0.0.0/19").split(3)

    def test_can_aggregate_with_sibling(self):
        left = Prefix.parse("10.0.0.0/25")
        right = Prefix.parse("10.0.0.128/25")
        assert left.can_aggregate_with(right)
        assert left.aggregate_with(right) == Prefix.parse("10.0.0.0/24")

    def test_cannot_aggregate_non_siblings(self):
        assert not Prefix.parse("10.0.0.0/25").can_aggregate_with(Prefix.parse("10.0.1.0/25"))

    def test_aggregate_with_rejects_non_siblings(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/25").aggregate_with(Prefix.parse("10.0.1.0/25"))

    def test_common_supernet(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.3.0/24")
        common = a.common_supernet(b)
        assert common.contains(a) and common.contains(b)
        assert common == Prefix.parse("10.0.0.0/22")

    def test_common_supernet_disjoint_is_short(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("200.0.0.0/8")
        assert a.common_supernet(b).length == 0


class TestOrderingAndHashing:
    def test_equality_and_hash(self):
        assert Prefix.parse("10.0.0.0/8") == Prefix.parse("10.0.0.1/8")
        assert hash(Prefix.parse("10.0.0.0/8")) == hash(Prefix.parse("10.0.0.1/8"))

    def test_sort_order_by_address_then_length(self):
        prefixes = [
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("9.0.0.0/8"),
        ]
        assert sorted(prefixes) == [
            Prefix.parse("9.0.0.0/8"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.0.0.0/16"),
        ]

    def test_repr_is_informative(self):
        assert "12.0.0.0/19" in repr(Prefix.parse("12.0.0.0/19"))


class TestAggregatePrefixes:
    def test_merges_siblings(self):
        result = aggregate_prefixes(
            [Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.0.128/25")]
        )
        assert result == [Prefix.parse("10.0.0.0/24")]

    def test_removes_covered(self):
        result = aggregate_prefixes(
            [Prefix.parse("10.0.0.0/16"), Prefix.parse("10.0.3.0/24")]
        )
        assert result == [Prefix.parse("10.0.0.0/16")]

    def test_cascading_merge(self):
        quarters = list(Prefix.parse("10.0.0.0/22").subnets(24))
        assert aggregate_prefixes(quarters) == [Prefix.parse("10.0.0.0/22")]

    def test_disjoint_untouched(self):
        prefixes = [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.2.0/24")]
        assert aggregate_prefixes(prefixes) == sorted(prefixes)

    def test_empty(self):
        assert aggregate_prefixes([]) == []
