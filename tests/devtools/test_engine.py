"""Engine mechanics: registry, scopes, suppressions, parse failures."""

import pytest

from repro.devtools.engine import (
    ModuleUnderLint,
    all_rules,
    dotted_name,
    get_rule,
    rule_ids,
)
from repro.devtools.lint import lint_paths


class TestRegistry:
    def test_three_families_with_at_least_two_rules_each(self):
        families = {}
        for rule in all_rules():
            families.setdefault(rule.family, []).append(rule.id)
        for family in ("DET", "CODEC", "POOL"):
            assert len(families[family]) >= 2, families

    def test_rules_sorted_and_unique(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_rule_ids_include_engine_rules(self):
        ids = rule_ids()
        assert "LINT001" in ids and "LINT002" in ids

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")


class TestScopes:
    def test_det_rules_scoped_to_deterministic_paths(self):
        rule = get_rule("DET001")
        assert rule.applies("src/repro/storage/codecs.py")
        assert rule.applies("src/repro/analysis/index.py")
        assert not rule.applies("src/repro/cli.py")
        assert not rule.applies("benchmarks/bench_engine.py")

    def test_content_gated_rules_apply_everywhere(self):
        for rule_id in ("CODEC001", "CODEC002", "POOL001", "POOL002"):
            assert get_rule(rule_id).applies_to is None
            assert get_rule(rule_id).applies("anything/at/all.py")


class TestSuppressions:
    def test_noqa_comment_parsing(self):
        module = ModuleUnderLint.parse(
            "x.py",
            "value = 1  # repro: noqa[DET001, DET002] -- because reasons\n",
        )
        (suppression,) = module.suppressions
        assert suppression.line == 1
        assert suppression.rules == ("DET001", "DET002")
        assert suppression.reason == "because reasons"

    def test_noqa_without_reason(self):
        module = ModuleUnderLint.parse("x.py", "value = 1  # repro: noqa[DET001]\n")
        (suppression,) = module.suppressions
        assert suppression.reason == ""

    def test_fixture_suppression_used_stale_and_unknown(self, lint_fixture):
        findings = lint_fixture("suppressed.py")
        # The wall-clock call is suppressed; the stale and unknown-rule
        # suppressions each produce one LINT001 bookkeeping finding.
        assert [finding.rule for finding in findings] == ["LINT001", "LINT001"]
        messages = "\n".join(finding.message for finding in findings)
        assert "matches no finding" in messages
        assert "unknown rule 'NOPE999'" in messages
        assert not any(finding.rule == "DET002" for finding in findings)


class TestParseFailures:
    def test_syntax_error_becomes_lint002(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([tmp_path], root=tmp_path)
        (finding,) = report.findings
        assert finding.rule == "LINT002"
        assert finding.path == "broken.py"
        assert not report.ok


class TestHelpers:
    def test_dotted_name(self):
        import ast

        expr = ast.parse("a.b.c(1)").body[0].value.func
        assert dotted_name(expr) == "a.b.c"
        call = ast.parse("f()(x)").body[0].value.func
        assert dotted_name(call) is None
