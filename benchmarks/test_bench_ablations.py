"""Benchmark: the DESIGN.md ablations.

Shape expectations:
* replacing ground-truth relationships with Gao-inferred ones moves the SA
  percentages only modestly (paper Section 4.3);
* best-routes-only and all-candidate-routes visibility nearly coincide;
* fewer collector vantage points identify fewer Case-3 outcomes.
"""


def test_bench_ablations(benchmark, run_experiment):
    result = run_experiment(benchmark, "ablations")
    rows = result.rows
    relationship_rows = [row for row in rows if row[0] == "relationships"]
    visibility_rows = [row for row in rows if row[0] == "visibility"]
    vantage_rows = [row for row in rows if row[0] == "vantage points"]
    assert relationship_rows and visibility_rows and vantage_rows

    # Relationship ablation: same provider, two variants, comparable values.
    by_provider = {}
    for _, provider, variant, value in relationship_rows:
        by_provider.setdefault(provider, {})[variant] = float(value.rstrip("%"))
    for provider, variants in by_provider.items():
        if len(variants) == 2:
            truth = variants["ground truth"]
            inferred = variants["Gao-inferred"]
            assert abs(truth - inferred) <= max(10.0, 0.75 * max(truth, inferred))

    # Visibility ablation: the two counts are close (within a factor of two).
    by_provider = {}
    for _, provider, variant, value in visibility_rows:
        by_provider.setdefault(provider, {})[variant] = int(value)
    for provider, variants in by_provider.items():
        best_only = variants["best routes (paper)"]
        all_routes = variants["all candidate routes"]
        assert all_routes <= best_only
        if best_only:
            assert all_routes >= 0.5 * best_only

    # Vantage ablation: identification does not increase as vantages shrink.
    identified = [float(value.split("%")[0]) for _, _, _, value in vantage_rows]
    assert identified[0] >= identified[-1]
