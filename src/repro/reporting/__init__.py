"""Plain-text rendering of tables and figure series.

The experiment harness regenerates every table and figure of the paper as
rows of numbers; this subpackage turns those rows into readable ASCII tables
(:mod:`repro.reporting.tables`) and simple ASCII charts / CSV series
(:mod:`repro.reporting.figures`) so that benchmark output can be compared
against the paper side by side.
"""

from repro.reporting.tables import ascii_table, format_percent
from repro.reporting.figures import ascii_bar_chart, ascii_series, series_to_csv

__all__ = [
    "ascii_bar_chart",
    "ascii_series",
    "ascii_table",
    "format_percent",
    "series_to_csv",
]
