"""Section 5.1.5 Case 3 — do customers announce SA prefixes to the provider's branch?"""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Case3Experiment(Experiment):
    """Fraction of SA-prefix origins announcing to the studied provider's branch."""

    experiment_id = "case3"
    title = "Selective announcing: exports toward the provider's customer branch"
    paper_reference = "Section 5.1.5, Case 3"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        engine = dataset.analysis
        result.headers = [
            "provider",
            "# SA prefixes",
            "% identified",
            "% announced to direct provider",
            "% not announced to direct provider",
        ]
        for provider in sorted(engine.sa_reports()):
            case3 = engine.case3(provider)
            result.rows.append(
                [
                    f"AS{provider}",
                    case3.sa_prefix_count,
                    format_percent(case3.percent_identified, 0),
                    format_percent(case3.percent_exported, 0),
                    format_percent(case3.percent_not_exported, 0),
                ]
            )
        result.notes.append(
            "Paper (AS1): ~90% of SA prefixes identifiable; among them ~21% of customers "
            "announce to the direct provider and ~79% do not."
        )
        return result
