"""DET family: fixtures fire on the dirty snippet and stay quiet on the clean."""


class TestDirtyFixture:
    def test_every_det_rule_fires(self, lint_fixture):
        findings = lint_fixture("det_dirty.py")
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        # Comprehension over a set-valued name plus a for loop over it.
        assert len(by_rule["DET001"]) == 2
        # id(), time.time() and random.random().
        assert len(by_rule["DET002"]) == 3
        # The os.listdir() comprehension.
        assert len(by_rule["DET003"]) == 1
        assert set(by_rule) == {"DET001", "DET002", "DET003"}

    def test_messages_name_the_expression(self, lint_fixture):
        findings = lint_fixture("det_dirty.py", rules=("DET001",))
        assert all("seen" in finding.message for finding in findings)


class TestCleanFixture:
    def test_clean_fixture_has_no_findings(self, lint_fixture):
        assert lint_fixture("det_clean.py") == []

    def test_seeded_random_instance_is_allowed(self, lint_source):
        findings = lint_source(
            "import random\n"
            "def sample(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.shuffle([1, 2])\n"
        )
        assert findings == []


class TestTargetedCases:
    def test_sorted_set_iteration_is_allowed(self, lint_source):
        assert lint_source("for x in sorted(set('ab')):\n    pass\n") == []

    def test_set_comprehension_result_is_exempt(self, lint_source):
        # A set built from a set is still unordered: no order leaked.
        assert lint_source("values = {v for v in set('ab')}\n") == []

    def test_dict_comprehension_over_set_fires(self, lint_source):
        findings = lint_source("values = {v: 1 for v in set('ab')}\n")
        assert [finding.rule for finding in findings] == ["DET001"]

    def test_set_union_of_set_named_value_fires(self, lint_source):
        findings = lint_source(
            "seen = set('ab')\nout = list(seen.union({'c'}))\n"
        )
        assert [finding.rule for finding in findings] == ["DET001"]

    def test_from_import_of_global_random_fires(self, lint_source):
        findings = lint_source("from random import shuffle\n")
        assert [finding.rule for finding in findings] == ["DET002"]

    def test_argless_datetime_now_fires(self, lint_source):
        findings = lint_source(
            "import datetime\nstamp = datetime.datetime.now()\n"
        )
        assert [finding.rule for finding in findings] == ["DET002"]

    def test_outside_scope_is_ignored(self, lint_source):
        findings = lint_source(
            "import time\nstamp = time.time()\n", path="benchmarks/bench.py"
        )
        assert findings == []

    def test_unsorted_rglob_fires_and_sorted_passes(self, lint_source):
        dirty = lint_source(
            "import pathlib\n"
            "for p in pathlib.Path('.').rglob('*.py'):\n    pass\n"
        )
        assert [finding.rule for finding in dirty] == ["DET003"]
        clean = lint_source(
            "import pathlib\n"
            "for p in sorted(pathlib.Path('.').rglob('*.py')):\n    pass\n"
        )
        assert clean == []
