"""Shared fixtures for the core-analysis tests.

The module-scoped ``dataset`` fixture is the small memoised study dataset;
building it once keeps the whole core test package fast while still
exercising the full generate → propagate → observe pipeline.
"""

import pytest

from repro.data.dataset import StudyDataset, small_dataset


@pytest.fixture(scope="package")
def dataset() -> StudyDataset:
    return small_dataset()


@pytest.fixture(scope="package")
def graph(dataset):
    return dataset.ground_truth_graph


@pytest.fixture(scope="package")
def glasses(dataset):
    return [dataset.looking_glass_of(asn) for asn in dataset.looking_glass_ases]


@pytest.fixture(scope="package")
def provider_tables(dataset):
    providers = dataset.providers_under_study(3)
    return {provider: dataset.result.table_of(provider) for provider in providers}


@pytest.fixture(scope="package")
def sa_reports(dataset, graph, provider_tables):
    from repro.core.export_policy import ExportPolicyAnalyzer

    analyzer = ExportPolicyAnalyzer(graph)
    return analyzer.analyze_providers(
        provider_tables, known_customer_prefixes=dataset.internet.originated
    )
