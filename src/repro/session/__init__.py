"""repro.session — the staged, cacheable Study API.

The session layer redesigns dataset assembly around six explicit stages
(``topology -> policies -> propagation -> observation -> irr -> analysis``),
each built lazily and cached by content-addressed keys:

* :class:`Study` — the staged pipeline; ``study.with_(policy=...)`` derives
  a variant that reuses every upstream artifact already built.
* :mod:`repro.session.scenarios` — named presets (``standard``, ``small``,
  ``dense-peering``, ``sparse-multihoming``, ``large``) plus seeded
  :class:`ScenarioFamily` samplers (``peering-density``, ``multihoming``,
  ...) whose samples are addressable as ``family@seed`` scenarios.
* :func:`run_suite` — executes experiments (each declaring the stages it
  ``requires``) concurrently over the shared read-only dataset and returns a
  structured, JSON-serializable :class:`SuiteReport`.

Quick tour::

    from repro.session import Study, StageCache, get_scenario, run_suite
    from repro.simulation.policies import PolicyParameters

    study = get_scenario("small").study(cache=StageCache())
    report = run_suite(study, ["table5", "table9"], workers=2)
    print(report.render())

    sweep = [study.with_(policy=PolicyParameters(seed=s)) for s in range(5)]
    datasets = [variant.dataset() for variant in sweep]   # topology built once
"""

from repro.session.cache import GLOBAL_CACHE, StageCache, StageStats, fingerprint
from repro.session.scenarios import (
    Scenario,
    ScenarioFamily,
    all_families,
    all_scenarios,
    family_names,
    get_family,
    get_scenario,
    register_family,
    register_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.session.stages import (
    ALL_STAGES,
    AnalysisParameters,
    IrrParameters,
    ObservationArtifact,
    ObservationParameters,
    PolicyStageArtifact,
    PropagationSettings,
    Stage,
    StageView,
    StudyConfig,
)
from repro.session.study import Study, study_from_dataset_parameters
from repro.session.suite import ExperimentReport, SuiteReport, run_suite
from repro.session.sweep import (
    SweepCase,
    SweepInterrupted,
    SweepReport,
    expand_case_specs,
    run_sweep,
)

__all__ = [
    "ALL_STAGES",
    "AnalysisParameters",
    "ExperimentReport",
    "GLOBAL_CACHE",
    "IrrParameters",
    "ObservationArtifact",
    "ObservationParameters",
    "PolicyStageArtifact",
    "PropagationSettings",
    "Scenario",
    "ScenarioFamily",
    "Stage",
    "StageCache",
    "StageStats",
    "StageView",
    "Study",
    "StudyConfig",
    "SuiteReport",
    "SweepCase",
    "SweepInterrupted",
    "SweepReport",
    "all_families",
    "all_scenarios",
    "family_names",
    "fingerprint",
    "get_family",
    "get_scenario",
    "register_family",
    "register_scenario",
    "resolve_scenario",
    "run_suite",
    "run_sweep",
    "expand_case_specs",
    "scenario_names",
    "study_from_dataset_parameters",
]
