"""Route announcements and the customer/peer/provider route classification.

The paper defines (Section 2.2.1):

    "we define a route received from a customer as *customer route*, and the
    AS path the route traversed as *customer path*; a route received from a
    provider as *provider route* ...; a route received from a peer as
    *peer route* ..."

:class:`Route` carries a prefix, the attribute set, bookkeeping about where
the route was learned (which neighbor AS, eBGP vs. iBGP, which ingress
router) and — once the receiving AS knows its relationship with that
neighbor — a :class:`NeighborKind` classification.  Routes are immutable;
policy application produces modified copies via :meth:`Route.replace`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.bgp.attributes import (
    DEFAULT_LOCAL_PREF,
    DEFAULT_MED,
    EMPTY_COMMUNITIES,
    CommunitySet,
    Origin,
)
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


class NeighborKind(enum.Enum):
    """The business relationship between an AS and the neighbor a route came from."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"
    SIBLING = "sibling"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RouteSource(enum.Enum):
    """How the route entered the router."""

    EBGP = "ebgp"
    IBGP = "ibgp"
    LOCAL = "local"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Route:
    """One BGP route to a prefix as seen by a particular AS (or router).

    Attributes:
        prefix: the destination prefix.
        as_path: the AS_PATH; ``as_path.origin_as`` is the originating AS and
            ``as_path.next_hop_as`` the neighbor AS the route was learned
            from (for non-local routes).
        local_pref: LOCAL_PREF assigned by the receiving AS's import policy.
        origin: the ORIGIN attribute.
        med: the MULTI_EXIT_DISC attribute.
        communities: communities attached to the route.
        source: eBGP / iBGP / locally originated.
        neighbor_kind: relationship with the neighbor the route was learned
            from, if known.
        learned_from: the neighbor AS the route was received from; equals
            ``as_path.next_hop_as`` for eBGP routes but is kept explicit so
            iBGP-reflected and locally originated routes stay well-defined.
        igp_metric: IGP distance to the egress router (decision step 6).
        router_id: identifier of the announcing router (decision step 7).
    """

    prefix: Prefix
    as_path: ASPath
    local_pref: int = DEFAULT_LOCAL_PREF
    origin: Origin = Origin.IGP
    med: int = DEFAULT_MED
    communities: CommunitySet = field(default=EMPTY_COMMUNITIES)
    source: RouteSource = RouteSource.EBGP
    neighbor_kind: NeighborKind = NeighborKind.UNKNOWN
    learned_from: ASN | None = None
    igp_metric: int = 0
    router_id: int = 0

    def __post_init__(self) -> None:
        if self.learned_from is None and self.as_path:
            object.__setattr__(self, "learned_from", self.as_path.next_hop_as)

    # -- classification helpers (paper Section 2.2.1 terminology) ------------

    @property
    def is_customer_route(self) -> bool:
        """``True`` if the route was learned from a customer."""
        return self.neighbor_kind is NeighborKind.CUSTOMER

    @property
    def is_peer_route(self) -> bool:
        """``True`` if the route was learned from a peer."""
        return self.neighbor_kind is NeighborKind.PEER

    @property
    def is_provider_route(self) -> bool:
        """``True`` if the route was learned from a provider."""
        return self.neighbor_kind is NeighborKind.PROVIDER

    @property
    def origin_as(self) -> ASN:
        """The AS that originated the prefix."""
        return self.as_path.origin_as

    @property
    def next_hop_as(self) -> ASN:
        """The neighbor AS the route was learned from."""
        if self.learned_from is not None:
            return self.learned_from
        return self.as_path.next_hop_as

    @property
    def is_local(self) -> bool:
        """``True`` for locally originated routes."""
        return self.source is RouteSource.LOCAL

    @property
    def export_signature(self) -> tuple:
        """The attributes a neighbor can observe about this route.

        Two best routes with equal signatures are indistinguishable on the
        wire, so replacing one with the other requires no re-announcement.
        The signature covers AS_PATH, communities, LOCAL_PREF, MED and ORIGIN
        — every attribute that either propagates to the neighbor or feeds the
        local decision process at the same step for both routes.
        """
        return (self.as_path, self.communities, self.local_pref, self.med, self.origin)

    # -- derivation ----------------------------------------------------------

    def replace(self, **changes: Any) -> "Route":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def with_local_pref(self, local_pref: int) -> "Route":
        """Return a copy with LOCAL_PREF set (the paper's import-policy knob)."""
        return self.replace(local_pref=local_pref)

    def with_communities(self, communities: CommunitySet) -> "Route":
        """Return a copy with the community set replaced."""
        return self.replace(communities=communities)

    def with_neighbor_kind(self, kind: NeighborKind) -> "Route":
        """Return a copy annotated with the neighbor relationship."""
        return self.replace(neighbor_kind=kind)

    def announced_by(self, asn: ASN, prepend: int = 1) -> "Route":
        """Return the route as it would be announced by ``asn`` to a neighbor.

        Prepends ``asn`` to the AS path (``prepend`` times), resets
        LOCAL_PREF (a non-transitive attribute) and marks the route as eBGP.
        MED and communities are preserved; export policies may strip or
        modify them afterwards.
        """
        return Route(
            prefix=self.prefix,
            as_path=self.as_path.prepend(asn, count=prepend),
            local_pref=DEFAULT_LOCAL_PREF,
            origin=self.origin,
            med=self.med,
            communities=self.communities,
            source=RouteSource.EBGP,
            neighbor_kind=NeighborKind.UNKNOWN,
            learned_from=asn,
        )

    def __str__(self) -> str:
        return (
            f"{self.prefix} via {self.as_path} "
            f"(lp={self.local_pref}, {self.neighbor_kind})"
        )


def originate(
    prefix: Prefix,
    origin_as: ASN,
    communities: CommunitySet = EMPTY_COMMUNITIES,
) -> Route:
    """Create the locally originated route an AS injects for one of its prefixes."""
    return Route(
        prefix=prefix,
        as_path=ASPath.origin_only(origin_as),
        source=RouteSource.LOCAL,
        communities=communities,
        learned_from=origin_as,
        origin=Origin.IGP,
    )
