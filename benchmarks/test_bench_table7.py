"""Benchmark: reproduce Table 7 (SA prefixes verified).

Paper shape: the overwhelming majority (95%-97.6%) of the studied providers'
SA prefixes pass the two-step verification.
"""


def test_bench_table7(benchmark, run_experiment):
    result = run_experiment(benchmark, "table7")
    percentages = [float(row[-1].rstrip("%")) for row in result.rows]
    assert percentages
    total_sa = sum(row[1] for row in result.rows)
    assert total_sa > 0
    assert sum(percentages) / len(percentages) > 80.0
