"""repro.storage — the durable artifact store behind the stage cache.

Three layers, bottom up:

* :mod:`repro.storage.packing` — a deterministic tag-length-value binary
  format over a closed primitive universe (no hash-ordered containers), so
  equal artifacts always serialize to equal bytes under any
  ``PYTHONHASHSEED``.
* :mod:`repro.storage.store` — :class:`DiskStore`, the content-addressed
  on-disk tier: atomic writes, versioned headers, mismatches read as
  misses.
* :mod:`repro.storage.codecs` — one :class:`~repro.storage.codecs.StageCodec`
  per pipeline stage (topology, policies, propagation, observation, irr,
  analysis) lowering its artifact to the primitive universe and raising it
  back with upstream references resolved through the decode context.

Version constants live in :mod:`repro.storage.versions`; every bump moves
the cache-key salt of :func:`repro.session.cache.fingerprint`, so stale
on-disk artifacts are never deserialized after a format change.

The codec module imports most of the pipeline and is therefore only pulled
in lazily (by :meth:`repro.session.study.Study` when a disk tier is
attached); import this package freely.
"""

from repro.storage.packing import pack, unpack
from repro.storage.store import DiskStore
from repro.storage.versions import CODEC_VERSIONS, SCHEMA_VERSION, version_salt

__all__ = [
    "CODEC_VERSIONS",
    "DiskStore",
    "SCHEMA_VERSION",
    "pack",
    "unpack",
    "version_salt",
]
