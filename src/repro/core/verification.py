"""Verification of inferred relationships and of SA prefixes.

Two verification steps from the paper:

* **Section 4.3 / Table 4** — verify the relationships between a tagging AS
  and its neighbors using the community semantics of the Appendix
  (implemented in :mod:`repro.core.community`); this module aggregates the
  per-AS results.
* **Section 5.1.3 / Table 7** — verify SA prefixes: (step 1) the provider's
  relationship with the best route's next-hop AS must be confirmed, and
  (step 2) the customer relationship between the provider and the origin AS
  must be confirmed — directly for direct customers, via an *active
  customer path* (some other prefix traverses the same provider→customer
  path) for indirect customers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.community import CommunityAnalyzer, CommunityVerificationResult
from repro.core.export_policy import SAPrefixReport
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.simulation.collector import CollectorTable, LookingGlass
from repro.simulation.policies import CommunityPlan
from repro.topology.graph import AnnotatedASGraph, Relationship


@dataclass
class SAVerificationResult:
    """Table 7 style row: verified SA prefixes of one provider.

    Attributes:
        provider: the provider AS.
        sa_prefix_count: number of SA prefixes inspected.
        verified_count: SA prefixes passing both verification steps.
        step1_failures: prefixes whose next-hop relationship could not be
            confirmed.
        step2_failures: prefixes whose customer path could not be confirmed.
    """

    provider: ASN
    sa_prefix_count: int = 0
    verified_count: int = 0
    step1_failures: int = 0
    step2_failures: int = 0

    @property
    def percent_verified(self) -> float:
        """Percentage of SA prefixes verified."""
        if self.sa_prefix_count == 0:
            return 100.0
        return 100.0 * self.verified_count / self.sa_prefix_count


class Verifier:
    """Aggregates community-based relationship verification and SA verification."""

    def __init__(
        self,
        relationships: AnnotatedASGraph,
        community_analyzer: CommunityAnalyzer | None = None,
    ) -> None:
        self.relationships = relationships
        self.community_analyzer = community_analyzer or CommunityAnalyzer()
        self._adjacency_cache: dict[int, set[tuple[ASN, ASN]]] = {}

    # -- Table 4 ----------------------------------------------------------------------

    def verify_relationships(
        self,
        glasses: Sequence[LookingGlass],
        published_plans: dict[ASN, CommunityPlan] | None = None,
    ) -> list[CommunityVerificationResult]:
        """Verify each tagging AS's neighbor relationships (Table 4)."""
        published_plans = published_plans or {}
        results: list[CommunityVerificationResult] = []
        for glass in glasses:
            semantics = self.community_analyzer.infer_semantics(
                glass, published_plan=published_plans.get(glass.asn)
            )
            if not semantics.value_to_relationship:
                continue
            results.append(
                self.community_analyzer.verify_relationships(
                    glass, semantics, self.relationships
                )
            )
        return results

    # -- Table 7 --------------------------------------------------------------------------

    def verify_sa_prefixes(
        self,
        report: SAPrefixReport,
        collector: CollectorTable,
        verified_neighbor_ases: set[ASN] | None = None,
    ) -> SAVerificationResult:
        """Verify the SA prefixes of one provider (Table 7).

        Args:
            report: the provider's SA-prefix report (Fig. 4 output).
            collector: the collector table used to test customer-path
                activeness.
            verified_neighbor_ases: neighbors of the provider whose
                relationship has been independently verified (e.g. via
                communities, Table 4).  When ``None``, the relationship graph
                itself is trusted for step 1 (the provider's direct edges).
        """
        result = SAVerificationResult(provider=report.provider)
        provider = report.provider
        for item in report.sa_prefixes:
            result.sa_prefix_count += 1
            # Step 1: the relationship with the next-hop AS must be known
            # (and, if an independent verification set is given, confirmed).
            step1_ok = item.next_hop_relationship is not None
            if verified_neighbor_ases is not None:
                step1_ok = step1_ok and item.next_hop_as in verified_neighbor_ases
            if not step1_ok:
                result.step1_failures += 1
                continue
            # Step 2: the customer relationship between provider and origin.
            if not item.customer_path:
                result.step2_failures += 1
                continue
            if len(item.customer_path) == 2:
                # Direct customer: the provider-customer edge itself.
                step2_ok = (
                    self.relationships.relationship(provider, item.origin_as)
                    is Relationship.CUSTOMER
                )
                if verified_neighbor_ases is not None:
                    step2_ok = step2_ok and item.origin_as in verified_neighbor_ases
            else:
                step2_ok = self._customer_path_is_active(item.customer_path, collector)
            if step2_ok:
                result.verified_count += 1
            else:
                result.step2_failures += 1
        return result

    def verify_many(
        self,
        reports: dict[ASN, SAPrefixReport],
        collector: CollectorTable,
        verified_neighbor_ases: dict[ASN, set[ASN]] | None = None,
    ) -> dict[ASN, SAVerificationResult]:
        """Verify SA prefixes for several providers."""
        verified_neighbor_ases = verified_neighbor_ases or {}
        return {
            provider: self.verify_sa_prefixes(
                report, collector, verified_neighbor_ases.get(provider)
            )
            for provider, report in reports.items()
        }

    # -- helpers ------------------------------------------------------------------------------

    def _customer_path_is_active(self, path: list[ASN], collector: CollectorTable) -> bool:
        """``True`` if the customer path is *active* in the observed tables.

        The customer path is provider-first; an AS path in a table is
        receiver-first, so ideally the whole customer path appears as a
        consecutive subsequence of some observed path (other prefixes really
        are routed along it — the paper's Step 2).  On the synthetic Internet
        customers originate far fewer prefixes than real ASes do, so a
        pairwise relaxation is also accepted: every consecutive
        provider→customer pair of the path (below the provider, whose own
        edge was already confirmed in step 1) is traversed, in the same
        order, by some observed path.  Each pair's adjacency is exactly the
        evidence the paper's export-rule argument uses to validate that pair.
        """
        needles = [tuple(path), tuple(path[1:])] if len(path) > 2 else [tuple(path)]
        observed = [
            as_path.deduplicate().asns for as_path in collector.paths_containing(path[-1])
        ]
        for collapsed in observed:
            for needle in needles:
                if not needle:
                    continue
                for start in range(len(collapsed) - len(needle) + 1):
                    if collapsed[start : start + len(needle)] == needle:
                        return True
        # Pairwise fallback: every edge of the path below the provider must be
        # traversed by some observed path in provider→customer order.
        pairs = list(zip(path[1:], path[2:])) if len(path) > 2 else list(zip(path, path[1:]))
        if not pairs:
            return False
        adjacency = self._observed_adjacency(collector)
        return all(pair in adjacency for pair in pairs)

    def _observed_adjacency(self, collector: CollectorTable) -> set[tuple[ASN, ASN]]:
        """All adjacent (nearer-receiver, nearer-origin) AS pairs observed in the collector."""
        cached = self._adjacency_cache.get(id(collector))
        if cached is not None:
            return cached
        adjacency: set[tuple[ASN, ASN]] = set()
        for entry in collector.entries:
            collapsed = entry.as_path.deduplicate().asns
            adjacency.update(zip(collapsed, collapsed[1:]))
        self._adjacency_cache[id(collector)] = adjacency
        return adjacency


def verified_neighbor_sets(
    results: Sequence[CommunityVerificationResult],
    semantics_neighbors: dict[ASN, set[ASN]] | None = None,
) -> dict[ASN, set[ASN]]:
    """Convenience: per tagging AS, the neighbors whose relationship was verified.

    Used to feed :meth:`Verifier.verify_many` with the Table 4 outcome.
    """
    sets: dict[ASN, set[ASN]] = {}
    for result in results:
        all_neighbors = (
            semantics_neighbors.get(result.asn, set()) if semantics_neighbors else set()
        )
        verified = set(all_neighbors) - set(result.mismatches)
        sets[result.asn] = verified
    return sets
