"""Policy atoms (paper Section 5.1.5, reference [21]; extension experiment).

Afek et al. define a *policy atom* as a maximal group of prefixes that share
the same AS path at every backbone vantage point.  The paper remarks that
its export-policy findings explain what creates atoms: origin ASes' routing
policies (notably selective announcement) determine which prefixes travel
together.  This module implements atom computation over the collector table
and measures how SA prefixes distribute across atoms, as an extension of the
paper's discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.collector import CollectorTable


@dataclass
class PolicyAtom:
    """One policy atom: prefixes indistinguishable by their path vectors.

    Attributes:
        signature: the (vantage AS, AS path) vector shared by the prefixes.
        prefixes: the member prefixes.
        origin_ases: the origin ASes of the member prefixes.
    """

    signature: tuple[tuple[ASN, ASPath], ...]
    prefixes: list[Prefix] = field(default_factory=list)
    origin_ases: set[ASN] = field(default_factory=set)

    @property
    def size(self) -> int:
        """Number of prefixes in the atom."""
        return len(self.prefixes)


@dataclass
class AtomStatistics:
    """Summary of an atom decomposition.

    Attributes:
        atom_count: number of atoms.
        prefix_count: number of prefixes covered.
        single_prefix_atoms: atoms containing exactly one prefix.
        largest_atom_size: size of the largest atom.
        atoms_with_sa_prefixes: atoms containing at least one SA prefix
            (only populated when SA prefixes are supplied).
        single_origin_atoms: atoms whose prefixes all share one origin AS.
    """

    atom_count: int = 0
    prefix_count: int = 0
    single_prefix_atoms: int = 0
    largest_atom_size: int = 0
    atoms_with_sa_prefixes: int = 0
    single_origin_atoms: int = 0

    @property
    def average_atom_size(self) -> float:
        """Mean number of prefixes per atom."""
        if self.atom_count == 0:
            return 0.0
        return self.prefix_count / self.atom_count


class PolicyAtomAnalyzer:
    """Computes policy atoms from a collector table."""

    def compute_atoms(self, collector: CollectorTable) -> list[PolicyAtom]:
        """Group prefixes by their (vantage, AS path) vector."""
        vectors: dict[Prefix, dict[ASN, ASPath]] = {}
        for entry in collector.entries:
            vectors.setdefault(entry.prefix, {})[entry.vantage] = entry.as_path
        atoms: dict[tuple[tuple[ASN, ASPath], ...], PolicyAtom] = {}
        for prefix, by_vantage in vectors.items():
            signature = tuple(sorted(by_vantage.items()))
            atom = atoms.get(signature)
            if atom is None:
                atom = PolicyAtom(signature=signature)
                atoms[signature] = atom
            atom.prefixes.append(prefix)
            if by_vantage:
                atom.origin_ases.add(next(iter(by_vantage.values())).origin_as)
        result = list(atoms.values())
        result.sort(key=lambda atom: atom.size, reverse=True)
        return result

    def statistics(
        self, atoms: list[PolicyAtom], sa_prefixes: set[Prefix] | None = None
    ) -> AtomStatistics:
        """Summarise an atom decomposition (optionally against a set of SA prefixes)."""
        stats = AtomStatistics(atom_count=len(atoms))
        for atom in atoms:
            stats.prefix_count += atom.size
            stats.largest_atom_size = max(stats.largest_atom_size, atom.size)
            if atom.size == 1:
                stats.single_prefix_atoms += 1
            if len(atom.origin_ases) == 1:
                stats.single_origin_atoms += 1
            if sa_prefixes and any(prefix in sa_prefixes for prefix in atom.prefixes):
                stats.atoms_with_sa_prefixes += 1
        return stats
