"""Per-stage binary codecs: pipeline artifacts ⇄ deterministic bytes.

Every stage of the :class:`~repro.session.study.Study` pipeline owns a
:class:`StageCodec` that can *lower* its artifact into the primitive-tree
universe of :mod:`repro.storage.packing` and *raise* it back.  The codecs
are what turn the in-process stage cache into a durable, cross-process
store: a sweep worker that finds ``topology/<key>.art`` on disk decodes the
exact synthetic Internet another process generated, bit for bit, instead of
re-running the generator.

Two invariants shape every lowering:

* **Determinism** — the primitive tree is built in a fixed order (dict
  insertion orders are preserved explicitly, hash-ordered sets are sorted),
  so the same artifact always encodes to the same bytes under any
  ``PYTHONHASHSEED``.  The golden test suite asserts byte identity across
  fresh interpreters.
* **Upstream sharing** — a decoded artifact references its upstream stage
  artifacts through the decode context rather than embedding copies: a
  decoded :class:`~repro.simulation.propagation.SimulationResult` points at
  the *same* topology/assignment objects the cache holds, and a decoded
  Looking Glass wraps the same ``LocRib`` as the propagation artifact —
  exactly like the freshly built pipeline.

The decode context (``ctx``) is duck-typed as a
:class:`~repro.session.study.Study`: it must expose ``config`` plus the
stage accessors ``topology()``, ``policies()``, ``propagation()`` and
``dataset()``.  Raising an artifact may therefore pull (and, transitively,
disk-load) its upstream stages — the natural order a study builds in.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

from repro.bgp.attributes import Community, CommunitySet, Origin
from repro.bgp.decision import DecisionProcess
from repro.bgp.rib import LocRib
from repro.bgp.route import NeighborKind, Route, RouteSource
from repro.data.rpsl import AutNumObject, IrrDatabase, PolicyLine
from repro.exceptions import StorageError
from repro.net.allocator import AddressAllocator
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.collector import CollectorEntry, CollectorTable, LookingGlass
from repro.simulation.policies import ASPolicy, CommunityPlan, LocalPrefScheme, PolicyAssignment
from repro.simulation.propagation import SimulationResult
from repro.storage.packing import pack, unpack
from repro.storage.versions import CODEC_VERSIONS
from repro.topology.generator import SyntheticInternet
from repro.topology.graph import AnnotatedASGraph, Relationship
from repro.topology.hierarchy import classify_tiers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import AnalysisEngine
    from repro.session.stages import ObservationArtifact, PolicyStageArtifact

#: Fixed relationship order backing the integer codes in encoded trees.
_RELATIONSHIPS = (
    Relationship.CUSTOMER,
    Relationship.PEER,
    Relationship.PROVIDER,
    Relationship.SIBLING,
)
_REL_CODE = {relationship: code for code, relationship in enumerate(_RELATIONSHIPS)}

#: Fixed route-source order backing the integer codes in encoded trees.
_SOURCES = (RouteSource.EBGP, RouteSource.IBGP, RouteSource.LOCAL)
_SOURCE_CODE = {source: code for code, source in enumerate(_SOURCES)}

#: Fixed neighbor-kind order backing the integer codes in encoded trees.
_KINDS = (
    NeighborKind.CUSTOMER,
    NeighborKind.PEER,
    NeighborKind.PROVIDER,
    NeighborKind.SIBLING,
    NeighborKind.UNKNOWN,
)
_KIND_CODE = {kind: code for code, kind in enumerate(_KINDS)}

#: ORIGIN members by wire value (dict lookup beats the enum constructor in
#: the decode hot loop).
_ORIGIN_BY_VALUE = {int(origin): origin for origin in Origin}


def _lower_prefix(prefix: Prefix) -> tuple[int, int]:
    """One prefix as a ``(network, length)`` pair."""
    return (prefix.network, prefix.length)


def _raise_prefix(pair: tuple[int, int]) -> Prefix:
    """Rebuild a prefix from its ``(network, length)`` pair."""
    network, length = pair
    return Prefix(network, length)


def _lower_comms(communities: CommunitySet) -> tuple:
    """One community set as sorted ``(asn, value)`` pairs plus well-knowns."""
    return (
        tuple((c.asn, c.value) for c in sorted(communities.communities)),
        tuple(sorted(int(w) for w in communities.well_known)),
    )


#: Number of parallel columns in the flat route encoding.
_ROUTE_COLUMNS = 11


def _flatten_int_rows(rows: list[tuple[int, ...]]) -> tuple[array, array]:
    """Variable-length int tuples as ``(lengths, flat values)`` columns.

    Columnar flattening is the difference between decoding hundreds of
    thousands of tagged varints and two ``frombytes`` calls — it is what
    keeps warm-cache decodes an order of magnitude cheaper than rebuilds.
    """
    lengths = array("q", (len(row) for row in rows))
    flat = array("q")
    for row in rows:
        flat.extend(row)
    return lengths, flat


def _unflatten_int_rows(lengths: array, flat: array) -> list[tuple[int, ...]]:
    """Invert :func:`_flatten_int_rows`."""
    rows: list[tuple[int, ...]] = []
    position = 0
    values = flat.tolist()
    for length in lengths:
        rows.append(tuple(values[position : position + length]))
        position += length
    return rows


class _RouteLowerer:
    """Shared intern tables accumulated while lowering route objects.

    Prefixes, AS paths and community sets repeat heavily across a routing
    table; interning them keeps propagation artifacts compact and lets the
    raiser share one object per distinct value, like the live engines do.
    Routes themselves are appended to flat parallel integer columns.
    """

    def __init__(self) -> None:
        """Start with empty intern tables and empty route columns."""
        self._prefix_rows: list[tuple[int, int]] = []
        self._prefix_ids: dict[Prefix, int] = {}
        self._path_rows: list[tuple[int, ...]] = []
        self._path_ids: dict[ASPath, int] = {}
        self._comm_rows: list[tuple] = []
        self._comm_ids: dict[CommunitySet, int] = {}
        self._route_ids: dict[tuple, int] = {}
        self.route_columns = tuple(array("q") for _ in range(_ROUTE_COLUMNS))

    def prefix(self, prefix: Prefix) -> int:
        """Intern one prefix, returning its id."""
        pid = self._prefix_ids.get(prefix)
        if pid is None:
            pid = len(self._prefix_rows)
            self._prefix_ids[prefix] = pid
            self._prefix_rows.append(_lower_prefix(prefix))
        return pid

    def path(self, path: ASPath) -> int:
        """Intern one AS path, returning its id."""
        path_id = self._path_ids.get(path)
        if path_id is None:
            path_id = len(self._path_rows)
            self._path_ids[path] = path_id
            self._path_rows.append(tuple(path.asns))
        return path_id

    def communities(self, communities: CommunitySet) -> int:
        """Intern one community set, returning its id."""
        comm_id = self._comm_ids.get(communities)
        if comm_id is None:
            comm_id = len(self._comm_rows)
            self._comm_ids[communities] = comm_id
            self._comm_rows.append(_lower_comms(communities))
        return comm_id

    def route(self, route: Route) -> int:
        """Intern one route row into the flat columns, returning its id.

        Value-equal routes across tables share one row (and, after decode,
        one object).  Within a single RIB entry candidates always differ in
        ``learned_from``, so sharing never collapses an entry's candidate
        list.
        """
        row = (
            self.prefix(route.prefix),
            self.path(route.as_path),
            route.local_pref,
            int(route.origin),
            route.med,
            self.communities(route.communities),
            _SOURCE_CODE[route.source],
            _KIND_CODE[route.neighbor_kind],
            -1 if route.learned_from is None else route.learned_from,
            route.igp_metric,
            route.router_id,
        )
        route_id = self._route_ids.get(row)
        if route_id is None:
            columns = self.route_columns
            route_id = len(columns[0])
            self._route_ids[row] = route_id
            for column, value in zip(columns, row):
                column.append(value)
        return route_id

    def tables(self) -> tuple:
        """The accumulated intern tables, ready for packing."""
        prefix_rows = self._prefix_rows
        path_lengths, path_flat = _flatten_int_rows(self._path_rows)
        comm_counts = array("q")
        comm_flat = array("q")
        well_known_sparse = []
        for row_index, (pairs, well_known) in enumerate(self._comm_rows):
            comm_counts.append(len(pairs))
            for asn, value in pairs:
                comm_flat.append(asn)
                comm_flat.append(value)
            if well_known:
                well_known_sparse.append((row_index, well_known))
        return (
            array("q", (network for network, _ in prefix_rows)),
            array("q", (length for _, length in prefix_rows)),
            path_lengths,
            path_flat,
            comm_counts,
            comm_flat,
            well_known_sparse,
        )


class _RouteRaiser:
    """Rebuilds routes from the flat columns, sharing interned objects."""

    def __init__(self, tables: tuple, route_columns: tuple) -> None:
        """Materialise the interned prefixes, paths and community sets."""
        (
            networks,
            lengths,
            path_lengths,
            path_flat,
            comm_counts,
            comm_flat,
            well_known_sparse,
        ) = tables
        self.prefixes = [
            Prefix(network, length) for network, length in zip(networks, lengths)
        ]
        self.paths = [
            ASPath(asns) for asns in _unflatten_int_rows(path_lengths, path_flat)
        ]
        well_known = dict(well_known_sparse)
        self.comms = []
        position = 0
        flat = comm_flat.tolist()
        for row_index, count in enumerate(comm_counts):
            end = position + 2 * count
            pairs = zip(flat[position:end:2], flat[position + 1 : end : 2])
            self.comms.append(
                CommunitySet(
                    (Community(asn, value) for asn, value in pairs),
                    well_known.get(row_index, ()),
                )
            )
            position = end
        self._columns = tuple(column.tolist() for column in route_columns)
        self._routes: list[Route | None] = (
            [None] * len(self._columns[0]) if self._columns else []
        )

    def route(self, row: int) -> Route:
        """The route stored at row ``row`` (built once, then shared)."""
        route = self._routes[row]
        if route is None:
            columns = self._columns
            learned_from = columns[8][row]
            route = Route(
                prefix=self.prefixes[columns[0][row]],
                as_path=self.paths[columns[1][row]],
                local_pref=columns[2][row],
                origin=_ORIGIN_BY_VALUE[columns[3][row]],
                med=columns[4][row],
                communities=self.comms[columns[5][row]],
                source=_SOURCES[columns[6][row]],
                neighbor_kind=_KINDS[columns[7][row]],
                learned_from=None if learned_from < 0 else learned_from,
                igp_metric=columns[9][row],
                router_id=columns[10][row],
            )
            self._routes[row] = route
        return route


class StageCodec:
    """Base class: one pipeline stage's artifact ⇄ bytes translator.

    Attributes:
        stage: the pipeline stage name this codec serves.
    """

    stage: str = ""

    @property
    def version(self) -> int:
        """The codec's format version (from :data:`CODEC_VERSIONS`)."""
        return CODEC_VERSIONS[self.stage]

    def encode(self, artifact: object) -> bytes:
        """Serialize one artifact into deterministic bytes."""
        return pack(self.lower(artifact))

    def decode(self, data: bytes, ctx) -> object:
        """Rebuild one artifact from bytes, resolving upstream refs via ``ctx``."""
        return self.raise_(unpack(data), ctx)

    def lower(self, artifact: object) -> object:
        """Lower one artifact to a primitive tree (codec-specific)."""
        raise NotImplementedError

    def raise_(self, tree: object, ctx) -> object:
        """Raise a primitive tree back into the artifact (codec-specific)."""
        raise NotImplementedError


class TopologyCodec(StageCodec):
    """Codec of the *topology* stage: the synthetic Internet.

    The graph adjacency is dumped in exact iteration order
    (:meth:`~repro.topology.graph.AnnotatedASGraph.adjacency_rows`) so the
    decoded graph iterates identically to the generated one; tiers are
    recomputed from the decoded graph (a deterministic function of it), and
    the address allocator's full state — including sub-allocation cursors —
    round-trips so ground-truth queries behave the same.
    """

    stage = "topology"

    def lower(self, artifact: SyntheticInternet) -> object:
        """Lower the synthetic Internet (graph, allocator, prefix plan)."""
        graph_rows = [
            (asn, tuple((neighbor, _REL_CODE[rel]) for neighbor, rel in row))
            for asn, row in artifact.graph.adjacency_rows()
        ]
        base, cursor, blocks, sub_cursors = artifact.allocator.dump_state()
        return (
            graph_rows,
            (
                base,
                cursor,
                [
                    (_lower_prefix(prefix), owner, parent_owner)
                    for prefix, owner, parent_owner in blocks
                ],
                [
                    (_lower_prefix(prefix), sub_cursor)
                    for prefix, sub_cursor in sub_cursors
                ],
            ),
            [
                (asn, tuple(_lower_prefix(p) for p in prefixes))
                for asn, prefixes in artifact.originated.items()
            ],
            [
                (_lower_prefix(original), tuple(_lower_prefix(p) for p in specifics))
                for original, specifics in artifact.split_pairs
            ],
            [
                (_lower_prefix(block.prefix), block.owner, block.parent_owner)
                for block in artifact.provider_assigned
            ],
        )

    def raise_(self, tree: object, ctx) -> SyntheticInternet:
        """Rebuild the synthetic Internet; parameters come from the context."""
        graph_rows, allocator_state, originated, split_pairs, provider_assigned = tree
        graph = AnnotatedASGraph.from_adjacency_rows(
            (
                asn,
                tuple(
                    (neighbor, _RELATIONSHIPS[code]) for neighbor, code in row
                ),
            )
            for asn, row in graph_rows
        )
        base, cursor, blocks, sub_cursors = allocator_state
        allocator = AddressAllocator.from_state(
            (
                base,
                cursor,
                [
                    (_raise_prefix(pair), owner, parent_owner)
                    for pair, owner, parent_owner in blocks
                ],
                [(_raise_prefix(pair), sub_cursor) for pair, sub_cursor in sub_cursors],
            )
        )
        block_index = {
            (block.prefix, block.owner): block for block in allocator.blocks
        }
        return SyntheticInternet(
            parameters=ctx.config.topology,
            graph=graph,
            tiers=classify_tiers(graph),
            allocator=allocator,
            originated={
                asn: [_raise_prefix(pair) for pair in prefixes]
                for asn, prefixes in originated
            },
            split_pairs=[
                (_raise_prefix(pair), [_raise_prefix(p) for p in specifics])
                for pair, specifics in split_pairs
            ],
            provider_assigned=[
                block_index[(_raise_prefix(pair), owner)]
                for pair, owner, _parent in provider_assigned
            ],
        )


class PoliciesCodec(StageCodec):
    """Codec of the *policies* stage: vantage plan + per-AS policies.

    Per-AS dict fields keep their insertion order; frozenset fields are
    sorted (their iteration order is value-determined, not
    insertion-determined, so sorting loses nothing).
    """

    stage = "policies"

    def lower(self, artifact: "PolicyStageArtifact") -> object:
        """Lower the vantage plan, every AS policy and the ground truth."""
        assignment = artifact.assignment
        return (
            tuple(artifact.vantage_ases),
            tuple(artifact.looking_glass_ases),
            [self._lower_policy(policy) for policy in assignment.policies.values()],
            [
                (asn, tuple(_lower_prefix(p) for p in sorted(prefixes)))
                for asn, prefixes in assignment.selective_origins.items()
            ],
            [
                (asn, tuple(_lower_prefix(p) for p in sorted(prefixes)))
                for asn, prefixes in assignment.scoped_origins.items()
            ],
            tuple(sorted(assignment.selective_transits)),
            tuple(sorted(assignment.atypical_ases)),
            tuple(sorted(assignment.tagging_ases)),
        )

    @staticmethod
    def _lower_policy(policy: ASPolicy) -> tuple:
        """Lower one AS policy, dict orders preserved, sets sorted."""
        scheme = policy.local_pref
        plan = policy.community_plan
        return (
            policy.asn,
            (scheme.customer, scheme.peer, scheme.provider, scheme.sibling),
            list(policy.neighbor_local_pref.items()),
            [
                (_lower_prefix(prefix), pref)
                for prefix, pref in policy.prefix_local_pref.items()
            ],
            [
                (_lower_prefix(prefix), tuple(sorted(providers)))
                for prefix, providers in policy.announce_to_providers.items()
            ],
            [
                (_lower_prefix(prefix), tuple(sorted(providers)))
                for prefix, providers in policy.scoped_to_providers.items()
            ],
            [
                (_lower_prefix(prefix), tuple(sorted(peers)))
                for prefix, peers in policy.withhold_from_peers.items()
            ],
            None
            if policy.export_customer_prefixes_to is None
            else tuple(sorted(policy.export_customer_prefixes_to)),
            None
            if plan is None
            else (
                plan.asn,
                plan.customer_base,
                plan.peer_base,
                plan.provider_base,
                plan.range_size,
            ),
            policy.honor_scoped_communities,
        )

    def raise_(self, tree: object, ctx) -> "PolicyStageArtifact":
        """Rebuild the policy stage artifact."""
        from repro.session.stages import PolicyStageArtifact

        (
            vantage,
            looking_glass,
            policies,
            selective_origins,
            scoped_origins,
            selective_transits,
            atypical,
            tagging,
        ) = tree
        assignment = PolicyAssignment(
            policies={row[0]: self._raise_policy(row) for row in policies},
            selective_origins={
                asn: {_raise_prefix(pair) for pair in prefixes}
                for asn, prefixes in selective_origins
            },
            scoped_origins={
                asn: {_raise_prefix(pair) for pair in prefixes}
                for asn, prefixes in scoped_origins
            },
            selective_transits=set(selective_transits),
            atypical_ases=set(atypical),
            tagging_ases=set(tagging),
        )
        return PolicyStageArtifact(
            vantage_ases=tuple(vantage),
            looking_glass_ases=tuple(looking_glass),
            assignment=assignment,
        )

    @staticmethod
    def _raise_policy(row: tuple) -> ASPolicy:
        """Rebuild one AS policy from its lowered row."""
        (
            asn,
            scheme,
            neighbor_local_pref,
            prefix_local_pref,
            announce_to,
            scoped_to,
            withhold,
            export_to,
            plan,
            honor_scoped,
        ) = row
        customer, peer, provider, sibling = scheme
        return ASPolicy(
            asn=asn,
            local_pref=LocalPrefScheme(
                customer=customer, peer=peer, provider=provider, sibling=sibling
            ),
            neighbor_local_pref=dict(neighbor_local_pref),
            prefix_local_pref={
                _raise_prefix(pair): pref for pair, pref in prefix_local_pref
            },
            announce_to_providers={
                _raise_prefix(pair): frozenset(providers)
                for pair, providers in announce_to
            },
            scoped_to_providers={
                _raise_prefix(pair): frozenset(providers)
                for pair, providers in scoped_to
            },
            withhold_from_peers={
                _raise_prefix(pair): frozenset(peers) for pair, peers in withhold
            },
            export_customer_prefixes_to=(
                None if export_to is None else frozenset(export_to)
            ),
            community_plan=(
                None
                if plan is None
                else CommunityPlan(
                    asn=plan[0],
                    customer_base=plan[1],
                    peer_base=plan[2],
                    provider_base=plan[3],
                    range_size=plan[4],
                )
            ),
            honor_scoped_communities=honor_scoped,
        )


class PropagationCodec(StageCodec):
    """Codec of the *propagation* stage: the observed routing tables.

    Routes are flattened over shared prefix/path/community intern tables;
    per-entry candidate order and the identity of the selected best route
    survive the round trip (``entry.best is entry.routes[i]``).  The
    ``internet`` and ``assignment`` references are **not** embedded: the
    raiser takes them from the decode context, so a disk-loaded result
    shares the exact upstream artifacts the cache holds.
    """

    stage = "propagation"

    def lower(self, artifact: SimulationResult) -> object:
        """Lower every observed Loc-RIB plus the run metadata."""
        lowerer = _RouteLowerer()
        owners = []
        entry_counts = array("q")
        entry_prefix = array("q")
        entry_best = array("q")
        entry_route_count = array("q")
        entry_route_ids = array("q")
        for table in artifact.tables.values():
            owners.append(table.owner)
            count = 0
            for entry in table.entries():
                count += 1
                entry_prefix.append(lowerer.prefix(entry.prefix))
                routes = entry.routes
                entry_route_count.append(len(routes))
                best_index = -1
                if entry.best is not None:
                    for index, route in enumerate(routes):
                        if route is entry.best:
                            best_index = index
                            break
                    else:
                        raise StorageError(
                            f"best route of {entry.prefix} is not among its candidates"
                        )
                entry_best.append(best_index)
                for route in routes:
                    entry_route_ids.append(lowerer.route(route))
            entry_counts.append(count)
        return (
            lowerer.tables(),
            list(lowerer.route_columns),
            tuple(owners),
            entry_counts,
            entry_prefix,
            entry_best,
            entry_route_count,
            entry_route_ids,
            artifact.message_count,
            tuple(_lower_prefix(p) for p in artifact.truncated_prefixes),
        )

    def raise_(self, tree: object, ctx) -> SimulationResult:
        """Rebuild the simulation result over the context's upstream stages."""
        (
            intern_tables,
            route_columns,
            owners,
            entry_counts,
            entry_prefix,
            entry_best,
            entry_route_count,
            entry_route_ids,
            message_count,
            truncated,
        ) = tree
        raiser = _RouteRaiser(intern_tables, tuple(route_columns))
        decision = DecisionProcess()
        result = SimulationResult(
            internet=ctx.topology(),
            assignment=ctx.policies().assignment,
            message_count=message_count,
            truncated_prefixes=[_raise_prefix(pair) for pair in truncated],
        )
        raise_route = raiser.route
        prefixes = raiser.prefixes
        route_ids = entry_route_ids.tolist()
        entry_index = 0
        route_position = 0
        for table_index, owner in enumerate(owners):
            table = LocRib(owner=owner, decision=decision)
            for _ in range(entry_counts[table_index]):
                route_count = entry_route_count[entry_index]
                routes = [
                    raise_route(route_id)
                    for route_id in route_ids[
                        route_position : route_position + route_count
                    ]
                ]
                route_position += route_count
                best_index = entry_best[entry_index]
                table.load_entry(
                    prefixes[entry_prefix[entry_index]],
                    routes,
                    routes[best_index] if best_index >= 0 else None,
                )
                entry_index += 1
            result.tables[owner] = table
        return result


class ObservationCodec(StageCodec):
    """Codec of the *observation* stage: collector, Looking Glasses, Table 1.

    Looking Glass views are thin wrappers around the propagation stage's
    Loc-RIBs, so only their AS list is stored — the raiser re-wraps the
    decode context's propagation tables, preserving object sharing with the
    upstream artifact.  Collector entries and the Table 1 inventory are
    stored in full.
    """

    stage = "observation"

    def lower(self, artifact: "ObservationArtifact") -> object:
        """Lower the collector rows, glass AS list and AS inventory."""
        lowerer = _RouteLowerer()
        col_vantage = array("q")
        col_prefix = array("q")
        col_path = array("q")
        for entry in artifact.collector.entries:
            col_vantage.append(entry.vantage)
            col_prefix.append(lowerer.prefix(entry.prefix))
            col_path.append(lowerer.path(entry.as_path))
        return (
            lowerer.tables(),
            col_vantage,
            col_prefix,
            col_path,
            tuple(artifact.looking_glasses),
            [
                (
                    info.asn,
                    info.name,
                    info.degree,
                    info.location,
                    info.tier,
                    info.is_looking_glass,
                    info.is_vantage,
                )
                for info in artifact.as_info.values()
            ],
        )

    def raise_(self, tree: object, ctx) -> "ObservationArtifact":
        """Rebuild the observation artifact over the context's propagation."""
        from repro.data.dataset import ASInfo
        from repro.session.stages import ObservationArtifact

        intern_tables, col_vantage, col_prefix, col_path, glass_ases, info_rows = tree
        raiser = _RouteRaiser(intern_tables, ())
        prefixes = raiser.prefixes
        paths = raiser.paths
        collector = CollectorTable(
            entries=[
                CollectorEntry(
                    vantage=vantage, prefix=prefixes[pid], as_path=paths[path_id]
                )
                for vantage, pid, path_id in zip(col_vantage, col_prefix, col_path)
            ]
        )
        result = ctx.propagation()
        return ObservationArtifact(
            collector=collector,
            looking_glasses={
                asn: LookingGlass.from_result(result, asn) for asn in glass_ases
            },
            as_info={
                row[0]: ASInfo(
                    asn=row[0],
                    name=row[1],
                    degree=row[2],
                    location=row[3],
                    tier=row[4],
                    is_looking_glass=row[5],
                    is_vantage=row[6],
                )
                for row in info_rows
            },
        )


class IrrCodec(StageCodec):
    """Codec of the *irr* stage: the synthetic RPSL database."""

    stage = "irr"

    def lower(self, artifact: IrrDatabase) -> object:
        """Lower every aut-num object, import/export lines in order."""
        return [
            (
                obj.asn,
                obj.as_name,
                obj.last_updated,
                obj.source,
                [
                    (line.peer_as, line.pref, line.filter_text)
                    for line in obj.imports
                ],
                [(line.peer_as, line.filter_text) for line in obj.exports],
            )
            for obj in artifact.objects.values()
        ]

    def raise_(self, tree: object, ctx) -> IrrDatabase:
        """Rebuild the IRR database."""
        database = IrrDatabase()
        for asn, as_name, last_updated, source, imports, exports in tree:
            database.add(
                AutNumObject(
                    asn=asn,
                    as_name=as_name,
                    imports=[
                        PolicyLine(
                            direction="import",
                            peer_as=peer,
                            pref=pref,
                            filter_text=filter_text,
                        )
                        for peer, pref, filter_text in imports
                    ],
                    exports=[
                        PolicyLine(
                            direction="export", peer_as=peer, filter_text=filter_text
                        )
                        for peer, filter_text in exports
                    ],
                    last_updated=last_updated,
                    source=source,
                )
            )
        return database


class AnalysisCodec(StageCodec):
    """Codec of the *analysis* stage: the interned columnar index.

    Stores the expensive-to-build parts of the
    :class:`~repro.analysis.index.MeasurementIndex` — interners, collapsed
    paths, collector columns and per-glass route columns.  Derived
    groupings (rows by prefix/member, the adjacency set) are recomputed
    from the stored integer columns, and the per-table best-route columns
    are re-walked from the decode context's live routing tables so report
    objects keep referencing the propagation artifact's routes.
    """

    stage = "analysis"

    def lower(self, artifact: "AnalysisEngine") -> object:
        """Lower the engine's measurement index into columns."""
        index = artifact.index
        path_lengths, path_flat = _flatten_int_rows(
            [tuple(path.asns) for path in index.paths]
        )
        collapsed_lengths, collapsed_flat = _flatten_int_rows(index.collapsed)
        return (
            array("q", (prefix.network for prefix in index.prefixes)),
            array("q", (prefix.length for prefix in index.prefixes)),
            path_lengths,
            path_flat,
            collapsed_lengths,
            collapsed_flat,
            array("q", index.path_origin),
            (
                array("q", index.col_vantage),
                array("q", index.col_prefix),
                array("q", index.col_path),
            ),
            [self._lower_glass(glass) for glass in index.glasses.values()],
        )

    @staticmethod
    def _lower_glass(glass) -> tuple:
        """Lower one glass view; own-community rows flatten to columns."""
        comm_counts = array("q")
        comm_asn = array("q")
        comm_value = array("q")
        for row in glass.route_own_communities:
            comm_counts.append(len(row))
            for community in row:
                comm_asn.append(community.asn)
                comm_value.append(community.value)
        return (
            glass.asn,
            array("q", glass.entry_prefix),
            array("q", glass.entry_offsets),
            array("q", glass.route_next_hop),
            array("q", glass.route_local_pref),
            bytes(glass.route_is_local),
            (comm_counts, comm_asn, comm_value),
            array("q", glass.best_next_hop),
            array("q", glass.best_local_pref),
            bytes(glass.best_is_local),
        )

    def raise_(self, tree: object, ctx) -> "AnalysisEngine":
        """Rebuild the index over the context's dataset, then wrap the engine."""
        from repro.analysis.engine import AnalysisEngine
        from repro.analysis.index import GlassIndex, MeasurementIndex

        (
            prefix_networks,
            prefix_lengths,
            path_lengths,
            path_flat,
            collapsed_lengths,
            collapsed_flat,
            path_origin,
            collector_columns,
            glass_rows,
        ) = tree
        dataset = ctx.dataset()
        index = MeasurementIndex.hollow(dataset)

        index.prefixes = [
            Prefix(network, length)
            for network, length in zip(prefix_networks, prefix_lengths)
        ]
        index.prefix_ids = {prefix: i for i, prefix in enumerate(index.prefixes)}
        index.paths = [
            ASPath(asns) for asns in _unflatten_int_rows(path_lengths, path_flat)
        ]
        index.path_ids = {path: i for i, path in enumerate(index.paths)}
        index.collapsed = _unflatten_int_rows(collapsed_lengths, collapsed_flat)
        index.path_origin = array("q", path_origin)

        col_vantage, col_prefix, col_path = collector_columns
        if len(col_vantage) != len(dataset.collector.entries):
            raise StorageError(
                "stored collector columns do not match the assembled dataset"
            )
        index.col_vantage = array("q", col_vantage)
        index.col_prefix = array("q", col_prefix)
        index.col_path = array("q", col_path)
        for row in range(len(col_prefix)):
            index.rows_by_prefix.setdefault(col_prefix[row], []).append(row)
            collapsed = index.collapsed[col_path[row]]
            for asn in sorted(set(collapsed)):
                index.rows_by_member.setdefault(asn, []).append(row)
            index.adjacency.update(zip(collapsed, collapsed[1:]))

        for row in glass_rows:
            comm_counts, comm_asn, comm_value = row[6]
            own_communities: list[tuple[Community, ...]] = []
            position = 0
            for count in comm_counts:
                own_communities.append(
                    tuple(
                        Community(comm_asn[i], comm_value[i])
                        for i in range(position, position + count)
                    )
                )
                position += count
            view = GlassIndex(
                asn=row[0],
                entry_prefix=array("q", row[1]),
                entry_offsets=array("q", row[2]),
                route_next_hop=array("q", row[3]),
                route_local_pref=array("q", row[4]),
                route_is_local=bytearray(row[5]),
                route_own_communities=own_communities,
                best_next_hop=array("q", row[7]),
                best_local_pref=array("q", row[8]),
                best_is_local=bytearray(row[9]),
            )
            index.glasses[view.asn] = view
        if set(index.glasses) != set(dataset.looking_glass_ases):
            raise StorageError(
                "stored glass columns do not match the assembled dataset"
            )

        index._build_tables()
        index._build_irr()
        engine = AnalysisEngine(index, dataset.analysis_parameters)
        return dataset.adopt_analysis_engine(engine)


#: The codec registry, one instance per persistable stage.
_CODECS: dict[str, StageCodec] = {
    codec.stage: codec
    for codec in (
        TopologyCodec(),
        PoliciesCodec(),
        PropagationCodec(),
        ObservationCodec(),
        IrrCodec(),
        AnalysisCodec(),
    )
}


def codec_for(stage: str) -> StageCodec | None:
    """The codec serving one pipeline stage, or ``None``.

    Args:
        stage: a stage name (``"topology"``, ... ``"analysis"``); unknown
            names — like the assembled ``"dataset"`` pseudo-stage — have no
            codec and stay memory-only.

    Returns:
        The registered :class:`StageCodec` instance or ``None``.
    """
    return _CODECS.get(stage)
