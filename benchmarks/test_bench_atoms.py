"""Benchmark: the policy-atom extension experiment.

Shape expectation (after Afek et al., whose findings the paper says its
export-policy results explain): atoms group multiple prefixes, and almost
every atom contains prefixes of a single origin AS.
"""


def test_bench_atoms(benchmark, run_experiment):
    result = run_experiment(benchmark, "atoms")
    values = {row[0]: row[1] for row in result.rows}
    assert values["policy atoms"] > 0
    assert values["prefixes covered"] >= values["policy atoms"]
    assert float(values["average atom size"]) >= 1.0
    single_origin_fraction = float(values["single-origin atom fraction"].rstrip("%"))
    assert single_origin_fraction > 90.0
