"""Table 9 — prefix splitting and prefix aggregating vs. selective announcing."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register


@register
class Table9Experiment(Experiment):
    """How many SA prefixes the splitting/aggregating cases can explain."""

    experiment_id = "table9"
    title = "SA prefixes attributable to prefix splitting and prefix aggregating"
    paper_reference = "Table 9, Section 5.1.5"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        engine = dataset.analysis
        result.headers = [
            "provider",
            "# SA prefixes",
            "# prefix splitting",
            "# prefix aggregating",
            "# selective announcing",
        ]
        for provider in sorted(engine.sa_reports()):
            breakdown = engine.cause_breakdown(provider)
            result.rows.append(
                [
                    f"AS{provider}",
                    breakdown.sa_prefix_count,
                    breakdown.splitting_count,
                    breakdown.aggregating_count,
                    breakdown.selective_count,
                ]
            )
        result.notes.append(
            "Paper Table 9: splitting and aggregating explain only a few percent of SA "
            "prefixes (e.g. 127 + 218 of AS1's 9120); selective announcing dominates."
        )
        return result
