"""On-disk data formats and dataset assembly.

The paper's inputs are RouteViews MRT dumps, ``show ip bgp`` output from
Looking Glass servers, and the IRR/RADB RPSL database.  This subpackage
implements those formats (so the library ingests the same kind of artifacts a
user of the real data would feed it) and assembles the full study dataset
from a simulation:

* :mod:`repro.data.mrt` — a binary TABLE_DUMP-style RIB format with an
  encoder and decoder.
* :mod:`repro.data.show_ip_bgp` — the Cisco text format quoted in the paper
  (both the table listing and the per-prefix detail with LOCAL_PREF and
  communities).
* :mod:`repro.data.rpsl` — an RPSL subset (aut-num objects with import /
  export attributes) and a synthetic IRR database with configurable
  staleness.
* :mod:`repro.data.dataset` — the :class:`~repro.data.dataset.StudyDataset`
  combining collector tables, Looking Glass views, the IRR and ground truth,
  mirroring the paper's Section 3 / Table 1 inventory.  Assembled from the
  staged :mod:`repro.session` pipeline; the legacy entry points here remain
  as thin delegates.
"""

from repro.data.archive import ArchivedDataset, export_dataset, load_dataset
from repro.data.mrt import MrtReader, MrtWriter, RibEntryRecord
from repro.data.show_ip_bgp import (
    format_show_ip_bgp_detail,
    format_show_ip_bgp_table,
    parse_show_ip_bgp_detail,
    parse_show_ip_bgp_table,
)
from repro.data.rpsl import AutNumObject, IrrDatabase, PolicyLine
from repro.data.dataset import DatasetParameters, StudyDataset, build_dataset

__all__ = [
    "ArchivedDataset",
    "AutNumObject",
    "DatasetParameters",
    "IrrDatabase",
    "MrtReader",
    "MrtWriter",
    "PolicyLine",
    "RibEntryRecord",
    "StudyDataset",
    "build_dataset",
    "export_dataset",
    "load_dataset",
    "format_show_ip_bgp_detail",
    "format_show_ip_bgp_table",
    "parse_show_ip_bgp_detail",
    "parse_show_ip_bgp_table",
]
