"""Export-policy inference: selectively announced (SA) prefixes.

This is the paper's Fig. 4 algorithm (Section 5.1.1) and the prevalence
measurements built on it (Section 5.1.2, Tables 5 and 6).

From the viewpoint of a provider ``u``:

1. *Phase 2* — decide whether the origin AS ``o`` of a prefix is a (direct or
   indirect) customer of ``u`` by expanding provider→customer edges from
   ``u`` (the annotated graph's :meth:`is_customer_of`).
2. *Phase 3* — for each prefix originated by such a customer, look at ``u``'s
   best route: if its next-hop AS ``w`` is *not* a customer of ``u`` (i.e.
   the best route is a peer or provider route), the prefix is a **SA prefix**
   with respect to ``u``.

The analyzer works off a provider's routing table (Loc-RIB best routes — the
paper argues best routes suffice given typical LOCAL_PREF) and an annotated
AS graph, which may be ground truth or inferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.rib import LocRib
from repro.bgp.route import Route
from repro.exceptions import InferenceError
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.topology.graph import AnnotatedASGraph, Relationship


@dataclass
class SAPrefix:
    """One selectively announced prefix, as observed at a provider.

    Attributes:
        prefix: the prefix.
        origin_as: the customer AS that originates it.
        next_hop_as: the neighbor the provider's best route points at.
        next_hop_relationship: the provider's relationship with that neighbor.
        best_route: the provider's best route.
        customer_path: one provider→customer path from the provider down to
            the origin AS (evidence that a customer path exists in the graph).
    """

    prefix: Prefix
    origin_as: ASN
    next_hop_as: ASN
    next_hop_relationship: Relationship | None
    best_route: Route
    customer_path: list[ASN] = field(default_factory=list)


@dataclass
class SAPrefixReport:
    """The outcome of the Fig. 4 algorithm for one provider.

    Attributes:
        provider: the provider AS ``u``.
        customer_prefix_count: prefixes in the provider's table originated by
            its (direct or indirect) customers.
        sa_prefixes: those reached via a non-customer next hop.
        customer_route_prefix_count: customer-originated prefixes reached via
            a customer route (the complement of the SA prefixes).
        missing_prefix_count: prefixes originated by customers (according to
            the ground-truth prefix ownership, when supplied) that do not
            appear in the provider's table at all — possible with scoped
            announcements.
    """

    provider: ASN
    customer_prefix_count: int = 0
    sa_prefixes: list[SAPrefix] = field(default_factory=list)
    customer_route_prefix_count: int = 0
    missing_prefix_count: int = 0

    @property
    def sa_prefix_count(self) -> int:
        """Number of SA prefixes."""
        return len(self.sa_prefixes)

    @property
    def percent_sa(self) -> float:
        """Percentage of customer-originated prefixes that are SA prefixes."""
        if self.customer_prefix_count == 0:
            return 0.0
        return 100.0 * self.sa_prefix_count / self.customer_prefix_count

    def sa_prefix_set(self) -> set[Prefix]:
        """The SA prefixes as a set."""
        return {item.prefix for item in self.sa_prefixes}

    def origins_with_sa_prefixes(self) -> set[ASN]:
        """Every origin AS contributing at least one SA prefix."""
        return {item.origin_as for item in self.sa_prefixes}


@dataclass
class CustomerSAReport:
    """Table 6 style row: one customer's prefixes across several providers.

    Attributes:
        customer: the origin AS.
        prefix_count: prefixes it originates (as seen in the tables).
        sa_prefix_count: how many of them are SA prefixes for at least one of
            the studied providers.
    """

    customer: ASN
    prefix_count: int = 0
    sa_prefix_count: int = 0

    @property
    def percent_sa(self) -> float:
        """Percentage of the customer's prefixes that are SA somewhere."""
        if self.prefix_count == 0:
            return 0.0
        return 100.0 * self.sa_prefix_count / self.prefix_count


class ExportPolicyAnalyzer:
    """Runs the Fig. 4 SA-prefix inference against provider routing tables.

    Customer cones and customer paths are deterministic functions of the
    relationship graph, so they are memoised per analyzer instance: one
    analyzer reused across many tables (e.g. the persistence study's
    snapshots) pays each cone/path search once.  The graph must therefore
    not be mutated between calls — build a fresh analyzer if it changes.
    """

    def __init__(self, relationships: AnnotatedASGraph) -> None:
        self.relationships = relationships
        self._cones: dict[ASN, set[ASN]] = {}
        self._customer_paths: dict[tuple[ASN, ASN], tuple[ASN, ...] | None] = {}

    # -- memoised graph walks -----------------------------------------------------

    def customer_cone(self, provider: ASN) -> set[ASN]:
        """The provider's customer cone, computed once per analyzer."""
        cone = self._cones.get(provider)
        if cone is None:
            cone = self._cones[provider] = self.relationships.customer_cone(provider)
        return cone

    def customer_path(self, provider: ASN, origin: ASN) -> list[ASN]:
        """One provider→customer path down to ``origin`` (``[]`` if none).

        Returns a fresh list per call, so callers may keep or modify it.
        """
        key = (provider, origin)
        if key not in self._customer_paths:
            path = self.relationships.find_customer_path(provider, origin)
            self._customer_paths[key] = tuple(path) if path is not None else None
        cached = self._customer_paths[key]
        return list(cached) if cached else []

    # -- the Fig. 4 algorithm ------------------------------------------------------

    def find_sa_prefixes(
        self,
        provider: ASN,
        table: LocRib,
        known_customer_prefixes: dict[ASN, list[Prefix]] | None = None,
    ) -> SAPrefixReport:
        """Classify every customer-originated prefix in a provider's table.

        Args:
            provider: the provider AS ``u`` whose viewpoint is analysed.
            table: the provider's routing table (best routes are used).
            known_customer_prefixes: optional ground-truth prefix ownership;
                when given, customer prefixes absent from the table are
                counted in ``missing_prefix_count``.
        """
        if provider not in self.relationships:
            raise InferenceError(f"AS{provider} is not in the relationship graph")
        report = SAPrefixReport(provider=provider)
        cone = self.customer_cone(provider)
        seen_prefixes: set[Prefix] = set()
        for route in table.best_routes():
            if route.is_local:
                continue
            origin = route.origin_as
            if origin not in cone:
                continue
            report.customer_prefix_count += 1
            seen_prefixes.add(route.prefix)
            next_hop = route.next_hop_as
            relationship = self.relationships.relationship(provider, next_hop)
            if relationship is Relationship.CUSTOMER:
                report.customer_route_prefix_count += 1
                continue
            report.sa_prefixes.append(
                SAPrefix(
                    prefix=route.prefix,
                    origin_as=origin,
                    next_hop_as=next_hop,
                    next_hop_relationship=relationship,
                    best_route=route,
                    customer_path=self.customer_path(provider, origin),
                )
            )
        if known_customer_prefixes:
            for origin, prefixes in known_customer_prefixes.items():
                if origin not in cone:
                    continue
                for prefix in prefixes:
                    if prefix not in seen_prefixes and table.best_route(prefix) is None:
                        report.missing_prefix_count += 1
        return report

    def analyze_providers(
        self,
        tables: dict[ASN, LocRib],
        known_customer_prefixes: dict[ASN, list[Prefix]] | None = None,
    ) -> dict[ASN, SAPrefixReport]:
        """Table 5: run the algorithm for several providers."""
        return {
            provider: self.find_sa_prefixes(provider, table, known_customer_prefixes)
            for provider, table in tables.items()
        }

    # -- the customer viewpoint (Table 6) -------------------------------------------

    def analyze_customers(
        self,
        reports: dict[ASN, SAPrefixReport],
        tables: dict[ASN, LocRib],
        min_prefixes: int = 3,
    ) -> list[CustomerSAReport]:
        """Table 6: customers that have *all* the studied providers upstream.

        A customer qualifies when it lies in the customer cone of every
        studied provider and originates at least ``min_prefixes`` prefixes;
        its SA count is the number of its prefixes that are SA for at least
        one of the providers.
        """
        providers = sorted(reports)
        if not providers:
            return []
        cones = [self.customer_cone(provider) for provider in providers]
        shared_customers = set.intersection(*cones) if cones else set()

        # Prefixes originated by each customer, as visible from any table.
        originated: dict[ASN, set[Prefix]] = {}
        for table in tables.values():
            for route in table.best_routes():
                if route.is_local:
                    continue
                originated.setdefault(route.origin_as, set()).add(route.prefix)

        sa_by_prefix: dict[Prefix, set[ASN]] = {}
        for provider, report in reports.items():
            for item in report.sa_prefixes:
                sa_by_prefix.setdefault(item.prefix, set()).add(provider)

        results: list[CustomerSAReport] = []
        for customer in sorted(shared_customers):
            prefixes = originated.get(customer, set())
            if len(prefixes) < min_prefixes:
                continue
            sa_count = sum(1 for prefix in prefixes if prefix in sa_by_prefix)
            results.append(
                CustomerSAReport(
                    customer=customer,
                    prefix_count=len(prefixes),
                    sa_prefix_count=sa_count,
                )
            )
        results.sort(key=lambda row: row.sa_prefix_count, reverse=True)
        return results
