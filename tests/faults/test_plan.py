"""Tests of the deterministic seeded fault schedules."""

import pytest

from repro.faults.plan import (
    CORRUPT_MODES,
    WRITE_ERRNOS,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)


class TestRuleValidation:
    def test_valid_rules_pass(self):
        FaultRule("worker-kill", rate=0.5).validate()
        FaultRule("store-write", rate=1.0, param="ENOSPC").validate()
        FaultRule("store-corrupt", rate=0.1, param="flip").validate()
        FaultRule("latency", rate=0.2, times=None, param=0.01).validate()

    def test_unknown_site(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultRule("disk-on-fire", rate=0.5).validate()

    def test_rate_out_of_range(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultRule("worker-kill", rate=1.5).validate()
        with pytest.raises(FaultPlanError, match="rate"):
            FaultRule("worker-kill", rate=-0.1).validate()

    def test_times_must_be_positive_or_none(self):
        with pytest.raises(FaultPlanError, match="times"):
            FaultRule("worker-kill", rate=0.5, times=0).validate()

    def test_corrupt_param_must_be_a_mode(self):
        with pytest.raises(FaultPlanError, match="store-corrupt"):
            FaultRule("store-corrupt", rate=0.5, param="scribble").validate()

    def test_write_param_must_be_an_errno(self):
        with pytest.raises(FaultPlanError, match="store-write"):
            FaultRule("store-write", rate=0.5, param="EPIPE").validate()

    def test_latency_param_must_be_seconds(self):
        with pytest.raises(FaultPlanError, match="latency"):
            FaultRule("latency", rate=0.5, param="fast").validate()
        with pytest.raises(FaultPlanError, match="latency"):
            FaultRule("latency", rate=0.5, param=-1.0).validate()


class TestFiringDecisions:
    def plan(self, tmp_path, *rules) -> FaultPlan:
        return FaultPlan(seed=7, state_dir=str(tmp_path / "state"), rules=rules)

    def test_rate_one_always_draws(self, tmp_path):
        plan = self.plan(
            tmp_path, FaultRule("latency", rate=1.0, times=None, param=0.0)
        )
        assert plan.fires("latency", "topology/abc") is not None

    def test_rate_zero_never_draws(self, tmp_path):
        plan = self.plan(tmp_path, FaultRule("latency", rate=0.0, param=0.0))
        assert all(
            plan.fires("latency", f"topology/{n}") is None for n in range(50)
        )

    def test_decision_is_deterministic_across_instances(self, tmp_path):
        # The draw is a pure hash of (seed, index, site, identity): two plan
        # objects (think: two worker processes) agree on every verdict.
        rule = FaultRule("worker-kill", rate=0.5, times=None)
        one = self.plan(tmp_path, rule)
        two = FaultPlan(seed=7, state_dir=str(tmp_path / "state"), rules=(rule,))
        identities = [f"case@{n}" for n in range(64)]
        verdicts = [one.fires("worker-kill", i) is not None for i in identities]
        assert verdicts == [
            two.fires("worker-kill", i) is not None for i in identities
        ]
        assert any(verdicts) and not all(verdicts)  # rate 0.5 splits the draw

    def test_seed_changes_the_schedule(self, tmp_path):
        rule = FaultRule("worker-kill", rate=0.5, times=None)
        one = FaultPlan(seed=1, state_dir=str(tmp_path / "a"), rules=(rule,))
        two = FaultPlan(seed=2, state_dir=str(tmp_path / "b"), rules=(rule,))
        identities = [f"case@{n}" for n in range(64)]
        assert [one.fires("worker-kill", i) is not None for i in identities] != [
            two.fires("worker-kill", i) is not None for i in identities
        ]

    def test_match_pattern_filters_identities(self, tmp_path):
        plan = self.plan(
            tmp_path,
            FaultRule("latency", rate=1.0, match="topology/*", times=None, param=0.0),
        )
        assert plan.fires("latency", "topology/abc") is not None
        assert plan.fires("latency", "policies/abc") is None

    def test_times_bounds_firings_across_instances(self, tmp_path):
        # Marker files in the shared state_dir make the bound global: a
        # second plan instance (another process) sees the budget as spent.
        rule = FaultRule("worker-kill", rate=1.0, times=2, match="case@1")
        one = self.plan(tmp_path, rule)
        assert one.fires("worker-kill", "case@1") is not None
        two = FaultPlan(seed=7, state_dir=str(tmp_path / "state"), rules=(rule,))
        assert two.fires("worker-kill", "case@1") is not None
        assert one.fires("worker-kill", "case@1") is None
        assert two.fires("worker-kill", "case@1") is None

    def test_times_budget_is_per_identity(self, tmp_path):
        plan = self.plan(tmp_path, FaultRule("worker-kill", rate=1.0, times=1))
        assert plan.fires("worker-kill", "case@1") is not None
        assert plan.fires("worker-kill", "case@2") is not None
        assert plan.fires("worker-kill", "case@1") is None

    def test_unbounded_rule_always_fires(self, tmp_path):
        plan = self.plan(
            tmp_path, FaultRule("store-write", rate=1.0, times=None, param="ENOSPC")
        )
        assert all(
            plan.fires("store-write", "topology/k") is not None for _ in range(10)
        )

    def test_first_matching_rule_wins(self, tmp_path):
        plan = self.plan(
            tmp_path,
            FaultRule("latency", rate=1.0, match="topology/*", times=None, param=1.0),
            FaultRule("latency", rate=1.0, times=None, param=2.0),
        )
        assert plan.fires("latency", "topology/k").param == 1.0
        assert plan.fires("latency", "policies/k").param == 2.0


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            state_dir=str(tmp_path / "state"),
            rules=(
                FaultRule("worker-kill", rate=0.5, match="collector-*"),
                FaultRule("store-write", rate=0.2, times=None, param="EIO"),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_inline_json(self, tmp_path):
        plan = FaultPlan(seed=3, state_dir=str(tmp_path), rules=())
        assert FaultPlan.load(plan.to_json()) == plan

    def test_load_file_path(self, tmp_path):
        plan = FaultPlan(
            seed=3,
            state_dir=str(tmp_path / "state"),
            rules=(FaultRule("latency", rate=0.1, param=0.01),),
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.load(str(path)) == plan

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read fault plan file"):
            FaultPlan.load(str(tmp_path / "nope.json"))

    def test_malformed_json_raises(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_from_dict_validates_rules(self, tmp_path):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict(
                {
                    "seed": 1,
                    "state_dir": str(tmp_path),
                    "rules": [{"site": "store-corrupt", "rate": 0.5, "param": "bad"}],
                }
            )

    def test_from_dict_rejects_non_objects(self):
        with pytest.raises(FaultPlanError, match="JSON object"):
            FaultPlan.from_dict([1, 2, 3])


class TestGenerate:
    def test_same_seed_same_plan(self, tmp_path):
        assert FaultPlan.generate(5, tmp_path / "s") == FaultPlan.generate(
            5, tmp_path / "s"
        )

    def test_different_seeds_differ(self, tmp_path):
        assert FaultPlan.generate(5, tmp_path / "s").rules != FaultPlan.generate(
            6, tmp_path / "s"
        ).rules

    def test_generated_plans_validate(self, tmp_path):
        for seed in range(20):
            plan = FaultPlan.generate(seed, tmp_path / "s")
            plan.validate()
            sites = {rule.site for rule in plan.rules}
            assert sites == {"worker-kill", "store-write", "store-corrupt", "latency"}

    def test_generated_params_stay_in_vocabulary(self, tmp_path):
        for seed in range(20):
            for rule in FaultPlan.generate(seed, tmp_path / "s").rules:
                if rule.site == "store-write":
                    assert rule.param in WRITE_ERRNOS
                if rule.site == "store-corrupt":
                    assert rule.param in CORRUPT_MODES

    def test_destructive_rules_are_bounded(self, tmp_path):
        # An unbounded kill/corrupt rule would make the chaos invariant
        # ("every case completes within the retry budget") unsatisfiable.
        for seed in range(20):
            for rule in FaultPlan.generate(seed, tmp_path / "s").rules:
                assert rule.times is not None
