"""Registry of experiments, keyed by experiment identifier.

The registry stores experiment *classes*, not instances: an experiment may
keep per-run state, and a shared instance would leak that state across suite
runs.  ``run_suite`` (and :func:`get_experiment`) instantiate a fresh object
per use.
"""

from __future__ import annotations

from repro.exceptions import ExperimentError
from repro.experiments.base import Experiment

_REGISTRY: dict[str, type[Experiment]] = {}


def register(experiment_class: type[Experiment]) -> type[Experiment]:
    """Class decorator: register an experiment class by its identifier."""
    identifier = experiment_class.experiment_id
    if not identifier:
        raise ExperimentError(f"{experiment_class.__name__} has no experiment_id")
    if identifier in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id: {identifier}")
    _REGISTRY[identifier] = experiment_class
    return experiment_class


def experiment_class(experiment_id: str) -> type[Experiment]:
    """Look up one experiment class by identifier.

    Raises:
        ExperimentError: for unknown identifiers.
    """
    cls = _REGISTRY.get(experiment_id)
    if cls is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        )
    return cls


def get_experiment(experiment_id: str) -> Experiment:
    """A fresh instance of one experiment.

    Raises:
        ExperimentError: for unknown identifiers.
    """
    return experiment_class(experiment_id)()


def experiment_ids() -> list[str]:
    """Every registered experiment identifier, sorted."""
    return sorted(_REGISTRY)


def all_experiments() -> list[Experiment]:
    """A fresh instance of every registered experiment, ordered by identifier."""
    return [_REGISTRY[key]() for key in sorted(_REGISTRY)]
