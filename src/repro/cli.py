"""Command-line interface of the repro package.

Usage::

    python -m repro run                          # every experiment, standard scenario
    python -m repro run table5 fig2 --scenario small
    python -m repro run --scenario large --workers 4 --json
    python -m repro run --scenario multihoming@7 # one scenario-family sample
    python -m repro run table5 --seed 42 --output-dir out/
    python -m repro run --engine legacy          # original propagation engine
    python -m repro run --propagation-workers 4  # shard prefix propagation
    python -m repro run --cache-dir .repro-cache # persist stage artifacts on disk
    python -m repro list                         # experiment ids + required stages
    python -m repro scenarios                    # scenario presets + families
    python -m repro scenarios --json             # the same, machine-readable
    python -m repro index --scenario small       # compile + size the measurement index
    python -m repro fuzz --family peering-density --count 25 --seed 7
    python -m repro fuzz --count 5 --workers 4   # every family, 5 cases each
    python -m repro sweep --family multihoming --count 10 --workers 4
    python -m repro sweep standard large --cache-dir /shared/cache
    python -m repro sweep ... --retries 3 --case-timeout 300  # chaos hardening
    python -m repro chaos --seed 7               # fault-injection invariants
    python -m repro cache stats                  # disk-tier artifact counts
    python -m repro cache clear                  # drop the disk tier
    python -m repro lint                         # static analysis over src/ + scripts/
    python -m repro lint --baseline              # enforce the committed lint baseline
    python -m repro lint --list-rules            # the rule catalogue

``--cache-dir`` (or the ``REPRO_CACHE_DIR`` environment variable) attaches
the durable artifact store (see ``docs/storage.md``): stage artifacts are
persisted once and shared by every later process.  ``python -m
repro.experiments`` remains as a thin compatibility shim over ``python -m
repro run``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.exceptions import ReproError
from repro.session.cache import CACHE_DIR_ENV, StageCache
from repro.session.scenarios import all_families, all_scenarios, resolve_scenario
from repro.session.stages import PropagationSettings
from repro.session.suite import SuiteReport, run_suite
from repro.storage.store import DiskStore

#: Default disk-tier directory of cache-aware commands when neither
#: ``--cache-dir`` nor ``REPRO_CACHE_DIR`` is set.
DEFAULT_CACHE_DIR = ".repro-cache"


def _cache_dir_from(args: argparse.Namespace, *, required: bool = False) -> str | None:
    """Resolve the disk-tier directory: flag, then env, then default.

    ``required=True`` (sweep, cache) falls back to :data:`DEFAULT_CACHE_DIR`;
    otherwise ``None`` keeps the command memory-only.
    """
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get(CACHE_DIR_ENV)
    if cache_dir is None and required:
        cache_dir = DEFAULT_CACHE_DIR
    return cache_dir


def _study_cache(args: argparse.Namespace) -> StageCache | None:
    """A disk-backed stage cache when a cache dir is configured, else ``None``.

    ``None`` keeps the pre-storage behaviour: the scenario's study uses the
    process-wide in-memory cache.
    """
    cache_dir = _cache_dir_from(args)
    if cache_dir is None:
        return None
    return StageCache(disk=DiskStore(cache_dir))


def _add_cache_dir_option(
    parser: argparse.ArgumentParser, *, required: bool = False
) -> None:
    """Attach the shared ``--cache-dir`` option to a subcommand.

    ``required`` mirrors :func:`_cache_dir_from`: sweep and cache always
    have a disk tier (falling back to :data:`DEFAULT_CACHE_DIR`), the other
    commands stay in-memory unless a directory is configured.
    """
    fallback = (
        f"else {DEFAULT_CACHE_DIR}/" if required else "else in-memory only"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist stage artifacts in this durable cache directory "
        f"(default: ${CACHE_DIR_ENV} if set, {fallback})",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of Wang & Gao (IMC 2003).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run experiments against a scenario")
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help="experiment identifiers to run (default: all)",
    )
    run.add_argument(
        "--scenario",
        default="standard",
        help="scenario preset or family sample ('family@seed') to run against "
        "(see 'scenarios'; default: standard)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="derive every stage seed from this value (default: the scenario's seeds)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="thread-pool size for independent experiments (default: 1)",
    )
    run.add_argument(
        "--engine",
        choices=("fast", "legacy"),
        default="fast",
        help="propagation engine: the compiled fast engine (default) or the "
        "legacy message-object engine (both produce identical results)",
    )
    run.add_argument(
        "--propagation-workers",
        type=int,
        default=1,
        metavar="N",
        help="shard prefix propagation over N worker processes (fast engine "
        "only; default: 1)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the structured SuiteReport as JSON instead of ASCII tables",
    )
    run.add_argument(
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="also write per-experiment .txt tables and suite.json to this directory",
    )
    _add_cache_dir_option(run)

    commands.add_parser("list", help="list experiment identifiers and required stages")

    scenarios = commands.add_parser(
        "scenarios", help="list scenario presets and scenario families"
    )
    scenarios.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the presets and families as JSON instead of aligned text",
    )

    index = commands.add_parser(
        "index",
        help="compile a scenario's measurement index and print its size counters",
    )
    index.add_argument(
        "--scenario",
        default="standard",
        help="scenario preset or family sample ('family@seed') to compile "
        "(default: standard)",
    )
    index.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the counters as JSON instead of aligned text",
    )
    _add_cache_dir_option(index)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzz: sample scenario families, run fast-vs-legacy "
        "propagation and indexed-vs-legacy analysis, check paper invariants",
    )
    fuzz.add_argument(
        "--family",
        action="append",
        dest="families",
        metavar="NAME",
        help="scenario family to sample (repeatable; default: every family)",
    )
    fuzz.add_argument(
        "--count",
        type=int,
        default=5,
        help="cases per family; case i uses seed SEED+i (default: 5)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=7,
        help="base case seed (default: 7)",
    )
    fuzz.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for independent cases (default: 1)",
    )
    fuzz.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the structured FuzzReport as JSON instead of the summary",
    )
    _add_cache_dir_option(fuzz)

    sweep = commands.add_parser(
        "sweep",
        help="run many scenario cases over one shared artifact store, with a "
        "resumable per-case manifest",
    )
    sweep.add_argument(
        "cases",
        nargs="*",
        metavar="case",
        help="scenario presets or 'family@seed' samples to sweep",
    )
    sweep.add_argument(
        "--family",
        action="append",
        dest="families",
        metavar="NAME",
        help="expand a scenario family into --count samples (repeatable)",
    )
    sweep.add_argument(
        "--count",
        type=int,
        default=5,
        help="samples per expanded family; sample i uses seed SEED+i (default: 5)",
    )
    sweep.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first sample seed of each expanded family (default: 0)",
    )
    sweep.add_argument(
        "-e",
        "--experiment",
        action="append",
        dest="experiments",
        metavar="ID",
        help="experiment id each case runs (repeatable; default: all)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for independent cases (default: 1)",
    )
    sweep.add_argument(
        "--sweep-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="manifest/report directory (default: derived under the cache dir, "
        "so re-running the same sweep resumes it)",
    )
    sweep.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore an existing manifest and recompute every case",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts a crashing case gets (exponential backoff) before "
        "it is quarantined (default: 2; deterministic errors never retry)",
    )
    sweep.add_argument(
        "--case-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget; an overrunning attempt is "
        "abandoned, counted as a failure and retried (pool mode only)",
    )
    sweep.add_argument(
        "--propagation-workers",
        type=int,
        default=1,
        metavar="N",
        help="per-case prefix-propagation fan-out width (fast engine, "
        "zero-copy shard pool; the compiled topology is shared through the "
        "store, and the result is identical for every width; default: 1)",
    )
    sweep.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="activate a deterministic fault-injection plan (inline JSON or a "
        "JSON file; see docs/robustness.md) for this sweep and its workers",
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the structured SweepReport as JSON instead of the summary",
    )
    _add_cache_dir_option(sweep, required=True)

    chaos = commands.add_parser(
        "chaos",
        help="run a sweep under a seeded fault-injection plan and assert the "
        "robustness invariants (termination, resume, report byte-identity)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="drives the case list, the fault schedule and the kill point "
        "(default: 0)",
    )
    chaos.add_argument(
        "--count",
        type=int,
        default=3,
        help="number of seed-derived cases to sweep (default: 3)",
    )
    chaos.add_argument(
        "-e",
        "--experiment",
        action="append",
        dest="experiments",
        metavar="ID",
        help="experiment id each case runs (repeatable; default: table2, table5)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=2,
        help="pool width of the chaotic sweep; >= 2 exercises worker-kill "
        "recovery (default: 2)",
    )
    chaos.add_argument(
        "--dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="scratch directory (default: a fresh temp dir, removed afterwards)",
    )
    chaos.add_argument(
        "--keep",
        action="store_true",
        help="leave the scratch directory behind for inspection",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the structured ChaosReport as JSON instead of the summary",
    )

    cache = commands.add_parser(
        "cache", help="inspect or clear the durable artifact store"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_commands.add_parser(
        "stats", help="per-stage artifact counts and sizes of the disk tier"
    )
    cache_stats.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the counters as JSON instead of aligned text",
    )
    _add_cache_dir_option(cache_stats, required=True)
    cache_clear = cache_commands.add_parser(
        "clear", help="delete every artifact file of the disk tier"
    )
    _add_cache_dir_option(cache_clear, required=True)

    from repro.devtools.lint import build_parser as build_lint_parser

    build_lint_parser(
        commands.add_parser(
            "lint",
            help="static analysis: determinism, codec-drift and pool-safety rules "
            "(see docs/linting.md)",
        )
    )
    return parser


def _command_run(args: argparse.Namespace) -> int:
    settings = PropagationSettings(
        engine=args.engine, workers=args.propagation_workers
    )
    settings.validate()
    study = resolve_scenario(args.scenario).study(
        cache=_study_cache(args), propagation=settings
    )
    if args.seed is not None:
        study = study.seeded(args.seed)
    report = run_suite(
        study,
        args.experiments or None,
        workers=args.workers,
        scenario=args.scenario,
    )
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render())
    if args.output_dir is not None:
        _write_outputs(report, args.output_dir)
    return 0


def _write_outputs(report: SuiteReport, output_dir: pathlib.Path) -> None:
    output_dir.mkdir(parents=True, exist_ok=True)
    for experiment in report.experiments:
        path = output_dir / f"{experiment.experiment_id}.txt"
        path.write_text(experiment.render() + "\n")
    (output_dir / "suite.json").write_text(report.to_json() + "\n")
    print(f"wrote {len(report.experiments)} tables + suite.json to {output_dir}/",
          file=sys.stderr)


def _command_index(args: argparse.Namespace) -> int:
    import json
    import time

    study = resolve_scenario(args.scenario).study(cache=_study_cache(args))
    started = time.perf_counter()
    engine = study.analysis()
    build_seconds = time.perf_counter() - started
    stats = engine.index.stats()
    if args.as_json:
        print(json.dumps({**stats, "build_seconds": round(build_seconds, 4)}, indent=2))
        return 0
    print(f"measurement index of scenario {args.scenario!r} "
          f"(built in {build_seconds:.2f}s incl. upstream stages):")
    width = max(len(name) for name in stats)
    for name, value in stats.items():
        print(f"  {name:{width}s} {value}")
    return 0


def _command_list() -> int:
    from repro.experiments.registry import all_experiments

    for experiment in all_experiments():
        stages = ",".join(sorted(stage.value for stage in experiment.requires)) or "-"
        print(f"{experiment.experiment_id:10s} [{stages}] {experiment.title}")
    return 0


def _command_scenarios(args: argparse.Namespace) -> int:
    import json

    scenarios = all_scenarios()
    families = all_families()
    if args.as_json:
        print(
            json.dumps(
                {
                    "scenarios": [
                        {"name": scenario.name, "description": scenario.description}
                        for scenario in scenarios
                    ],
                    "families": [
                        {
                            "name": family.name,
                            "description": family.description,
                            "parameter": family.parameter,
                        }
                        for family in families
                    ],
                },
                indent=2,
            )
        )
        return 0
    print("scenario presets:")
    for scenario in scenarios:
        print(f"  {scenario.name:20s} {scenario.description}")
    print()
    print("scenario families (sample with --scenario NAME@SEED or 'fuzz --family'):")
    for family in families:
        print(f"  {family.name:20s} {family.description}")
        print(f"  {'':20s}   {family.parameter}")
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_fuzz

    report = run_fuzz(
        args.families,
        count=args.count,
        seed=args.seed,
        workers=args.workers,
        cache_dir=_cache_dir_from(args),
    )
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.session.sweep import SweepInterrupted, expand_case_specs, run_sweep

    specs = expand_case_specs(
        args.cases, args.families, count=args.count, seed=args.seed
    )
    sweep_kwargs = {}
    if args.retries is not None:
        sweep_kwargs["retries"] = args.retries
    try:
        report = run_sweep(
            specs,
            cache_dir=_cache_dir_from(args, required=True),
            sweep_dir=args.sweep_dir,
            experiments=args.experiments,
            workers=args.workers,
            resume=not args.no_resume,
            case_timeout=args.case_timeout,
            fault_plan=args.fault_plan,
            propagation_workers=args.propagation_workers,
            **sweep_kwargs,
        )
    except SweepInterrupted as interruption:
        print(f"sweep interrupted: {interruption}", file=sys.stderr)
        return 3
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    report = run_chaos(
        args.seed,
        count=args.count,
        experiments=args.experiments,
        workers=args.workers,
        root=args.dir,
        keep=args.keep,
    )
    if args.as_json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _command_cache(args: argparse.Namespace) -> int:
    import json

    store = DiskStore(_cache_dir_from(args, required=True))
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"cleared {removed} artifact file(s) under {store.root}/")
        return 0
    # The memory tier is per-process (see StageCache.stats for in-process
    # counters); a standalone CLI invocation can only inspect the disk tier.
    stats = store.stats()
    health = store.health()
    if args.as_json:
        print(
            json.dumps(
                {"cache_dir": str(store.root), "disk": stats, "health": health},
                indent=2,
            )
        )
        return 0
    print(f"disk tier under {store.root}/:")
    if not stats:
        print("  (empty)")
    for stage, counters in stats.items():
        print(
            f"  {stage:12s} {counters['artifacts']:6d} artifact(s) "
            f"{counters['bytes']:12d} bytes"
        )
    print(
        f"  health: degraded={'yes' if health['degraded'] else 'no'} "
        f"write_failures={health['write_failures']} "
        f"quarantined={health['quarantined_files']} file(s)"
    )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import run_lint

    return run_lint(args)


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro``."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "list":
            return _command_list()
        if args.command == "index":
            return _command_index(args)
        if args.command == "fuzz":
            return _command_fuzz(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "chaos":
            return _command_chaos(args)
        if args.command == "cache":
            return _command_cache(args)
        if args.command == "lint":
            return _command_lint(args)
        return _command_scenarios(args)
    except BrokenPipeError:  # e.g. `python -m repro run | head`
        return 0
    except ReproError as error:  # unknown scenario/experiment, bad workers, ...
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
