"""Snapshot-sharing fast path for the persistence study (Figs. 6 and 7).

The persistence analysis runs the Fig. 4 SA-prefix algorithm once per
timeline snapshot over a fixed AS graph (only announcements churn between
snapshots).  :class:`SnapshotSACore` holds one memoising
:class:`~repro.core.export_policy.ExportPolicyAnalyzer` across the whole
timeline, so every cone and customer-path search is paid once instead of
once per snapshot — the Fig. 4 algorithm itself lives in exactly one place.
Results are identical to the legacy
:class:`~repro.core.persistence.PersistenceAnalyzer` (asserted by the
golden equivalence suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.export_policy import ExportPolicyAnalyzer, SAPrefixReport
from repro.core.persistence import PersistenceSeries, UptimeDistribution
from repro.net.asn import ASN
from repro.topology.graph import AnnotatedASGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bgp.rib import LocRib
    from repro.simulation.timeline import Snapshot


class SnapshotSACore:
    """Shared SA-prefix computation state for a fixed relationship graph.

    A thin wrapper holding one memoising analyzer: the customer cones and
    customer-path searches are snapshot-invariant, so amortising one
    :class:`~repro.core.export_policy.ExportPolicyAnalyzer` across a
    timeline pays each graph walk once.
    """

    def __init__(self, relationships: AnnotatedASGraph) -> None:
        """Build the shared analyzer for one (immutable) graph."""
        self.relationships = relationships
        self._analyzer = ExportPolicyAnalyzer(relationships)

    def cone(self, provider: ASN) -> set[ASN]:
        """The provider's customer cone, computed once per provider."""
        return self._analyzer.customer_cone(provider)

    def customer_path(self, provider: ASN, origin: ASN) -> list[ASN]:
        """One provider→customer path down to ``origin`` (``[]`` if none)."""
        return self._analyzer.customer_path(provider, origin)

    def sa_report(self, provider: ASN, table: "LocRib") -> SAPrefixReport:
        """The Fig. 4 report for one snapshot table, with shared memos.

        Exactly :meth:`ExportPolicyAnalyzer.find_sa_prefixes` (without
        ground-truth prefix ownership, matching the persistence analyzer's
        call) — the algorithm is not duplicated here.
        """
        return self._analyzer.find_sa_prefixes(provider, table)


def persistence_series(
    snapshots: list["Snapshot"],
    provider: ASN,
    relationships: AnnotatedASGraph,
    core: SnapshotSACore | None = None,
) -> PersistenceSeries:
    """Fig. 6: per-snapshot prefix and SA-prefix counts for one provider."""
    core = core or SnapshotSACore(relationships)
    series = PersistenceSeries(provider=provider)
    for snapshot in snapshots:
        table = snapshot.result.table_of(provider)
        report = core.sa_report(provider, table)
        series.snapshot_indices.append(snapshot.index)
        series.all_prefix_counts.append(len(table))
        series.sa_prefix_counts.append(report.sa_prefix_count)
    return series


def uptime_distribution(
    snapshots: list["Snapshot"],
    provider: ASN,
    relationships: AnnotatedASGraph,
    core: SnapshotSACore | None = None,
) -> UptimeDistribution:
    """Fig. 7: uptime and SA-uptime of every prefix seen at the provider."""
    core = core or SnapshotSACore(relationships)
    distribution = UptimeDistribution(provider=provider, snapshot_count=len(snapshots))
    for snapshot in snapshots:
        table = snapshot.result.table_of(provider)
        report = core.sa_report(provider, table)
        sa_set = report.sa_prefix_set()
        for prefix in table.prefixes():
            distribution.uptime[prefix] = distribution.uptime.get(prefix, 0) + 1
            if prefix in sa_set:
                distribution.sa_uptime[prefix] = distribution.sa_uptime.get(prefix, 0) + 1
    return distribution
