"""Version constants of the durable artifact store.

Three version axes keep stale on-disk artifacts from ever being
deserialized after a format change:

* :data:`SCHEMA_VERSION` — the version of the packing format and the store
  file layout.  Bumped when :mod:`repro.storage.packing` or
  :mod:`repro.storage.store` change their byte-level encoding.
* :data:`CODEC_VERSIONS` — one version per pipeline stage codec.  Bumped
  when a stage's lowering (the shape of its primitive tree) changes.
* the ``repro`` package version — artifacts written by a different release
  are treated as absent.

All three participate in the cache-key salt
(:func:`repro.session.cache.fingerprint`), so a format change moves every
key: old files are simply never addressed again, and the store never has to
guess whether stale bytes are still decodable.  The store file header
additionally records the schema version, the per-stage codec version and
the machine byte order, and :meth:`repro.storage.store.DiskStore.read`
refuses mismatches — defence in depth for caches shared across checkouts.
"""

from __future__ import annotations

#: Version of the packing format and the store file layout.
SCHEMA_VERSION = 1

#: Per-stage codec versions (the lowering shape of each stage artifact).
#: ``report`` is the terminal tier: a sweep case's timing-masked suite JSON,
#: addressed by the full upstream key chain plus the experiment list.
CODEC_VERSIONS: dict[str, int] = {
    "topology": 1,
    "policies": 1,
    "propagation": 1,
    "observation": 1,
    "irr": 1,
    "analysis": 1,
    "report": 1,
    # The lowered CompiledTopology tree (repro.simulation.fastpath.shm);
    # mirrors shm.FORMAT_VERSION so stale lowerings are never attached.
    "compiled-topology": 1,
}


def version_salt() -> str:
    """The cache-key salt covering every version axis.

    Returns:
        A stable string combining the ``repro`` release, the storage schema
        version and every per-stage codec version.  Any bump anywhere moves
        every content address.
    """
    from repro import __version__

    codecs = ",".join(f"{stage}v{version}" for stage, version in sorted(CODEC_VERSIONS.items()))
    return f"repro-{__version__}/schema{SCHEMA_VERSION}/{codecs}"
