#!/usr/bin/env python3
"""Sensitivity sweep over policy parameters — what the session API is for.

The paper's Section 4.3 argues its findings are robust to perturbations of
the pipeline; reproducing that kind of sensitivity analysis means building
*many* datasets that differ in exactly one stage.  With the staged
:class:`~repro.session.study.Study` the sweep pays topology generation once:
every ``study.with_(policy=...)`` variant shares the cached topology stage
and rebuilds only policies and everything downstream.

The script

1. sweeps ``selective_announcement_probability`` across five values and
   reports how the Tier-1 SA-prefix fraction (Table 5's headline number)
   responds,
2. asserts via the stage-cache counters that the topology was built exactly
   once for all five datasets, and
3. re-runs a suite with four workers and checks the report is byte-identical
   to the serial run.

Run with::

    python examples/policy_sweep.py
"""

from dataclasses import replace

from repro.experiments.common import sa_reports
from repro.reporting.tables import ascii_table, format_percent
from repro.session import StageCache, get_scenario, run_suite

SWEEP = (0.1, 0.25, 0.45, 0.65, 0.85)
SUITE = ("table5", "table8", "table9", "table10")


def main() -> None:
    cache = StageCache()
    study = get_scenario("small").study(cache=cache)

    rows = []
    for probability in SWEEP:
        variant = study.with_(
            policy=replace(study.config.policy, selective_announcement_probability=probability)
        )
        dataset = variant.dataset()
        reports = sa_reports(dataset)
        customer_prefixes = sum(r.customer_prefix_count for r in reports.values())
        sa_prefixes = sum(r.sa_prefix_count for r in reports.values())
        rows.append(
            [
                format_percent(100 * probability, 0),
                customer_prefixes,
                sa_prefixes,
                format_percent(100.0 * sa_prefixes / max(1, customer_prefixes), 1),
            ]
        )

    print(ascii_table(
        [
            "P(selective announcement)",
            "customer prefixes",
            "SA prefixes",
            "% SA at the studied Tier-1s",
        ],
        rows,
        title=f"Policy sweep across {len(SWEEP)} configurations",
    ))

    topology = cache.stats_for("topology")
    assert topology.builds == 1, f"topology built {topology.builds} times, expected 1"
    assert topology.hits >= len(SWEEP) - 1
    print(
        f"\nstage cache: topology built {topology.builds}x "
        f"(+{topology.hits} cache hits) across {len(SWEEP)} datasets"
    )

    serial = run_suite(study, SUITE, workers=1)
    parallel = run_suite(study, SUITE, workers=4)
    assert serial.to_json(include_timing=False) == parallel.to_json(include_timing=False)
    print(
        f"run_suite: {len(SUITE)} experiments, workers=4 report is byte-identical "
        f"to workers=1 ({parallel.total_seconds:.2f}s vs {serial.total_seconds:.2f}s)"
    )


if __name__ == "__main__":
    main()
