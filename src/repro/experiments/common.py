"""Shared, memoised computations used by several experiments.

Several tables consume the same intermediate products (the SA-prefix reports
of the studied providers, the set of tagging Looking Glass ASes, the
persistence timeline).  Computing them once per dataset keeps the experiment
suite fast; the caches are keyed by dataset identity (``cache_token``), so
different datasets never share results and every :class:`StageView` over the
same dataset does.  A lock serialises cache fills so ``run_suite`` workers
don't duplicate the heavy computations.
"""

from __future__ import annotations

import functools
import threading
import weakref

from repro.bgp.rib import LocRib
from repro.core.export_policy import ExportPolicyAnalyzer, SAPrefixReport
from repro.net.asn import ASN
from repro.session.stages import StageView
from repro.simulation.collector import LookingGlass
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.timeline import Snapshot, Timeline, TimelineParameters
from repro.topology.generator import GeneratorParameters, InternetGenerator

#: Number of providers studied in the SA-prefix experiments ("AS1, AS3549 and
#: AS7018" in the paper).
STUDY_PROVIDER_COUNT = 3

# Weak-keyed by the underlying StudyDataset object: entries vanish with the
# dataset (no growth over a long session, no stale hit if a dead dataset's
# memory address gets reused by a new one).
_sa_cache: "weakref.WeakKeyDictionary[object, dict[ASN, SAPrefixReport]]" = (
    weakref.WeakKeyDictionary()
)
_table_cache: "weakref.WeakKeyDictionary[object, dict[ASN, LocRib]]" = (
    weakref.WeakKeyDictionary()
)
_cache_lock = threading.Lock()


def _cache_key(dataset) -> object:
    """The underlying dataset object, stable across StageView wrappers."""
    return dataset._dataset if isinstance(dataset, StageView) else dataset


def provider_tables(dataset: StageView, count: int | None = None) -> dict[ASN, LocRib]:
    """The routing tables of the studied (largest Tier-1) providers."""
    key = _cache_key(dataset)
    with _cache_lock:
        if key not in _table_cache:
            providers = dataset.providers_under_study(count or STUDY_PROVIDER_COUNT)
            _table_cache[key] = {
                provider: dataset.result.table_of(provider) for provider in providers
            }
        return _table_cache[key]


def sa_reports(dataset: StageView) -> dict[ASN, SAPrefixReport]:
    """The Fig. 4 SA-prefix reports for the studied providers."""
    key = _cache_key(dataset)
    tables = provider_tables(dataset)
    with _cache_lock:
        if key not in _sa_cache:
            analyzer = ExportPolicyAnalyzer(dataset.ground_truth_graph)
            _sa_cache[key] = analyzer.analyze_providers(
                tables,
                known_customer_prefixes=dataset.internet.originated,
            )
        return _sa_cache[key]


def all_provider_reports(dataset: StageView) -> dict[ASN, SAPrefixReport]:
    """SA-prefix reports for every observed AS that has customers (Table 5)."""
    analyzer = ExportPolicyAnalyzer(dataset.ground_truth_graph)
    graph = dataset.ground_truth_graph
    tables = {
        asn: dataset.result.table_of(asn)
        for asn in dataset.result.observed_ases
        if graph.customers_of(asn)
    }
    return analyzer.analyze_providers(
        tables, known_customer_prefixes=dataset.internet.originated
    )


def tagging_glasses(dataset: StageView) -> list[LookingGlass]:
    """Looking Glass ASes that tag routes with relationship communities."""
    return [
        dataset.looking_glass_of(asn)
        for asn in dataset.looking_glass_ases
        if dataset.assignment.policies[asn].community_plan is not None
    ]


@functools.lru_cache(maxsize=4)
def persistence_snapshots(
    snapshot_count: int = 31, seed: int = 315
) -> tuple[ASN, tuple[Snapshot, ...], object]:
    """A memoised persistence timeline on a dedicated small Internet.

    The persistence study (Figs. 6 and 7) re-simulates the Internet once per
    snapshot, so it runs on a smaller topology than the main dataset.
    Returns ``(studied provider, snapshots, annotated graph)``.
    """
    internet = InternetGenerator(
        GeneratorParameters(
            seed=777, tier1_count=4, tier2_count=8, tier3_count=16, stub_count=90
        )
    ).generate()
    assignment = PolicyGenerator(PolicyParameters(seed=915)).generate(internet)
    provider = max(internet.tier1, key=internet.graph.degree)
    timeline = Timeline(
        internet,
        assignment,
        observed_ases=[provider],
        parameters=TimelineParameters(
            snapshot_count=snapshot_count,
            churn_probability=0.015,
            appear_probability=0.008,
            disappear_probability=0.005,
            seed=seed,
        ),
    )
    return provider, tuple(timeline.run()), internet.graph
