"""Unit tests for relationship-accuracy measurement."""

from repro.relationships.validation import compare_with_ground_truth
from repro.topology.graph import AnnotatedASGraph


def ground_truth():
    return AnnotatedASGraph.from_edges(
        provider_customer=[(1, 10), (2, 20), (10, 100), (20, 200)],
        peer_peer=[(1, 2)],
    )


class TestCompareWithGroundTruth:
    def test_perfect_agreement(self):
        truth = ground_truth()
        accuracy = compare_with_ground_truth(truth, truth)
        assert accuracy.accuracy == 1.0
        assert accuracy.total_edges == 5
        assert accuracy.missing_edges == 0
        assert accuracy.extra_edges == 0

    def test_wrong_orientation_counted_incorrect(self):
        inferred = AnnotatedASGraph.from_edges(
            provider_customer=[(10, 1), (2, 20), (10, 100), (20, 200)],
            peer_peer=[(1, 2)],
        )
        accuracy = compare_with_ground_truth(inferred, ground_truth())
        assert accuracy.correct_edges == 4
        assert accuracy.total_edges == 5
        assert 0 < accuracy.accuracy < 1

    def test_peer_misclassified_as_transit(self):
        inferred = AnnotatedASGraph.from_edges(
            provider_customer=[(1, 10), (2, 20), (10, 100), (20, 200), (1, 2)],
        )
        accuracy = compare_with_ground_truth(inferred, ground_truth())
        assert accuracy.correct_edges == 4
        assert ("p2p", "p2c") in accuracy.confusion

    def test_missing_and_extra_edges(self):
        inferred = AnnotatedASGraph.from_edges(
            provider_customer=[(1, 10), (2, 20), (10, 100), (7, 8)],
        )
        accuracy = compare_with_ground_truth(inferred, ground_truth())
        assert accuracy.missing_edges == 2  # (20,200) and (1,2) absent
        assert accuracy.extra_edges == 1  # (7,8) not in reference

    def test_per_as_breakdown(self):
        inferred = AnnotatedASGraph.from_edges(
            provider_customer=[(10, 1), (2, 20), (10, 100), (20, 200)],
            peer_peer=[(1, 2)],
        )
        accuracy = compare_with_ground_truth(inferred, ground_truth(), focus_ases=[1, 2])
        # AS1 has neighbors 10 (wrong orientation) and 2 (correct peer).
        assert accuracy.per_as[1] == (1, 2)
        assert accuracy.per_as_percentage(1) == 50.0
        # AS2 has neighbors 20 and 1, both correct.
        assert accuracy.per_as[2] == (2, 2)
        assert accuracy.per_as_percentage(2) == 100.0

    def test_per_as_percentage_unknown_as(self):
        accuracy = compare_with_ground_truth(ground_truth(), ground_truth())
        assert accuracy.per_as_percentage(999) == 0.0

    def test_empty_reference(self):
        accuracy = compare_with_ground_truth(ground_truth(), AnnotatedASGraph())
        assert accuracy.accuracy == 0.0
        assert accuracy.total_edges == 0
