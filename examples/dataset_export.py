#!/usr/bin/env python3
"""Export a study dataset to disk and analyse it from the files alone.

Downstream users often want the measurement artifacts, not the simulator:
MRT-style RIB dumps, ``show ip bgp`` text and an IRR database.  This example

1. builds the small study dataset,
2. exports it to ``./study-archive/`` (MRT per observed AS, Looking Glass
   text, RPSL, ground-truth CSVs),
3. loads the archive back — touching only the files — and
4. re-runs the SA-prefix inference on the loaded tables, confirming the
   result is identical to the in-memory analysis.

Run with::

    python examples/dataset_export.py [output-directory]
"""

import sys

from repro.core.export_policy import ExportPolicyAnalyzer
from repro.data.archive import export_dataset, load_dataset
from repro.reporting.tables import ascii_table
from repro.session import get_scenario


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "study-archive"
    dataset = get_scenario("small").study().dataset()
    root = export_dataset(dataset, output_dir)
    print(f"Exported the study dataset to {root}/")
    print((root / "MANIFEST.txt").read_text())

    archive = load_dataset(root)
    provider = dataset.providers_under_study(1)[0]

    live_report = ExportPolicyAnalyzer(dataset.ground_truth_graph).find_sa_prefixes(
        provider, dataset.result.table_of(provider)
    )
    disk_report = ExportPolicyAnalyzer(archive.graph).find_sa_prefixes(
        provider, archive.tables[provider]
    )
    rows = [
        ["in memory", live_report.customer_prefix_count, live_report.sa_prefix_count],
        ["from the archive", disk_report.customer_prefix_count, disk_report.sa_prefix_count],
    ]
    print(ascii_table(
        ["analysis input", "customer prefixes", "SA prefixes"],
        rows,
        title=f"SA-prefix inference at AS{provider}",
    ))
    assert disk_report.sa_prefix_set() == live_report.sa_prefix_set()
    print("The on-disk archive reproduces the in-memory analysis exactly.")


if __name__ == "__main__":
    main()
