"""Fixture: unpicklable pool submissions and stale worker state."""
from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}


def _worker(case):
    return _RESULTS.get(case)


def run(cases, helper):
    def local(case):
        return case * 2

    with ProcessPoolExecutor() as pool:
        pool.submit(lambda: 1)
        pool.submit(local, cases[0])
        pool.submit(helper.compute, cases[0])
        return list(pool.map(_worker, cases))
