"""RPSL aut-num objects and a synthetic IRR database.

Section 4.1 of the paper complements the Looking-Glass-based LOCAL_PREF
inference with policies registered in the Internet Routing Registry, written
in the Routing Policy Specification Language (RPSL)::

    aut-num: AS1
    import: from AS2 action pref = 1; accept ANY

RPSL ``pref`` is *opposite* to LOCAL_PREF: smaller values are more preferred
(the paper's footnote 2).  This module provides:

* :class:`PolicyLine` / :class:`AutNumObject` — a parsed aut-num object with
  its import/export attributes,
* :class:`IrrDatabase` — a collection of aut-num objects with last-update
  dates, a text serialisation, and a generator that registers the simulated
  ASes' import policies with configurable incompleteness and staleness
  (matching the paper's observation that IRR data is partly missing or
  out of date).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import DataFormatError
from repro.net.asn import ASN
from repro.simulation.policies import PolicyAssignment
from repro.topology.generator import SyntheticInternet
from repro.topology.graph import Relationship

#: RPSL pref values are derived from LOCAL_PREF with this pivot:
#: ``pref = PREF_PIVOT - local_pref`` (smaller pref == more preferred, so a
#: higher LOCAL_PREF maps to a smaller pref).
PREF_PIVOT = 1000


def local_pref_to_rpsl_pref(local_pref: int) -> int:
    """Map a LOCAL_PREF value onto an RPSL ``pref`` value."""
    return PREF_PIVOT - local_pref


def rpsl_pref_to_local_pref(pref: int) -> int:
    """Map an RPSL ``pref`` value back onto a LOCAL_PREF value."""
    return PREF_PIVOT - pref


@dataclass(frozen=True)
class PolicyLine:
    """One ``import:`` or ``export:`` attribute of an aut-num object.

    Attributes:
        direction: ``"import"`` or ``"export"``.
        peer_as: the neighbor AS the line refers to.
        pref: the RPSL preference for import lines (``None`` when absent).
        filter_text: the accept/announce filter (``"ANY"``, ``"AS-FOO"``, ...).
    """

    direction: str
    peer_as: ASN
    pref: int | None = None
    filter_text: str = "ANY"

    def render(self) -> str:
        """Render the attribute value in RPSL syntax."""
        if self.direction == "import":
            action = f" action pref = {self.pref};" if self.pref is not None else ""
            return f"from AS{self.peer_as}{action} accept {self.filter_text}"
        return f"to AS{self.peer_as} announce {self.filter_text}"


_IMPORT_RE = re.compile(
    r"from\s+AS(?P<asn>\d+)(?:\s+action\s+pref\s*=\s*(?P<pref>\d+)\s*;)?\s+accept\s+(?P<filter>.+)",
    re.IGNORECASE,
)
_EXPORT_RE = re.compile(
    r"to\s+AS(?P<asn>\d+)\s+announce\s+(?P<filter>.+)", re.IGNORECASE
)


@dataclass
class AutNumObject:
    """One aut-num object.

    Attributes:
        asn: the AS the object describes.
        as_name: the ``as-name:`` attribute.
        imports: the ``import:`` lines.
        exports: the ``export:`` lines.
        last_updated: the ``changed:`` date in ``YYYYMMDD`` form.
        source: the registry the object came from.
    """

    asn: ASN
    as_name: str = ""
    imports: list[PolicyLine] = field(default_factory=list)
    exports: list[PolicyLine] = field(default_factory=list)
    last_updated: str = "20021101"
    source: str = "RADB"

    def import_pref_for(self, neighbor: ASN) -> int | None:
        """The RPSL pref registered for routes imported from ``neighbor``."""
        for line in self.imports:
            if line.peer_as == neighbor and line.pref is not None:
                return line.pref
        return None

    def neighbors(self) -> set[ASN]:
        """Every AS mentioned in import or export lines."""
        return {line.peer_as for line in self.imports + self.exports}

    def render(self) -> str:
        """Render the object in RPSL text form."""
        lines = [f"aut-num: AS{self.asn}"]
        if self.as_name:
            lines.append(f"as-name: {self.as_name}")
        for line in self.imports:
            lines.append(f"import: {line.render()}")
        for line in self.exports:
            lines.append(f"export: {line.render()}")
        lines.append(f"changed: noc@as{self.asn}.example {self.last_updated}")
        lines.append(f"source: {self.source}")
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "AutNumObject":
        """Parse one aut-num object from RPSL text."""
        obj: AutNumObject | None = None
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            key, _, value = line.partition(":")
            key = key.strip().lower()
            value = value.strip()
            if key == "aut-num":
                if not value.upper().startswith("AS"):
                    raise DataFormatError(f"bad aut-num value: {value!r}")
                obj = cls(asn=int(value[2:]))
            elif obj is None:
                raise DataFormatError(f"attribute before aut-num: {line!r}")
            elif key == "as-name":
                obj.as_name = value
            elif key == "import":
                match = _IMPORT_RE.match(value)
                if not match:
                    raise DataFormatError(f"unparsable import line: {value!r}")
                obj.imports.append(
                    PolicyLine(
                        direction="import",
                        peer_as=int(match.group("asn")),
                        pref=int(match.group("pref")) if match.group("pref") else None,
                        filter_text=match.group("filter").strip(),
                    )
                )
            elif key == "export":
                match = _EXPORT_RE.match(value)
                if not match:
                    raise DataFormatError(f"unparsable export line: {value!r}")
                obj.exports.append(
                    PolicyLine(
                        direction="export",
                        peer_as=int(match.group("asn")),
                        filter_text=match.group("filter").strip(),
                    )
                )
            elif key == "changed":
                parts = value.split()
                if parts and parts[-1].isdigit():
                    obj.last_updated = parts[-1]
            elif key == "source":
                obj.source = value
            # Other attributes (descr, admin-c, ...) are ignored.
        if obj is None:
            raise DataFormatError("no aut-num attribute found")
        return obj


@dataclass
class IrrDatabase:
    """A collection of aut-num objects, indexable by AS number."""

    objects: dict[ASN, AutNumObject] = field(default_factory=dict)

    def add(self, obj: AutNumObject) -> None:
        """Register (or replace) an object."""
        self.objects[obj.asn] = obj

    def get(self, asn: ASN) -> AutNumObject | None:
        """Return the object for an AS, if registered."""
        return self.objects.get(asn)

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[AutNumObject]:
        return iter(self.objects.values())

    def ases(self) -> list[ASN]:
        """Every registered AS, sorted."""
        return sorted(self.objects)

    def updated_during(self, year: str) -> list[AutNumObject]:
        """Objects whose last update falls in the given year (paper Section 4.1)."""
        return [obj for obj in self.objects.values() if obj.last_updated.startswith(year)]

    # -- serialisation ----------------------------------------------------------

    def render(self) -> str:
        """Render the whole database as concatenated RPSL objects."""
        return "\n".join(self.objects[asn].render() for asn in sorted(self.objects))

    @classmethod
    def parse(cls, text: str) -> "IrrDatabase":
        """Parse a concatenation of aut-num objects (blank-line separated)."""
        database = cls()
        chunk: list[str] = []
        for line in text.splitlines():
            if line.strip():
                chunk.append(line)
                continue
            if chunk:
                database.add(AutNumObject.parse("\n".join(chunk)))
                chunk = []
        if chunk:
            database.add(AutNumObject.parse("\n".join(chunk)))
        return database

    # -- synthesis from a simulation ------------------------------------------------

    @classmethod
    def from_assignment(
        cls,
        internet: SyntheticInternet,
        assignment: PolicyAssignment,
        registration_probability: float = 0.7,
        stale_probability: float = 0.15,
        seed: int = 1125,
        current_year: str = "2002",
    ) -> "IrrDatabase":
        """Build a synthetic IRR from the simulated Internet's policies.

        Each AS registers with probability ``registration_probability``; a
        registered object is *stale* with probability ``stale_probability``,
        in which case its ``changed:`` date predates ``current_year`` and its
        import prefs describe a default (typical) policy rather than the one
        actually deployed — reproducing the incompleteness and staleness the
        paper works around by filtering on the update date.
        """
        rng = random.Random(seed)
        database = cls()
        graph = internet.graph
        for asn in sorted(graph.ases()):
            if rng.random() > registration_probability:
                continue
            policy = assignment.policy_for(asn)
            stale = rng.random() < stale_probability
            obj = AutNumObject(
                asn=asn,
                as_name=f"AS{asn}-NET",
                last_updated=(
                    f"{int(current_year) - rng.randint(1, 3)}"
                    f"{rng.randint(1, 12):02d}{rng.randint(1, 28):02d}"
                    if stale
                    else f"{current_year}{rng.randint(1, 11):02d}{rng.randint(1, 28):02d}"
                ),
            )
            for neighbor in sorted(graph.neighbors(asn)):
                relationship = graph.relationship(asn, neighbor)
                if stale:
                    local_pref = policy.local_pref.value_for(relationship)
                else:
                    local_pref = policy.import_local_pref(
                        neighbor, relationship, prefix=_ANY_PREFIX
                    )
                obj.imports.append(
                    PolicyLine(
                        direction="import",
                        peer_as=neighbor,
                        pref=local_pref_to_rpsl_pref(local_pref),
                        filter_text="ANY"
                        if relationship in (Relationship.PROVIDER, Relationship.PEER)
                        else f"AS{neighbor}",
                    )
                )
                obj.exports.append(
                    PolicyLine(
                        direction="export",
                        peer_as=neighbor,
                        filter_text=f"AS{asn}"
                        if relationship in (Relationship.PROVIDER, Relationship.PEER)
                        else "ANY",
                    )
                )
            database.add(obj)
        return database


#: Placeholder prefix used when asking a policy for its neighbor-level
#: LOCAL_PREF (per-prefix overrides are irrelevant for IRR registration).
from repro.net.prefix import Prefix as _Prefix

_ANY_PREFIX = _Prefix.parse("192.0.2.0/24")
