"""Shared Hypothesis strategies and tiny-topology builders for the test suite.

One home for the generators that used to be copy-pasted across the
``test_*_properties.py`` files: prefixes, communities, AS paths, routes
(both the format-roundtrip flavour and the decision-process flavour with
every tie-breaker attribute), and the small seeded Internets the
propagation properties and the fuzz-harness unit tests sample.

Import as ``from strategies import prefixes, ...`` — ``tests/conftest.py``
puts this directory on ``sys.path`` for every test module.
"""

from hypothesis import strategies as st

from repro.bgp.attributes import Community, CommunitySet, Origin
from repro.bgp.route import Route, RouteSource
from repro.net.aspath import ASPath
from repro.net.prefix import IPV4_MAX, Prefix
from repro.topology.generator import GeneratorParameters, InternetGenerator


def prefixes(min_length=0, max_length=32):
    """Arbitrary IPv4 prefixes with lengths in ``[min_length, max_length]``."""
    return st.builds(
        Prefix,
        network=st.integers(min_value=0, max_value=IPV4_MAX),
        length=st.integers(min_value=min_length, max_value=max_length),
    )


def communities():
    """Arbitrary ``asn:value`` BGP communities."""
    return st.builds(
        Community,
        asn=st.integers(min_value=1, max_value=65535),
        value=st.integers(min_value=0, max_value=65535),
    )


def as_paths(min_size=1, max_size=6, max_asn=65000):
    """Arbitrary loop-unaware AS paths of bounded length."""
    return st.lists(
        st.integers(min_value=1, max_value=max_asn), min_size=min_size, max_size=max_size
    ).map(ASPath)


def seeds(max_value=10_000):
    """Positive integer seeds for seeded generators."""
    return st.integers(min_value=1, max_value=max_value)


def format_routes():
    """Routes with the attributes the on-disk formats must round-trip."""
    return st.builds(
        Route,
        prefix=prefixes(min_length=8, max_length=28),
        as_path=as_paths(),
        local_pref=st.integers(min_value=0, max_value=400),
        med=st.integers(min_value=0, max_value=1000),
        origin=st.sampled_from(list(Origin)),
        communities=st.lists(communities(), max_size=4).map(CommunitySet),
    )


def decision_routes(prefix):
    """Routes to one fixed prefix exercising every decision tie-breaker."""
    return st.builds(
        Route,
        prefix=st.just(prefix),
        as_path=as_paths(max_asn=500),
        local_pref=st.integers(min_value=0, max_value=200),
        origin=st.sampled_from(list(Origin)),
        med=st.integers(min_value=0, max_value=100),
        source=st.sampled_from([RouteSource.EBGP, RouteSource.IBGP]),
        igp_metric=st.integers(min_value=0, max_value=50),
        router_id=st.integers(min_value=1, max_value=30),
    )


def tiny_generator_parameters(seed):
    """The ~30-AS topology parameters the property tests simulate on."""
    return GeneratorParameters(
        seed=seed,
        tier1_count=3,
        tier2_count=4,
        tier3_count=6,
        stub_count=18,
        prefixes_per_stub=2,
    )


def tiny_internet(seed):
    """A generated ~30-AS Internet, cheap enough for per-example simulation."""
    return InternetGenerator(tiny_generator_parameters(seed)).generate()
