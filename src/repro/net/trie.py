"""A binary radix trie keyed by IPv4 prefixes.

The trie supports the three lookups the analysis pipeline needs:

* exact lookup and longest-prefix match (used by the BGP substrate),
* *covering* search — all stored prefixes that contain a given prefix
  (used by the prefix-aggregation analysis of Table 9), and
* *covered* search — all stored prefixes contained inside a given prefix
  (used by the prefix-splitting analysis of Table 9).

Values of any type can be associated with prefixes; the trie behaves like a
mapping from :class:`~repro.net.prefix.Prefix` to the stored value.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, TypeVar

from repro.net.prefix import IPV4_BITS, Prefix

ValueT = TypeVar("ValueT")

_SENTINEL = object()


class _Node:
    """One node of the radix trie (internal)."""

    __slots__ = ("children", "value", "prefix")

    def __init__(self) -> None:
        self.children: list["_Node | None"] = [None, None]
        self.value: Any = _SENTINEL
        self.prefix: Prefix | None = None

    @property
    def has_value(self) -> bool:
        return self.value is not _SENTINEL


def _bit_at(network: int, position: int) -> int:
    """Return the bit of ``network`` at ``position`` (0 is the most significant)."""
    return (network >> (IPV4_BITS - 1 - position)) & 1


class PrefixTrie(Generic[ValueT]):
    """A mapping from IPv4 prefixes to values with longest-prefix-match lookups."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    # -- mutation ---------------------------------------------------------

    def insert(self, prefix: Prefix, value: ValueT) -> None:
        """Insert or replace the value stored for ``prefix``."""
        node = self._root
        network = prefix.network
        shift = IPV4_BITS
        for _ in range(prefix.length):
            shift -= 1
            bit = (network >> shift) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.prefix = prefix

    def insert_if_absent(self, prefix: Prefix, value: ValueT) -> ValueT:
        """Store ``value`` for ``prefix`` unless one exists; return the stored value.

        A single-walk combination of :meth:`get` and :meth:`insert` for bulk
        loaders that mostly insert fresh prefixes.
        """
        node = self._root
        network = prefix.network
        shift = IPV4_BITS
        for _ in range(prefix.length):
            shift -= 1
            bit = (network >> shift) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if node.has_value:
            return node.value
        node.value = value
        node.prefix = prefix
        self._size += 1
        return value

    def remove(self, prefix: Prefix) -> None:
        """Remove ``prefix`` from the trie.

        Raises:
            KeyError: if the prefix is not present.
        """
        path: list[tuple[_Node, int]] = []
        node = self._root
        for position in range(prefix.length):
            bit = _bit_at(prefix.network, position)
            child = node.children[bit]
            if child is None:
                raise KeyError(prefix)
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise KeyError(prefix)
        node.value = _SENTINEL
        node.prefix = None
        self._size -= 1
        # Prune now-empty branches so memory stays proportional to contents.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is not None and not child.has_value and child.children == [None, None]:
                parent.children[bit] = None
            else:
                break

    def clear(self) -> None:
        """Remove every entry."""
        self._root = _Node()
        self._size = 0

    # -- lookups ------------------------------------------------------------

    def get(self, prefix: Prefix, default: ValueT | None = None) -> ValueT | None:
        """Return the value stored for exactly ``prefix``, or ``default``."""
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def longest_match(self, prefix: Prefix) -> tuple[Prefix, ValueT] | None:
        """Return the most specific stored prefix covering ``prefix`` and its value."""
        best: tuple[Prefix, ValueT] | None = None
        node = self._root
        if node.has_value:
            best = (node.prefix, node.value)  # type: ignore[arg-type]
        for position in range(prefix.length):
            bit = _bit_at(prefix.network, position)
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[arg-type]
        return best

    def lookup_address(self, address: int | str) -> tuple[Prefix, ValueT] | None:
        """Longest-prefix match for a single address (dotted quad or integer)."""
        from repro.net.prefix import parse_ipv4

        if isinstance(address, str):
            address = parse_ipv4(address)
        return self.longest_match(Prefix(address, IPV4_BITS))

    def covering(self, prefix: Prefix) -> Iterator[tuple[Prefix, ValueT]]:
        """Yield stored (prefix, value) pairs that contain ``prefix``, shortest first.

        The prefix itself is included when present.
        """
        node = self._root
        if node.has_value:
            yield node.prefix, node.value  # type: ignore[misc]
        for position in range(prefix.length):
            bit = _bit_at(prefix.network, position)
            child = node.children[bit]
            if child is None:
                return
            node = child
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]

    def covered(self, prefix: Prefix) -> Iterator[tuple[Prefix, ValueT]]:
        """Yield stored (prefix, value) pairs contained inside ``prefix`` (inclusive)."""
        node = self._find_exact(prefix)
        if node is None:
            return
        yield from self._walk(node)

    def has_more_specific(self, prefix: Prefix) -> bool:
        """Return ``True`` if a strictly more specific prefix than ``prefix`` is stored."""
        for stored, _ in self.covered(prefix):
            if stored.length > prefix.length:
                return True
        return False

    def has_less_specific(self, prefix: Prefix) -> bool:
        """Return ``True`` if a strictly less specific covering prefix is stored."""
        for stored, _ in self.covering(prefix):
            if stored.length < prefix.length:
                return True
        return False

    # -- iteration ------------------------------------------------------------

    def items(self) -> Iterator[tuple[Prefix, ValueT]]:
        """Yield every stored (prefix, value) pair in trie (address) order."""
        yield from self._walk(self._root)

    def prefixes(self) -> Iterator[Prefix]:
        """Yield every stored prefix in trie (address) order."""
        for prefix, _ in self.items():
            yield prefix

    def _walk(self, node: _Node) -> Iterator[tuple[Prefix, ValueT]]:
        stack: list[_Node] = [node]
        while stack:
            current = stack.pop()
            if current.has_value:
                yield current.prefix, current.value  # type: ignore[misc]
            for child in reversed(current.children):
                if child is not None:
                    stack.append(child)

    def _find_exact(self, prefix: Prefix) -> _Node | None:
        node = self._root
        network = prefix.network
        shift = IPV4_BITS
        for _ in range(prefix.length):
            shift -= 1
            child = node.children[(network >> shift) & 1]
            if child is None:
                return None
            node = child
        return node

    # -- mapping protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: object) -> bool:
        if not isinstance(prefix, Prefix):
            return False
        node = self._find_exact(prefix)
        return node is not None and node.has_value

    def __getitem__(self, prefix: Prefix) -> ValueT:
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            raise KeyError(prefix)
        return node.value

    def __setitem__(self, prefix: Prefix, value: ValueT) -> None:
        self.insert(prefix, value)

    def __delitem__(self, prefix: Prefix) -> None:
        self.remove(prefix)

    def __iter__(self) -> Iterator[Prefix]:
        return self.prefixes()

    def __repr__(self) -> str:
        return f"PrefixTrie(size={self._size})"
