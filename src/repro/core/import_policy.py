"""Import-policy inference: typical vs. atypical LOCAL_PREF (paper Section 4.1).

Two data sources are analysed, exactly as in the paper:

* **Looking Glass tables** (Table 2) — for each prefix with candidate routes
  from neighbors of different relationship classes, check whether the
  LOCAL_PREF values conform to the typical order (customer routes above peer
  and provider routes, peer routes above provider routes).  The result per
  AS is the percentage of comparable prefixes that are typical.
* **The IRR** (Table 3) — for each registered AS with enough neighbors,
  translate the RPSL ``pref`` values of its import lines back into
  LOCAL_PREF (``pref`` is opposite to LOCAL_PREF) and check, for every pair
  of neighbors with different relationships, whether the pair conforms to
  the typical order.

Relationships are supplied as an annotated AS graph — either the ground
truth or an inferred graph — so the sensitivity to inference error
(Section 4.3) can be measured by swapping the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.bgp.route import Route
from repro.data.rpsl import IrrDatabase, rpsl_pref_to_local_pref
from repro.exceptions import InferenceError
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.simulation.collector import LookingGlass
from repro.topology.graph import AnnotatedASGraph, Relationship

#: The strict ordering the paper calls *typical*: customer above peer above
#: provider.  Siblings are treated like customers for comparison purposes.
_TYPICAL_RANK = {
    Relationship.CUSTOMER: 3,
    Relationship.SIBLING: 3,
    Relationship.PEER: 2,
    Relationship.PROVIDER: 1,
}


def _conforms(
    first_rel: Relationship, first_pref: int, second_rel: Relationship, second_pref: int
) -> bool:
    """Check one pair of (relationship, LOCAL_PREF) observations for typicality."""
    first_rank = _TYPICAL_RANK[first_rel]
    second_rank = _TYPICAL_RANK[second_rel]
    if first_rank == second_rank:
        return True
    if first_rank > second_rank:
        return first_pref > second_pref
    return second_pref > first_pref


@dataclass
class TypicalityResult:
    """Typical-LOCAL_PREF statistics for one AS from its routing table.

    Attributes:
        asn: the AS analysed.
        comparable_prefixes: prefixes with candidate routes from at least two
            relationship classes.
        typical_prefixes: how many of them conform to the typical order.
        atypical_examples: up to a handful of offending prefixes, for
            inspection.
    """

    asn: ASN
    comparable_prefixes: int = 0
    typical_prefixes: int = 0
    atypical_examples: list[Prefix] = field(default_factory=list)

    @property
    def percent_typical(self) -> float:
        """Percentage of comparable prefixes with typical LOCAL_PREF."""
        if self.comparable_prefixes == 0:
            return 100.0
        return 100.0 * self.typical_prefixes / self.comparable_prefixes


@dataclass
class IrrTypicalityResult:
    """Typical-LOCAL_PREF statistics for one AS from its IRR registration.

    Attributes:
        asn: the AS analysed.
        neighbor_count: neighbors with a registered import preference and a
            known relationship.
        comparable_pairs: neighbor pairs with different relationships.
        typical_pairs: pairs conforming to the typical order.
    """

    asn: ASN
    neighbor_count: int = 0
    comparable_pairs: int = 0
    typical_pairs: int = 0

    @property
    def percent_typical(self) -> float:
        """Percentage of comparable neighbor pairs with typical preferences."""
        if self.comparable_pairs == 0:
            return 100.0
        return 100.0 * self.typical_pairs / self.comparable_pairs


class ImportPolicyAnalyzer:
    """Infers LOCAL_PREF typicality from routing tables and from the IRR."""

    def __init__(self, relationships: AnnotatedASGraph) -> None:
        self.relationships = relationships

    # -- from Looking Glass tables (Table 2) -------------------------------------

    def analyze_looking_glass(self, glass: LookingGlass) -> TypicalityResult:
        """Compute the Table 2 row for one Looking Glass AS."""
        result = TypicalityResult(asn=glass.asn)
        for entry in glass.table.entries():
            observations = self._classified_routes(glass.asn, entry.routes)
            if len({relationship for relationship, _ in observations}) < 2:
                continue
            result.comparable_prefixes += 1
            if self._prefix_is_typical(observations):
                result.typical_prefixes += 1
            elif len(result.atypical_examples) < 10:
                result.atypical_examples.append(entry.prefix)
        return result

    def analyze_many(self, glasses: list[LookingGlass]) -> list[TypicalityResult]:
        """Compute Table 2 for several Looking Glass ASes."""
        return [self.analyze_looking_glass(glass) for glass in glasses]

    def _classified_routes(
        self, viewpoint: ASN, routes: list[Route]
    ) -> list[tuple[Relationship, int]]:
        observations: list[tuple[Relationship, int]] = []
        for route in routes:
            if route.is_local:
                continue
            relationship = self.relationships.relationship(viewpoint, route.next_hop_as)
            if relationship is None:
                continue
            observations.append((relationship, route.local_pref))
        return observations

    @staticmethod
    def _prefix_is_typical(observations: list[tuple[Relationship, int]]) -> bool:
        for (rel_a, pref_a), (rel_b, pref_b) in combinations(observations, 2):
            if not _conforms(rel_a, pref_a, rel_b, pref_b):
                return False
        return True

    # -- from the IRR (Table 3) ------------------------------------------------------

    def analyze_irr(
        self,
        irr: IrrDatabase,
        min_neighbors: int = 10,
        updated_during: str | None = "2002",
    ) -> list[IrrTypicalityResult]:
        """Compute the Table 3 rows from a (possibly stale, incomplete) IRR.

        Mirrors the paper's filtering: objects not updated during the study
        year are discarded, and only ASes with at least ``min_neighbors``
        neighbors whose relationships are known are analysed (the paper uses
        50 neighbors on the real Internet; the synthetic Internet is smaller,
        hence the lower default).
        """
        if min_neighbors < 2:
            raise InferenceError("min_neighbors must be at least 2")
        results: list[IrrTypicalityResult] = []
        candidates = (
            irr.updated_during(updated_during) if updated_during is not None else list(irr)
        )
        for obj in candidates:
            observations: list[tuple[Relationship, int]] = []
            for line in obj.imports:
                if line.pref is None:
                    continue
                relationship = self.relationships.relationship(obj.asn, line.peer_as)
                if relationship is None:
                    continue
                observations.append((relationship, rpsl_pref_to_local_pref(line.pref)))
            if len(observations) < min_neighbors:
                continue
            result = IrrTypicalityResult(asn=obj.asn, neighbor_count=len(observations))
            for (rel_a, pref_a), (rel_b, pref_b) in combinations(observations, 2):
                if _TYPICAL_RANK[rel_a] == _TYPICAL_RANK[rel_b]:
                    continue
                result.comparable_pairs += 1
                if _conforms(rel_a, pref_a, rel_b, pref_b):
                    result.typical_pairs += 1
            if result.comparable_pairs > 0:
                results.append(result)
        return results
