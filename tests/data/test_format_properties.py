"""Property-based round-trip tests for the on-disk formats (hypothesis)."""

import io

from hypothesis import given, settings, strategies as st
from strategies import format_routes as routes

from repro.bgp.rib import LocRib
from repro.data.mrt import MrtReader, MrtWriter
from repro.data.rpsl import AutNumObject, PolicyLine
from repro.data.show_ip_bgp import (
    format_show_ip_bgp_detail,
    format_show_ip_bgp_table,
    parse_show_ip_bgp_detail,
    parse_show_ip_bgp_table,
)
from repro.net.prefix import Prefix


@settings(max_examples=40, deadline=None)
@given(st.lists(routes(), min_size=1, max_size=15))
def test_mrt_roundtrip_preserves_routes(route_list):
    table = LocRib(owner=65000)
    table.add_routes(route_list)
    buffer = io.BytesIO()
    MrtWriter(buffer).write_table(table)
    buffer.seek(0)
    restored = MrtReader(buffer).read_tables()[65000]
    assert len(restored) == len(table)
    for entry in table.entries():
        restored_routes = {
            (r.next_hop_as, r.as_path, r.local_pref, r.med, r.origin, r.communities)
            for r in restored.all_routes(entry.prefix)
        }
        original_routes = {
            (r.next_hop_as, r.as_path, r.local_pref, r.med, r.origin, r.communities)
            for r in entry.routes
        }
        assert restored_routes == original_routes


@settings(max_examples=40, deadline=None)
@given(st.lists(routes(), min_size=1, max_size=10))
def test_show_ip_bgp_table_roundtrip_preserves_key_attributes(route_list):
    table = LocRib(owner=65000)
    table.add_routes(route_list)
    text = format_show_ip_bgp_table(table)
    restored = parse_show_ip_bgp_table(text, view_as=65000)
    assert len(restored) == len(table)
    for entry in table.entries():
        original = {(r.next_hop_as, r.as_path, r.local_pref, r.med) for r in entry.routes}
        parsed = {
            (r.next_hop_as, r.as_path, r.local_pref, r.med)
            for r in restored.all_routes(entry.prefix)
        }
        assert parsed == original


@settings(max_examples=40, deadline=None)
@given(st.lists(routes(), min_size=1, max_size=6))
def test_show_ip_bgp_detail_roundtrip(route_list):
    prefix = Prefix.parse("10.20.0.0/16")
    table = LocRib(owner=65000)
    table.add_routes([route.replace(prefix=prefix) for route in route_list])
    entry = table.entry(prefix)
    text = format_show_ip_bgp_detail(entry, view_as=65000)
    parsed = parse_show_ip_bgp_detail(text, view_as=65000)
    assert parsed.prefix == prefix
    assert len(parsed.routes) == len(entry.routes)
    original = {(r.as_path, r.local_pref, r.med, r.communities) for r in entry.routes}
    restored = {(r.as_path, r.local_pref, r.med, r.communities) for r in parsed.routes}
    assert restored == original


@settings(max_examples=60, deadline=None)
@given(
    asn=st.integers(min_value=1, max_value=65000),
    lines=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=65000),
            st.integers(min_value=0, max_value=999),
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda item: item[0],
    ),
)
def test_rpsl_autnum_roundtrip(asn, lines):
    obj = AutNumObject(asn=asn, as_name=f"AS{asn}-NET")
    for peer, pref in lines:
        obj.imports.append(PolicyLine("import", peer_as=peer, pref=pref))
        obj.exports.append(PolicyLine("export", peer_as=peer, filter_text=f"AS{asn}"))
    parsed = AutNumObject.parse(obj.render())
    assert parsed.asn == asn
    assert parsed.neighbors() == {peer for peer, _ in lines}
    for peer, pref in lines:
        assert parsed.import_pref_for(peer) == pref
