"""Property-based tests of the propagation engine over random tiny Internets."""

from hypothesis import given, settings
from strategies import seeds, tiny_internet

from repro.bgp.route import NeighborKind
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.propagation import PropagationEngine


@settings(max_examples=8, deadline=None)
@given(seed=seeds())
def test_baseline_propagation_invariants(seed):
    """Without selective policies: full reachability, valley-free, loop-free."""
    internet = tiny_internet(seed)
    assignment = PolicyGenerator(
        PolicyParameters(
            seed=seed,
            selective_announcement_probability=0.0,
            transit_selective_probability=0.0,
            peer_withhold_probability=0.0,
            atypical_scheme_probability=0.0,
            atypical_neighbor_probability=0.0,
            prefix_based_fraction=0.0,
        )
    ).generate(internet)
    result = PropagationEngine(internet, assignment, observed_ases=internet.tier1).run()
    assert result.truncated_prefixes == []
    graph = internet.graph
    all_prefixes = set(internet.all_prefixes())
    for tier1 in internet.tier1:
        table = result.table_of(tier1)
        assert set(table.prefixes()) == all_prefixes
        for route in table.best_routes():
            if route.is_local:
                continue
            asns = list(route.as_path.deduplicate())
            assert len(asns) == len(set(asns))
            assert graph.is_valley_free([tier1] + asns)
            # Prefixes in the customer cone must arrive over customer routes.
            if route.origin_as in graph.customer_cone(tier1):
                assert route.neighbor_kind is NeighborKind.CUSTOMER


@settings(max_examples=8, deadline=None)
@given(seed=seeds())
def test_policied_propagation_invariants(seed):
    """With generated policies: still valley-free, convergent, SA prefixes trace
    back to configured selective/scoped announcements or selective transits."""
    internet = tiny_internet(seed)
    assignment = PolicyGenerator(PolicyParameters(seed=seed)).generate(internet)
    result = PropagationEngine(internet, assignment, observed_ases=internet.tier1).run()
    assert result.truncated_prefixes == []
    graph = internet.graph
    analyzer = ExportPolicyAnalyzer(graph)
    configured = assignment.all_selectively_announced()
    for tier1 in internet.tier1:
        table = result.table_of(tier1)
        for route in table.best_routes():
            if route.is_local:
                continue
            assert graph.is_valley_free([tier1] + list(route.as_path.deduplicate()))
        report = analyzer.find_sa_prefixes(tier1, table)
        for item in report.sa_prefixes:
            explained = item.prefix in configured or any(
                transit == item.origin_as or graph.is_customer_of(item.origin_as, transit)
                for transit in assignment.selective_transits
            )
            assert explained, f"unexplained SA prefix {item.prefix} at AS{tier1}"


@settings(max_examples=6, deadline=None)
@given(seed=seeds())
def test_propagation_is_deterministic(seed):
    """Two runs with identical inputs produce identical observed tables."""
    internet = tiny_internet(seed)
    assignment = PolicyGenerator(PolicyParameters(seed=seed)).generate(internet)
    first = PropagationEngine(internet, assignment, observed_ases=internet.tier1[:1]).run()
    second = PropagationEngine(internet, assignment, observed_ases=internet.tier1[:1]).run()
    tier1 = internet.tier1[0]
    first_table = first.table_of(tier1)
    second_table = second.table_of(tier1)
    assert len(first_table) == len(second_table)
    for entry in first_table.entries():
        other_best = second_table.best_route(entry.prefix)
        if entry.best is None:
            assert other_best is None
            continue
        assert other_best is not None
        assert other_best.as_path == entry.best.as_path
        assert other_best.local_pref == entry.best.local_pref
