"""Policy-aware BGP route propagation over the synthetic Internet.

This subpackage is the substitute for the paper's measurement substrate
(Oregon RouteViews, Looking Glass servers, AT&T's backbone tables): routes
are originated by the ASes of a :class:`~repro.topology.generator.SyntheticInternet`,
propagated AS by AS under configurable import and export policies, and
observed at collector and Looking Glass vantage points.

* :mod:`repro.simulation.policies` — per-AS policy configuration and the
  seeded policy generator (local-preference schemes, selective announcement,
  community tagging, peer-export behaviour).
* :mod:`repro.simulation.propagation` — the message-passing propagation
  engine implementing the decision process and the Gao–Rexford export rules
  plus the configured policies.
* :mod:`repro.simulation.fastpath` — the compiled fast propagation core
  (interned flat-graph engine, incremental best-route selection, parallel
  per-prefix fan-out); the default engine behind the session layer,
  producing results identical to the legacy engine.
* :mod:`repro.simulation.collector` — RouteViews-style collectors and
  Looking Glass views (including multi-router views of one AS).
* :mod:`repro.simulation.timeline` — repeated simulation under policy churn,
  producing the daily/hourly snapshots of the persistence study.
* :mod:`repro.simulation.scenario` — small hand-built scenarios reproducing
  the paper's illustrative figures (Figs. 1, 3, 5 and 8).
"""

from repro.simulation.policies import (
    ASPolicy,
    CommunityPlan,
    LocalPrefScheme,
    PolicyGenerator,
    PolicyParameters,
)
from repro.simulation.propagation import PrefixRun, PropagationEngine, SimulationResult
from repro.simulation.fastpath import (
    CompiledTopology,
    FastPropagationEngine,
    compile_topology,
)
from repro.simulation.collector import CollectorTable, LookingGlass, RouteViewsCollector
from repro.simulation.timeline import Snapshot, Timeline, TimelineParameters
from repro.simulation.scenario import (
    figure1_scenario,
    figure3_scenario,
    figure5_scenario,
    figure8_multihomed_scenario,
    figure8_singlehomed_scenario,
)

__all__ = [
    "ASPolicy",
    "CollectorTable",
    "CommunityPlan",
    "CompiledTopology",
    "FastPropagationEngine",
    "LocalPrefScheme",
    "LookingGlass",
    "PolicyGenerator",
    "PolicyParameters",
    "PrefixRun",
    "PropagationEngine",
    "RouteViewsCollector",
    "SimulationResult",
    "compile_topology",
    "Snapshot",
    "Timeline",
    "TimelineParameters",
    "figure1_scenario",
    "figure3_scenario",
    "figure5_scenario",
    "figure8_multihomed_scenario",
    "figure8_singlehomed_scenario",
]
