"""Policy atoms (extension experiment, Section 5.1.5 discussion of ref. [21])."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class PolicyAtomExperiment(Experiment):
    """Decompose the collector table into policy atoms and relate them to SA prefixes."""

    experiment_id = "atoms"
    title = "Policy atoms of the collector table and their relation to SA prefixes"
    paper_reference = "Section 5.1.5 discussion of Afek et al. [21] (extension)"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        engine = dataset.analysis
        atoms = engine.atoms()
        sa_prefixes = set()
        for report in engine.sa_reports().values():
            sa_prefixes |= report.sa_prefix_set()
        stats = engine.atom_statistics(atoms, sa_prefixes=sa_prefixes)
        result.headers = ["metric", "value"]
        result.rows = [
            ["prefixes covered", stats.prefix_count],
            ["policy atoms", stats.atom_count],
            ["average atom size", f"{stats.average_atom_size:.2f}"],
            ["largest atom size", stats.largest_atom_size],
            ["single-prefix atoms", stats.single_prefix_atoms],
            ["single-origin atoms", stats.single_origin_atoms],
            [
                "single-origin atom fraction",
                format_percent(100.0 * stats.single_origin_atoms / max(1, stats.atom_count), 1),
            ],
            ["atoms containing an SA prefix", stats.atoms_with_sa_prefixes],
        ]
        result.notes.append(
            "Afek et al. find most policy atoms are created by origin ASes' routing "
            "policies; consistent with that, the vast majority of atoms here contain "
            "prefixes of a single origin AS, and selectively announced prefixes sit in "
            "their own atoms (their path vectors differ from their siblings')."
        )
        return result
