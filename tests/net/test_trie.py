"""Unit tests for repro.net.trie."""

import pytest

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


def build_trie(entries):
    trie = PrefixTrie()
    for text, value in entries:
        trie.insert(Prefix.parse(text), value)
    return trie


class TestBasicMapping:
    def test_insert_and_get(self):
        trie = build_trie([("10.0.0.0/8", "a")])
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "a"

    def test_get_missing_returns_default(self):
        trie = PrefixTrie()
        assert trie.get(Prefix.parse("10.0.0.0/8"), default="none") == "none"

    def test_setitem_getitem(self):
        trie = PrefixTrie()
        trie[Prefix.parse("12.0.0.0/19")] = 42
        assert trie[Prefix.parse("12.0.0.0/19")] == 42

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            PrefixTrie()[Prefix.parse("10.0.0.0/8")]

    def test_contains(self):
        trie = build_trie([("10.0.0.0/8", 1)])
        assert Prefix.parse("10.0.0.0/8") in trie
        assert Prefix.parse("10.0.0.0/9") not in trie
        assert "10.0.0.0/8" not in trie

    def test_len_counts_unique_prefixes(self):
        trie = build_trie([("10.0.0.0/8", 1), ("10.0.0.0/8", 2), ("11.0.0.0/8", 3)])
        assert len(trie) == 2

    def test_overwrite_keeps_latest_value(self):
        trie = build_trie([("10.0.0.0/8", 1), ("10.0.0.0/8", 2)])
        assert trie[Prefix.parse("10.0.0.0/8")] == 2

    def test_remove(self):
        trie = build_trie([("10.0.0.0/8", 1), ("10.1.0.0/16", 2)])
        trie.remove(Prefix.parse("10.0.0.0/8"))
        assert len(trie) == 1
        assert Prefix.parse("10.0.0.0/8") not in trie
        assert Prefix.parse("10.1.0.0/16") in trie

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            PrefixTrie().remove(Prefix.parse("10.0.0.0/8"))

    def test_delitem(self):
        trie = build_trie([("10.0.0.0/8", 1)])
        del trie[Prefix.parse("10.0.0.0/8")]
        assert len(trie) == 0

    def test_clear(self):
        trie = build_trie([("10.0.0.0/8", 1), ("11.0.0.0/8", 2)])
        trie.clear()
        assert len(trie) == 0
        assert list(trie.items()) == []

    def test_default_route_entry(self):
        trie = build_trie([("0.0.0.0/0", "default")])
        assert trie.get(Prefix.parse("0.0.0.0/0")) == "default"
        assert trie.longest_match(Prefix.parse("200.7.8.0/24"))[1] == "default"


class TestLongestMatch:
    def test_picks_most_specific(self):
        trie = build_trie([("10.0.0.0/8", "short"), ("10.1.0.0/16", "long")])
        match = trie.longest_match(Prefix.parse("10.1.2.0/24"))
        assert match == (Prefix.parse("10.1.0.0/16"), "long")

    def test_no_match_returns_none(self):
        trie = build_trie([("10.0.0.0/8", "a")])
        assert trie.longest_match(Prefix.parse("11.0.0.0/24")) is None

    def test_lookup_address(self):
        trie = build_trie([("12.10.0.0/19", "block"), ("12.10.1.0/24", "specific")])
        prefix, value = trie.lookup_address("12.10.1.77")
        assert value == "specific"
        prefix, value = trie.lookup_address("12.10.9.1")
        assert value == "block"

    def test_exact_prefix_matches_itself(self):
        trie = build_trie([("10.1.0.0/16", "x")])
        assert trie.longest_match(Prefix.parse("10.1.0.0/16"))[1] == "x"


class TestCoverageQueries:
    def test_covering(self):
        trie = build_trie(
            [("10.0.0.0/8", 8), ("10.1.0.0/16", 16), ("10.1.1.0/24", 24), ("11.0.0.0/8", 0)]
        )
        covering = list(trie.covering(Prefix.parse("10.1.1.0/25")))
        assert [p.length for p, _ in covering] == [8, 16, 24]

    def test_covered(self):
        trie = build_trie(
            [("10.0.0.0/8", 8), ("10.1.0.0/16", 16), ("10.1.1.0/24", 24), ("11.0.0.0/8", 0)]
        )
        covered = {p for p, _ in trie.covered(Prefix.parse("10.1.0.0/16"))}
        assert covered == {Prefix.parse("10.1.0.0/16"), Prefix.parse("10.1.1.0/24")}

    def test_has_more_specific(self):
        trie = build_trie([("10.1.0.0/16", 1), ("10.1.1.0/24", 2)])
        assert trie.has_more_specific(Prefix.parse("10.1.0.0/16"))
        assert not trie.has_more_specific(Prefix.parse("10.1.1.0/24"))

    def test_has_less_specific(self):
        trie = build_trie([("10.0.0.0/8", 1), ("10.1.1.0/24", 2)])
        assert trie.has_less_specific(Prefix.parse("10.1.1.0/24"))
        assert not trie.has_less_specific(Prefix.parse("10.0.0.0/8"))


class TestIteration:
    def test_items_yields_everything(self):
        entries = [("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("192.168.0.0/16", 3)]
        trie = build_trie(entries)
        assert {str(p): v for p, v in trie.items()} == {t: v for t, v in entries}

    def test_iter_yields_prefixes(self):
        trie = build_trie([("10.0.0.0/8", 1), ("11.0.0.0/8", 2)])
        assert set(trie) == {Prefix.parse("10.0.0.0/8"), Prefix.parse("11.0.0.0/8")}

    def test_repr(self):
        assert "size=1" in repr(build_trie([("10.0.0.0/8", 1)]))
