"""The ``python -m repro lint`` subcommand, end to end."""

import json
import pathlib

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _project(tmp_path, source: str) -> pathlib.Path:
    """A throwaway project tree with one storage-scoped module."""
    module = tmp_path / "src" / "repro" / "storage" / "thing.py"
    module.parent.mkdir(parents=True)
    module.write_text(source)
    (tmp_path / "scripts").mkdir()
    return tmp_path


class TestRepoIsClean:
    def test_lint_with_baseline_is_clean_on_this_repo(self, capsys):
        exit_code = main(["lint", "--root", str(REPO_ROOT), "--baseline"])
        output = capsys.readouterr().out
        assert exit_code == 0, output
        assert "clean" in output

    def test_json_report_shape(self, capsys):
        exit_code = main(
            ["lint", "--root", str(REPO_ROOT), "--baseline", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0, payload
        assert payload["ok"] is True
        assert payload["files"] > 50
        assert payload["findings"] == []
        assert payload["baseline_errors"] == []
        assert "DET001" in payload["rules"]


class TestExitCodes:
    def test_findings_exit_one(self, tmp_path, capsys):
        root = _project(tmp_path, "import time\nstamp = time.time()\n")
        exit_code = main(["lint", "--root", str(root)])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "DET002" in output

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _project(tmp_path, "VALUE = 1\n")
        assert main(["lint", "--root", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", "--root", str(tmp_path), "nowhere/"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        root = _project(tmp_path, "VALUE = 1\n")
        (root / "lint-baseline.json").write_text("{broken")
        assert main(["lint", "--root", str(root), "--baseline"]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_enforce_baseline(self, tmp_path, capsys):
        root = _project(tmp_path, "import time\nstamp = time.time()\n")
        assert main(["lint", "--root", str(root), "--write-baseline"]) == 0
        capsys.readouterr()
        baseline_path = root / "lint-baseline.json"
        payload = json.loads(baseline_path.read_text())
        assert payload["entries"][0]["rule"] == "DET002"
        # An empty rationale is rejected by the ratchet...
        assert main(["lint", "--root", str(root), "--baseline"]) == 1
        assert "no rationale" in capsys.readouterr().out
        # ...and accepted once the author explains the exception.
        payload["entries"][0]["rationale"] = "timing is displayed, never stored"
        baseline_path.write_text(json.dumps(payload))
        assert main(["lint", "--root", str(root), "--baseline"]) == 0

    def test_fixed_finding_makes_entry_stale(self, tmp_path, capsys):
        root = _project(tmp_path, "import time\nstamp = time.time()\n")
        main(["lint", "--root", str(root), "--write-baseline"])
        payload = json.loads((root / "lint-baseline.json").read_text())
        payload["entries"][0]["rationale"] = "acknowledged"
        (root / "lint-baseline.json").write_text(json.dumps(payload))
        # Fix the finding: the baseline entry must now be flagged as stale.
        (root / "src" / "repro" / "storage" / "thing.py").write_text("VALUE = 1\n")
        capsys.readouterr()
        assert main(["lint", "--root", str(root), "--baseline"]) == 1
        assert "stale entry" in capsys.readouterr().out


class TestListing:
    def test_list_rules_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "DET003",
            "CODEC001", "CODEC002",
            "POOL001", "POOL002",
            "LINT001", "LINT002",
        ):
            assert rule_id in output
