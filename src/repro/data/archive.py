"""Export a study dataset to disk and load it back.

A downstream user of the real 2002 study would receive a directory of
artifacts: MRT RIB dumps from the collector's peers, ``show ip bgp`` text
from the Looking Glass servers, and an IRR database file.  The archive module
produces exactly that layout from a :class:`~repro.data.dataset.StudyDataset`
and reads it back into an :class:`ArchivedDataset` that the analyzers in
:mod:`repro.core` can consume directly — so the whole analysis pipeline can
be exercised across a genuine on-disk serialisation boundary.

Layout written by :func:`export_dataset`::

    <root>/
      MANIFEST.txt                  # human-readable inventory
      rib/AS<asn>.mrt               # one MRT-style dump per observed AS
      looking_glass/AS<asn>.txt     # show-ip-bgp table text per Looking Glass AS
      irr/irr.db                    # RPSL aut-num objects
      relationships/edges.csv       # the annotated AS graph (provider,customer / peer,peer)
      prefixes/originated.csv       # ground-truth prefix ownership
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.bgp.rib import LocRib
from repro.data.dataset import StudyDataset
from repro.data.mrt import MrtReader, MrtWriter
from repro.data.rpsl import IrrDatabase
from repro.data.show_ip_bgp import format_show_ip_bgp_table, parse_show_ip_bgp_table
from repro.exceptions import DataFormatError
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.topology.graph import AnnotatedASGraph, Relationship

MANIFEST_NAME = "MANIFEST.txt"


@dataclass
class ArchivedDataset:
    """A dataset read back from an on-disk archive.

    Attributes:
        root: the archive directory.
        tables: routing tables keyed by observed AS (from the MRT dumps).
        looking_glass_tables: tables keyed by Looking Glass AS (from the
            ``show ip bgp`` text files).
        irr: the IRR database.
        graph: the annotated AS graph from ``relationships/edges.csv``.
        originated: ground-truth prefix ownership.
    """

    root: pathlib.Path
    tables: dict[ASN, LocRib] = field(default_factory=dict)
    looking_glass_tables: dict[ASN, LocRib] = field(default_factory=dict)
    irr: IrrDatabase = field(default_factory=IrrDatabase)
    graph: AnnotatedASGraph = field(default_factory=AnnotatedASGraph)
    originated: dict[ASN, list[Prefix]] = field(default_factory=dict)

    @property
    def observed_ases(self) -> list[ASN]:
        """The ASes with an MRT table in the archive."""
        return sorted(self.tables)

    @property
    def looking_glass_ases(self) -> list[ASN]:
        """The ASes with a Looking Glass text table in the archive."""
        return sorted(self.looking_glass_tables)


def export_dataset(dataset: StudyDataset, root: str | pathlib.Path) -> pathlib.Path:
    """Write a study dataset to ``root`` and return the path.

    The directory is created if needed; existing files are overwritten.
    """
    root_path = pathlib.Path(root)
    (root_path / "rib").mkdir(parents=True, exist_ok=True)
    (root_path / "looking_glass").mkdir(parents=True, exist_ok=True)
    (root_path / "irr").mkdir(parents=True, exist_ok=True)
    (root_path / "relationships").mkdir(parents=True, exist_ok=True)
    (root_path / "prefixes").mkdir(parents=True, exist_ok=True)

    # MRT-style dumps for every observed AS.
    for asn in dataset.result.observed_ases:
        table = dataset.result.table_of(asn)
        with open(root_path / "rib" / f"AS{asn}.mrt", "wb") as stream:
            MrtWriter(stream).write_table(table)

    # show-ip-bgp text for the Looking Glass ASes.
    for asn in dataset.looking_glass_ases:
        glass = dataset.looking_glass_of(asn)
        text = format_show_ip_bgp_table(glass.table)
        (root_path / "looking_glass" / f"AS{asn}.txt").write_text(text)

    # IRR database.
    (root_path / "irr" / "irr.db").write_text(dataset.irr.render())

    # Ground-truth relationships.
    edge_lines = ["kind,left,right"]
    for edge in dataset.ground_truth_graph.edges():
        if edge.relationship is Relationship.CUSTOMER:
            edge_lines.append(f"p2c,{edge.provider},{edge.customer}")
        elif edge.relationship is Relationship.PEER:
            edge_lines.append(f"p2p,{edge.provider},{edge.customer}")
        else:
            edge_lines.append(f"s2s,{edge.provider},{edge.customer}")
    (root_path / "relationships" / "edges.csv").write_text("\n".join(edge_lines) + "\n")

    # Ground-truth prefix ownership.
    prefix_lines = ["origin_as,prefix"]
    for asn in sorted(dataset.internet.originated):
        for prefix in dataset.internet.prefixes_of(asn):
            prefix_lines.append(f"{asn},{prefix}")
    (root_path / "prefixes" / "originated.csv").write_text("\n".join(prefix_lines) + "\n")

    manifest = [
        "repro study-dataset archive",
        f"observed ASes: {len(dataset.result.observed_ases)}",
        f"looking glass ASes: {len(dataset.looking_glass_ases)}",
        f"collector peers: {len(dataset.vantage_ases)}",
        f"IRR objects: {len(dataset.irr)}",
        f"ASes: {len(dataset.ground_truth_graph)}",
        f"originated prefixes: {len(dataset.internet.all_prefixes())}",
    ]
    (root_path / MANIFEST_NAME).write_text("\n".join(manifest) + "\n")
    return root_path


def load_dataset(root: str | pathlib.Path) -> ArchivedDataset:
    """Read an archive produced by :func:`export_dataset`.

    Raises:
        DataFormatError: if the directory is not a dataset archive or one of
            its files is malformed.
    """
    root_path = pathlib.Path(root)
    if not (root_path / MANIFEST_NAME).exists():
        raise DataFormatError(f"{root_path} is not a dataset archive (no {MANIFEST_NAME})")
    archive = ArchivedDataset(root=root_path)

    rib_dir = root_path / "rib"
    if rib_dir.is_dir():
        for path in sorted(rib_dir.glob("AS*.mrt")):
            with open(path, "rb") as stream:
                tables = MrtReader(stream).read_tables()
            for asn, table in tables.items():
                archive.tables[asn] = table

    glass_dir = root_path / "looking_glass"
    if glass_dir.is_dir():
        for path in sorted(glass_dir.glob("AS*.txt")):
            asn = _asn_from_name(path.stem)
            archive.looking_glass_tables[asn] = parse_show_ip_bgp_table(
                path.read_text(), view_as=asn
            )

    irr_path = root_path / "irr" / "irr.db"
    if irr_path.exists():
        archive.irr = IrrDatabase.parse(irr_path.read_text())

    edges_path = root_path / "relationships" / "edges.csv"
    if edges_path.exists():
        archive.graph = _parse_edges(edges_path.read_text())

    prefixes_path = root_path / "prefixes" / "originated.csv"
    if prefixes_path.exists():
        archive.originated = _parse_originated(prefixes_path.read_text())

    return archive


def _asn_from_name(stem: str) -> ASN:
    if not stem.startswith("AS") or not stem[2:].isdigit():
        raise DataFormatError(f"unexpected archive file name: {stem!r}")
    return int(stem[2:])


def _parse_edges(text: str) -> AnnotatedASGraph:
    graph = AnnotatedASGraph()
    for index, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line or (index == 0 and line.startswith("kind,")):
            continue
        parts = line.split(",")
        if len(parts) != 3:
            raise DataFormatError(f"malformed relationship line: {line!r}")
        kind, left_text, right_text = parts
        try:
            left, right = int(left_text), int(right_text)
        except ValueError as exc:
            raise DataFormatError(f"malformed AS number in: {line!r}") from exc
        if kind == "p2c":
            graph.add_provider_customer(left, right)
        elif kind == "p2p":
            graph.add_peer_peer(left, right)
        elif kind == "s2s":
            graph.add_sibling(left, right)
        else:
            raise DataFormatError(f"unknown relationship kind: {kind!r}")
    return graph


def _parse_originated(text: str) -> dict[ASN, list[Prefix]]:
    originated: dict[ASN, list[Prefix]] = {}
    for index, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line or (index == 0 and line.startswith("origin_as,")):
            continue
        asn_text, _, prefix_text = line.partition(",")
        if not asn_text.isdigit() or not prefix_text:
            raise DataFormatError(f"malformed originated-prefix line: {line!r}")
        originated.setdefault(int(asn_text), []).append(Prefix.parse(prefix_text))
    return originated
