"""Export policies toward peers (paper Section 5.2, Table 10).

For a given AS, the question is: do its peers announce their *own* prefixes
directly over the peer link?  From the AS's routing table, a peer announces
its prefixes directly when the routes for the prefixes it originates arrive
with the peer itself as the next-hop AS.  The paper finds that the vast
majority of peers do (86%–100% for the three Tier-1s studied), with the few
exceptions attributed to load balancing across multiple peering points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.rib import LocRib
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.topology.graph import AnnotatedASGraph, Relationship


@dataclass
class PeerBehaviour:
    """How one peer announces its own prefixes to the studied AS.

    Attributes:
        peer: the peer AS.
        originated_prefixes: prefixes the peer originates (observed or known).
        directly_received: how many of them arrive with the peer as next hop.
    """

    peer: ASN
    originated_prefixes: int = 0
    directly_received: int = 0

    @property
    def fraction_direct(self) -> float:
        """Fraction of the peer's prefixes received directly over the peer link."""
        if self.originated_prefixes == 0:
            return 0.0
        return self.directly_received / self.originated_prefixes


@dataclass
class PeerExportReport:
    """Table 10 style row for one studied AS.

    Attributes:
        asn: the AS whose peers are analysed.
        peers: per-peer behaviour (only peers originating at least one
            observed prefix are listed).
        full_export_threshold: the fraction of a peer's prefixes that must
            arrive directly for the peer to count as "announcing its
            prefixes".
    """

    asn: ASN
    peers: list[PeerBehaviour] = field(default_factory=list)
    full_export_threshold: float = 1.0

    @property
    def peer_count(self) -> int:
        """Number of peers with at least one observed prefix."""
        return len(self.peers)

    @property
    def announcing_peer_count(self) -> int:
        """Peers announcing (at least the threshold fraction of) their prefixes directly."""
        return sum(
            1 for peer in self.peers if peer.fraction_direct >= self.full_export_threshold
        )

    @property
    def percent_announcing(self) -> float:
        """Percentage of peers announcing their prefixes directly."""
        if not self.peers:
            return 0.0
        return 100.0 * self.announcing_peer_count / self.peer_count

    def partial_announcers(self) -> list[PeerBehaviour]:
        """Peers that announce some but not all of their prefixes directly."""
        return [
            peer
            for peer in self.peers
            if 0 < peer.fraction_direct < self.full_export_threshold
        ]


class PeerExportAnalyzer:
    """Measures how peers export their own prefixes to a studied AS."""

    def __init__(self, relationships: AnnotatedASGraph) -> None:
        self.relationships = relationships

    def analyze(
        self,
        asn: ASN,
        table: LocRib,
        originated: dict[ASN, list[Prefix]] | None = None,
        full_export_threshold: float = 1.0,
    ) -> PeerExportReport:
        """Compute the Table 10 row for one AS.

        Args:
            asn: the studied AS.
            table: its routing table.
            originated: ground-truth prefix ownership; when omitted, a peer's
                originated prefixes are taken to be those whose observed
                origin AS is the peer.
            full_export_threshold: fraction of prefixes that must be received
                directly for a peer to count as announcing.
        """
        report = PeerExportReport(asn=asn, full_export_threshold=full_export_threshold)
        peers = [
            neighbor
            for neighbor in self.relationships.neighbors(asn)
            if self.relationships.relationship(asn, neighbor) is Relationship.PEER
        ]
        for peer in sorted(peers):
            if originated is not None:
                peer_prefixes = list(originated.get(peer, []))
            else:
                peer_prefixes = table.prefixes_originated_by(peer)
            if not peer_prefixes:
                continue
            behaviour = PeerBehaviour(peer=peer, originated_prefixes=len(peer_prefixes))
            for prefix in peer_prefixes:
                routes = table.all_routes(prefix)
                if any(
                    not route.is_local and route.next_hop_as == peer for route in routes
                ):
                    behaviour.directly_received += 1
            report.peers.append(behaviour)
        return report

    def analyze_many(
        self,
        tables: dict[ASN, LocRib],
        originated: dict[ASN, list[Prefix]] | None = None,
        full_export_threshold: float = 1.0,
    ) -> dict[ASN, PeerExportReport]:
        """Compute Table 10 for several studied ASes."""
        return {
            asn: self.analyze(asn, table, originated, full_export_threshold)
            for asn, table in tables.items()
        }
