"""CLI tests, including the golden JSON-schema check for `repro run --json`."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.__main__ import main as legacy_main
from repro.experiments.registry import experiment_ids


def run_cli(capsys, *argv: str) -> str:
    assert cli_main(list(argv)) == 0
    return capsys.readouterr().out


class TestGoldenJson:
    """`python -m repro run table5 --scenario small --json` is schema-stable."""

    @pytest.fixture
    def payload(self, capsys):
        # Cheap to rerun: the small scenario's stages sit in the global cache.
        out = run_cli(capsys, "run", "table5", "--scenario", "small", "--json")
        return json.loads(out)

    def test_top_level_schema(self, payload):
        assert list(payload) == ["scenario", "experiments", "workers", "total_seconds"]
        assert payload["scenario"] == "small"
        assert payload["workers"] == 1

    def test_experiment_schema(self, payload):
        (entry,) = payload["experiments"]
        for key in ("experiment_id", "headers", "rows", "notes", "timing"):
            assert key in entry, key
        assert entry["experiment_id"] == "table5"
        assert entry["headers"][0] == "provider"
        assert entry["rows"], "table5 produced no rows"
        assert all(isinstance(note, str) for note in entry["notes"])
        assert isinstance(entry["timing"], float)


class TestCommands:
    def test_list_covers_every_registered_experiment(self, capsys):
        out = run_cli(capsys, "list")
        for identifier in experiment_ids():
            assert identifier in out

    def test_scenarios_lists_presets(self, capsys):
        out = run_cli(capsys, "scenarios")
        for name in ("standard", "small", "dense-peering", "sparse-multihoming", "large"):
            assert name in out

    def test_scenarios_lists_families(self, capsys):
        out = run_cli(capsys, "scenarios")
        assert "scenario families" in out
        for name in (
            "peering-density",
            "multihoming",
            "hierarchy-depth",
            "community-adoption",
            "collector-size",
        ):
            assert name in out

    def test_scenarios_json_schema(self, capsys):
        payload = json.loads(run_cli(capsys, "scenarios", "--json"))
        assert list(payload) == ["scenarios", "families"]
        preset_names = {entry["name"] for entry in payload["scenarios"]}
        assert "standard" in preset_names
        family_names = {entry["name"] for entry in payload["families"]}
        assert "peering-density" in family_names
        assert all(
            entry["description"] and entry["parameter"] for entry in payload["families"]
        )

    def test_run_accepts_family_sample_scenarios(self, capsys):
        out = run_cli(capsys, "run", "table1", "--scenario", "multihoming@3", "--json")
        assert json.loads(out)["scenario"] == "multihoming@3"

    def test_malformed_family_sample_fails_cleanly(self, capsys):
        assert cli_main(["run", "table1", "--scenario", "multihoming@x"]) == 2
        assert "integer seed" in capsys.readouterr().err

    def test_run_renders_ascii_tables(self, capsys):
        out = run_cli(capsys, "run", "table1", "--scenario", "small")
        assert "table1" in out
        assert "+-" in out

    def test_run_with_seed_changes_the_data(self, capsys):
        baseline = run_cli(capsys, "run", "table5", "--scenario", "small", "--json")
        reseeded = run_cli(
            capsys, "run", "table5", "--scenario", "small", "--seed", "97", "--json"
        )
        assert json.loads(baseline)["experiments"][0]["rows"] != (
            json.loads(reseeded)["experiments"][0]["rows"]
        )

    def test_run_writes_output_dir(self, capsys, tmp_path):
        run_cli(
            capsys, "run", "table1", "--scenario", "small", "--json",
            "--output-dir", str(tmp_path),
        )
        assert (tmp_path / "table1.txt").exists()
        suite = json.loads((tmp_path / "suite.json").read_text())
        assert suite["experiments"][0]["experiment_id"] == "table1"

    def test_index_prints_size_counters(self, capsys):
        out = run_cli(capsys, "index", "--scenario", "small")
        for counter in ("collector_rows", "interned_prefixes", "observed_tables"):
            assert counter in out

    def test_index_json_schema(self, capsys):
        out = run_cli(capsys, "index", "--scenario", "small", "--json")
        payload = json.loads(out)
        assert payload["collector_rows"] > 0
        assert payload["interned_paths"] > 0
        assert "build_seconds" in payload

    def test_index_unknown_scenario_fails_cleanly(self, capsys):
        assert cli_main(["index", "--scenario", "nope"]) == 2

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert cli_main(["run", "table1", "--scenario", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown scenario")
        assert "standard" in err  # the message names the known presets

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert cli_main(["run", "table99", "--scenario", "small"]) == 2
        assert capsys.readouterr().err.startswith("error: unknown experiment")

    def test_run_parallel_workers(self, capsys):
        out = run_cli(
            capsys, "run", "table1", "table5", "--scenario", "small",
            "--workers", "2", "--json",
        )
        assert json.loads(out)["workers"] == 2

    def test_run_engine_flag_selects_legacy(self, capsys):
        baseline = run_cli(capsys, "run", "table5", "--scenario", "small", "--json")
        legacy = run_cli(
            capsys, "run", "table5", "--scenario", "small", "--engine", "legacy",
            "--json",
        )
        # Both engines reproduce the identical table.
        assert json.loads(legacy)["experiments"][0]["rows"] == (
            json.loads(baseline)["experiments"][0]["rows"]
        )

    def test_run_propagation_workers_flag(self, capsys):
        out = run_cli(
            capsys, "run", "table1", "--scenario", "small",
            "--propagation-workers", "2",
        )
        assert "table1" in out

    def test_invalid_propagation_workers_fails_cleanly(self, capsys):
        assert cli_main(
            ["run", "table1", "--scenario", "small", "--propagation-workers", "0"]
        ) == 2
        assert "workers" in capsys.readouterr().err


class TestCacheCommands:
    def test_run_with_cache_dir_persists_artifacts(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        run_cli(
            capsys, "run", "table1", "--scenario", "multihoming@5",
            "--cache-dir", str(cache_dir),
        )
        assert (cache_dir / "topology").is_dir()
        assert (cache_dir / "propagation").is_dir()

    def test_cache_stats_text_and_json(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        run_cli(
            capsys, "run", "table1", "--scenario", "multihoming@5",
            "--cache-dir", str(cache_dir),
        )
        out = run_cli(capsys, "cache", "stats", "--cache-dir", str(cache_dir))
        assert "topology" in out and "artifact(s)" in out
        payload = json.loads(
            run_cli(capsys, "cache", "stats", "--cache-dir", str(cache_dir), "--json")
        )
        assert payload["disk"]["topology"]["artifacts"] >= 1
        assert payload["disk"]["propagation"]["bytes"] > 0

    def test_cache_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        run_cli(
            capsys, "run", "table1", "--scenario", "multihoming@5",
            "--cache-dir", str(cache_dir),
        )
        out = run_cli(capsys, "cache", "clear", "--cache-dir", str(cache_dir))
        assert "cleared" in out
        payload = json.loads(
            run_cli(capsys, "cache", "stats", "--cache-dir", str(cache_dir), "--json")
        )
        assert all(entry["artifacts"] == 0 for entry in payload["disk"].values())

    def test_second_run_hits_the_disk_tier(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_cli(
            capsys, "run", "table5", "--scenario", "multihoming@5", "--json",
            "--cache-dir", str(cache_dir),
        )
        second = run_cli(
            capsys, "run", "table5", "--scenario", "multihoming@5", "--json",
            "--cache-dir", str(cache_dir),
        )
        assert json.loads(first)["experiments"][0]["rows"] == (
            json.loads(second)["experiments"][0]["rows"]
        )


class TestSweepCommand:
    def test_sweep_runs_resumes_and_caches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = (
            "sweep", "collector-size@0", "collector-size@1",
            "-e", "table2", "--cache-dir", cache_dir,
        )
        cold = json.loads(run_cli(capsys, *args, "--json"))
        assert cold["ok"] and cold["counts"]["completed"] == 2

        resumed = json.loads(run_cli(capsys, *args, "--json"))
        assert resumed["counts"]["resumed"] == 2

        warm = json.loads(
            run_cli(
                capsys, *args, "--json", "--sweep-dir", str(tmp_path / "warm")
            )
        )
        assert warm["counts"]["cached"] == 2

    def test_sweep_family_expansion(self, capsys, tmp_path):
        report = json.loads(
            run_cli(
                capsys, "sweep", "--family", "collector-size", "--count", "2",
                "-e", "table2", "--cache-dir", str(tmp_path / "cache"), "--json",
            )
        )
        specs = [case["spec"] for case in report["cases"]]
        assert specs == ["collector-size@0", "collector-size@1"]

    def test_sweep_without_cases_fails_cleanly(self, capsys, tmp_path):
        assert cli_main(["sweep", "--cache-dir", str(tmp_path / "cache")]) == 2
        assert "at least one case" in capsys.readouterr().err

    def test_sweep_interruption_exit_code(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAIL_AFTER", "1")
        code = cli_main(
            [
                "sweep", "collector-size@0", "collector-size@1",
                "-e", "table2", "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 3
        assert "interrupted" in capsys.readouterr().err


class TestSweepRobustnessFlags:
    def test_fault_plan_file_with_retries(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps(
                {
                    "seed": 0,
                    "state_dir": str(tmp_path / "fault-state"),
                    "rules": [{"site": "worker-kill", "rate": 1.0, "times": 1}],
                }
            )
        )
        report = json.loads(
            run_cli(
                capsys, "sweep", "collector-size@0", "-e", "table2",
                "--cache-dir", str(tmp_path / "cache"),
                "--fault-plan", str(plan_path), "--retries", "2", "--json",
            )
        )
        assert report["ok"]
        (case,) = report["cases"]
        assert case["attempts"] == 2  # killed once, completed on the retry

    def test_quarantined_cases_fail_the_exit_code(self, capsys, tmp_path):
        plan = (
            '{"seed": 0, "state_dir": "%s", '
            '"rules": [{"site": "worker-kill", "rate": 1.0, "times": null}]}'
            % (tmp_path / "fault-state")
        )
        code = cli_main(
            [
                "sweep", "collector-size@0", "-e", "table2",
                "--cache-dir", str(tmp_path / "cache"),
                "--fault-plan", plan, "--retries", "1", "--json",
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["quarantined"] == 1

    def test_malformed_fault_plan_fails_cleanly(self, capsys, tmp_path):
        code = cli_main(
            [
                "sweep", "collector-size@0", "-e", "table2",
                "--cache-dir", str(tmp_path / "cache"),
                "--fault-plan", '{"seed": 0}',
            ]
        )
        assert code == 2
        assert "fault plan" in capsys.readouterr().err

    def test_cache_stats_include_health(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli(
            capsys, "sweep", "collector-size@0", "-e", "table2",
            "--cache-dir", cache_dir,
        )
        out = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir)
        assert "health: degraded=no" in out
        payload = json.loads(
            run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir, "--json")
        )
        assert payload["health"]["degraded"] is False
        assert payload["health"]["quarantined_files"] == 0


class TestChaosCommand:
    def test_chaos_smoke(self, capsys, tmp_path):
        # The smallest full harness run: two cases, one experiment.
        out = run_cli(
            capsys, "chaos", "--seed", "0", "--count", "2", "-e", "table2",
            "--dir", str(tmp_path / "scratch"), "--json",
        )
        report = json.loads(out)
        assert report["ok"]
        assert {check["name"] for check in report["checks"]} == {
            "baseline", "chaos-sweep", "kill-point", "resume",
            "degradation", "warm-reread",
        }


class TestLegacyShim:
    def test_list_flag(self, capsys):
        assert legacy_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out

    def test_small_run(self, capsys):
        assert legacy_main(["table1", "--small"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "+-" in out
