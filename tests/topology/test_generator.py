"""Unit tests for the synthetic Internet generator."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.generator import GeneratorParameters, InternetGenerator


@pytest.fixture(scope="module")
def small_internet():
    parameters = GeneratorParameters(
        seed=7,
        tier1_count=4,
        tier2_count=10,
        tier3_count=20,
        stub_count=120,
    )
    return InternetGenerator(parameters).generate()


class TestParameters:
    def test_defaults_are_valid(self):
        GeneratorParameters().validate()

    def test_rejects_tiny_clique(self):
        with pytest.raises(TopologyError):
            GeneratorParameters(tier1_count=1).validate()

    def test_rejects_bad_probability(self):
        with pytest.raises(TopologyError):
            GeneratorParameters(stub_multihoming_probability=1.5).validate()

    def test_rejects_negative_counts(self):
        with pytest.raises(TopologyError):
            GeneratorParameters(stub_count=-1).validate()

    def test_rejects_zero_providers(self):
        with pytest.raises(TopologyError):
            GeneratorParameters(max_stub_providers=0).validate()


class TestTopologyShape:
    def test_all_ases_present(self, small_internet):
        parameters = small_internet.parameters
        expected = (
            parameters.tier1_count
            + parameters.tier2_count
            + parameters.tier3_count
            + parameters.stub_count
        )
        assert len(small_internet.graph) == expected

    def test_tier1_is_clique_and_provider_free(self, small_internet):
        tier1 = small_internet.tier1
        assert len(tier1) == small_internet.parameters.tier1_count
        graph = small_internet.graph
        for asn in tier1:
            assert graph.providers_of(asn) == []
            for other in tier1:
                if other != asn:
                    assert graph.is_peer_of(asn, other)

    def test_every_non_tier1_as_has_a_provider(self, small_internet):
        graph = small_internet.graph
        tier1 = set(small_internet.tier1)
        for asn in graph.ases():
            if asn not in tier1:
                assert graph.providers_of(asn), f"AS{asn} has no provider"

    def test_stubs_have_no_customers(self, small_internet):
        graph = small_internet.graph
        for stub in small_internet.stub_ases():
            assert graph.customers_of(stub) == []

    def test_some_stubs_are_multihomed(self, small_internet):
        graph = small_internet.graph
        stubs = small_internet.stub_ases()
        multihomed = [s for s in stubs if graph.is_multihomed(s)]
        assert 0 < len(multihomed) < len(stubs)

    def test_every_as_reaches_tier1_via_providers(self, small_internet):
        graph = small_internet.graph
        tier1 = set(small_internet.tier1)
        for asn in graph.ases():
            current = {asn}
            seen = set()
            while current and not (current & tier1):
                seen |= current
                current = {
                    provider
                    for member in current
                    for provider in graph.providers_of(member)
                } - seen
            assert current & tier1 or asn in tier1


class TestAddressPlan:
    def test_every_stub_originates_prefixes(self, small_internet):
        for stub in small_internet.stub_ases():
            assert small_internet.prefixes_of(stub)

    def test_prefix_ownership_lookup(self, small_internet):
        stub = small_internet.stub_ases()[0]
        prefix = small_internet.prefixes_of(stub)[0]
        assert small_internet.origin_of(prefix) == stub

    def test_origin_of_unknown_prefix(self, small_internet):
        from repro.net.prefix import Prefix

        assert small_internet.origin_of(Prefix.parse("203.0.113.0/24")) is None

    def test_non_split_prefixes_do_not_overlap_across_ases(self, small_internet):
        split_specifics = {
            specific
            for _, specifics in small_internet.split_pairs
            for specific in specifics
        }
        provider_assigned = {block.prefix for block in small_internet.provider_assigned}
        owners = {}
        for asn, prefixes in small_internet.originated.items():
            for prefix in prefixes:
                if prefix in split_specifics or prefix in provider_assigned:
                    continue
                for other_prefix, other_asn in owners.items():
                    if other_asn != asn:
                        assert not prefix.contains(other_prefix)
                        assert not other_prefix.contains(prefix)
                owners[prefix] = asn

    def test_split_pairs_recorded_and_announced(self, small_internet):
        for original, specifics in small_internet.split_pairs:
            origin = small_internet.origin_of(original)
            assert origin is not None
            originated = small_internet.prefixes_of(origin)
            for specific in specifics:
                assert specific in originated
                assert original.contains(specific)

    def test_provider_assigned_blocks_are_inside_provider_space(self, small_internet):
        allocator = small_internet.allocator
        for block in small_internet.provider_assigned:
            parent_prefixes = allocator.prefixes_of(block.parent_owner)
            assert any(parent.contains(block.prefix) for parent in parent_prefixes)


class TestDeterminism:
    def test_same_seed_same_internet(self):
        params = GeneratorParameters(seed=42, tier1_count=3, tier2_count=5,
                                     tier3_count=8, stub_count=30)
        first = InternetGenerator(params).generate()
        second = InternetGenerator(params).generate()
        assert sorted(first.graph.ases()) == sorted(second.graph.ases())
        assert first.originated == second.originated
        first_edges = {(e.provider, e.customer, e.relationship) for e in first.graph.edges()}
        second_edges = {(e.provider, e.customer, e.relationship) for e in second.graph.edges()}
        assert first_edges == second_edges

    def test_different_seed_different_internet(self):
        base = GeneratorParameters(seed=1, tier1_count=3, tier2_count=5,
                                   tier3_count=8, stub_count=30)
        other = GeneratorParameters(seed=2, tier1_count=3, tier2_count=5,
                                    tier3_count=8, stub_count=30)
        first = InternetGenerator(base).generate()
        second = InternetGenerator(other).generate()
        first_edges = {(e.provider, e.customer, e.relationship) for e in first.graph.edges()}
        second_edges = {(e.provider, e.customer, e.relationship) for e in second.graph.edges()}
        assert first_edges != second_edges

    def test_repr(self, small_internet):
        assert "ases=" in repr(small_internet)
