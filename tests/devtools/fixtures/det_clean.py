"""Fixture: determinism-conscious versions of the det_dirty snippets."""
import os
import random


def fingerprint_members(members):
    seen = set(members)
    return sorted(seen)


def sample(seed):
    rng = random.Random(seed)
    return rng.random()


def scan(root):
    return sorted(os.listdir(root))
