"""ASCII rendering of figure series (bar charts and x/y series)."""

from __future__ import annotations

from typing import Sequence


def series_to_csv(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a figure's data series as CSV text (one row per x value)."""
    lines = [",".join(str(cell) for cell in header)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    value_format: str = "{:.1f}",
) -> str:
    """Render one value per label as a horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    lines = [title] if title else []
    if not values:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(max(values), 1e-12)
    label_width = max((len(str(label)) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        rendered_value = value_format.format(value)
        lines.append(f"{str(label).rjust(label_width)} | {bar} {rendered_value}")
    return "\n".join(lines)


def ascii_series(
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Render several named series over a shared x axis as grouped bars."""
    lines = [title] if title else []
    peak = 1e-12
    for values in series.values():
        if values:
            peak = max(peak, max(values))
    x_width = max((len(str(x)) for x in x_values), default=1)
    name_width = max((len(name) for name in series), default=1)
    for index, x in enumerate(x_values):
        for name, values in series.items():
            value = values[index] if index < len(values) else 0.0
            bar = "#" * max(0, int(round(width * value / peak)))
            lines.append(
                f"{str(x).rjust(x_width)} {name.ljust(name_width)} | {bar} {value:g}"
            )
    return "\n".join(lines)
