"""AS-relationship inference.

The paper's pipeline "relies on AS relationships" inferred from BGP tables
(Section 3) using Gao's algorithm (reference [12]); Section 4.3 and the
Appendix then bound the error this introduces.  This subpackage implements:

* :mod:`repro.relationships.gao` — Gao's degree-based inference from AS
  paths (ToN 2001): transit-degree ranking along each path, provider/customer
  assignment, and the peer heuristic.
* :mod:`repro.relationships.sark` — a simpler rank-based variant in the
  spirit of Subramanian et al. (used as a cross-check baseline).
* :mod:`repro.relationships.validation` — accuracy measurement of inferred
  relationships against ground truth or against community evidence, feeding
  Table 4.
"""

from repro.relationships.gao import GaoInference, InferredRelationships
from repro.relationships.sark import RankBasedInference
from repro.relationships.validation import RelationshipAccuracy, compare_with_ground_truth

__all__ = [
    "GaoInference",
    "InferredRelationships",
    "RankBasedInference",
    "RelationshipAccuracy",
    "compare_with_ground_truth",
]
