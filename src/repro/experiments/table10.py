"""Table 10 — how peers export their own prefixes."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table10Experiment(Experiment):
    """Percentage of peers announcing their own prefixes directly."""

    experiment_id = "table10"
    title = "Peers announcing their prefixes directly to the studied ASes"
    paper_reference = "Table 10, Section 5.2"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        # The engine's default `originated` is the ground-truth ownership.
        reports = dataset.analysis.peer_export_reports()
        result.headers = ["AS", "# peers", "% peers announcing their prefixes", "partial announcers"]
        for asn, report in sorted(reports.items()):
            result.rows.append(
                [
                    f"AS{asn}",
                    report.peer_count,
                    format_percent(report.percent_announcing, 0),
                    len(report.partial_announcers()),
                ]
            )
        result.notes.append(
            "Paper Table 10: 86%, 100% and 89% of the peers of AS1, AS3549 and AS7018 "
            "announce their prefixes directly."
        )
        return result
