"""A field added to a serialized dataclass must trip the CODEC cross-check.

These tests clone real schemas (``Route``, ``ASPolicy``) with one extra
field and re-run the static cross-check over the *unchanged* codec module:
the CODEC002 rule must flag exactly the invented field.  That proves the
lint rule would catch the classic drift — extending a dataclass without
teaching its codec — before any runtime round-trip could lose data.
"""

import ast
import pathlib

import pytest

from repro.devtools.engine import LintContext, ModuleUnderLint
from repro.devtools.rules_codec import crosscheck
from repro.devtools.schema import collect_schemas

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CODECS_PATH = "src/repro/storage/codecs.py"


@pytest.fixture(scope="module")
def codec_module():
    return ModuleUnderLint.parse(
        CODECS_PATH, (REPO_ROOT / CODECS_PATH).read_text()
    )


@pytest.fixture(scope="module")
def context():
    return LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))


def _real_schema(relative: str, module_name: str, class_name: str):
    tree = ast.parse((REPO_ROOT / relative).read_text())
    return collect_schemas(tree, module_name)[class_name]


@pytest.mark.parametrize(
    ("relative", "module_name", "class_name"),
    [
        ("src/repro/bgp/route.py", "repro.bgp.route", "Route"),
        ("src/repro/simulation/policies.py", "repro.simulation.policies", "ASPolicy"),
    ],
)
def test_cloned_dataclass_with_extra_field_is_flagged(
    codec_module, context, relative, module_name, class_name
):
    schema = _real_schema(relative, module_name, class_name)
    drifted = schema.with_extra_field("shadow_metric")
    analysis = crosscheck(
        codec_module, context, schema_overrides={class_name: drifted}
    )
    flagged = [
        finding
        for finding in analysis.findings
        if finding.rule == "CODEC002" and "shadow_metric" in finding.message
    ]
    assert len(flagged) == 1, analysis.findings
    assert f".{class_name}" in flagged[0].message


def test_unmodified_schemas_are_fully_covered(codec_module, context):
    analysis = crosscheck(codec_module, context)
    for finding in analysis.findings:
        assert "Route" not in finding.message
        assert "ASPolicy" not in finding.message
