"""Regression: the DET001 ``sorted(set(...))`` fixes keep bytes identical.

``MeasurementIndex._build_collector`` and ``AnalysisCodec.raise_`` both
group collector rows by AS-path member; the DET001 fix made both iterate
``sorted(set(collapsed))`` so the ``rows_by_member`` insertion order is a
pure function of the data rather than of set bucket layout.  These tests
pin the property the fix protects: the freshly built index and the
disk-decoded index agree exactly, and re-encoding the decoded artifact
reproduces the original bytes.
"""

from repro.session.cache import StageCache
from repro.session.study import Study
from repro.storage.codecs import codec_for
from repro.storage.store import DiskStore


def _loaded_analysis(tiny_study, tmp_path):
    """The analysis engine rebuilt from the disk tier (decode path)."""
    disk = DiskStore(tmp_path)
    cold = Study(tiny_study.config, cache=StageCache(disk=disk))
    cold.analysis()
    warm = Study(tiny_study.config, cache=StageCache(disk=disk))
    loaded = warm.analysis()
    assert warm.cache.stats_for("analysis").disk_hits == 1
    return loaded


def test_member_grouping_identical_between_build_and_decode(tiny_study, tmp_path):
    fresh = tiny_study.analysis()
    loaded = _loaded_analysis(tiny_study, tmp_path)
    assert loaded.index.rows_by_member == fresh.index.rows_by_member
    assert list(loaded.index.rows_by_member) == list(fresh.index.rows_by_member)
    assert loaded.index.rows_by_prefix == fresh.index.rows_by_prefix
    assert loaded.index.adjacency == fresh.index.adjacency


def test_reencoding_decoded_artifact_is_byte_identical(tiny_study, tmp_path):
    fresh = tiny_study.analysis()
    loaded = _loaded_analysis(tiny_study, tmp_path)
    codec = codec_for("analysis")
    assert codec.encode(loaded) == codec.encode(fresh)
