"""Repository maintenance scripts (run with ``python -m scripts.<name>``)."""
