"""Differential and metamorphic oracles the fuzz harness checks per sample.

Two *differential* oracles pin the repo's two engine pairs to each other on
every sampled scenario, extending the fixed golden suites
(``tests/simulation/test_fastpath_equivalence.py`` and
``tests/analysis/test_engine_equivalence.py``) to unbounded scenario
diversity:

* ``propagation-differential`` — the compiled fast engine and the legacy
  message-object engine produce semantically identical observed tables,
  message counts and truncation sets.
* ``analysis-differential`` — the one-pass :class:`~repro.analysis.engine.AnalysisEngine`
  returns objects equal to every corresponding legacy :mod:`repro.core`
  analyzer on the same dataset.

The *metamorphic / ground-truth* oracles assert the paper's invariants
against the generator's ground truth, independent of either implementation:

* ``valley-free`` — every observed candidate route is loop-free and
  valley-free in the ground-truth graph (Gao's export rule).
* ``relationship-inference`` — Gao and SARK inference only annotate true
  adjacencies (no invented edges) and their graded accuracy is in [0, 1].
* ``atom-refinement`` — policy atoms partition the collector's prefixes and
  refine the per-vantage next-hop-AS partition.
* ``sa-partitions`` — customer prefixes split exactly into customer-routed
  and SA; SA causes cover every SA prefix with ``selective`` as the exact
  remainder; Table 8 homing and Table 7 verification outcomes partition
  their sets.
* ``consistency-rates`` — every Fig. 2 consistency rate is a valid
  fraction.
* ``peer-export-monotonicity`` — per-peer direct-receipt counts are
  bounded and the announcing-peer count is monotone in the threshold.

Each oracle raises :class:`OracleViolation`; the harness catches per oracle
so one failing invariant never masks another.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.atoms import PolicyAtomAnalyzer
from repro.core.causes import CauseAnalyzer
from repro.core.community import CommunityAnalyzer
from repro.core.consistency import ConsistencyAnalyzer
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.core.import_policy import ImportPolicyAnalyzer
from repro.core.peer_export import PeerExportAnalyzer
from repro.core.verification import Verifier
from repro.exceptions import ReproError
from repro.relationships.gao import GaoInference
from repro.relationships.sark import RankBasedInference
from repro.relationships.validation import compare_with_ground_truth

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import AnalysisEngine
    from repro.data.dataset import StudyDataset
    from repro.session.stages import StudyConfig
    from repro.simulation.collector import CollectorTable
    from repro.simulation.propagation import SimulationResult
    from repro.topology.graph import AnnotatedASGraph


class OracleViolation(ReproError):
    """One fuzz oracle found a divergence or a broken invariant.

    Attributes:
        oracle: the name of the violated oracle.
    """

    def __init__(self, oracle: str, message: str) -> None:
        """Record which oracle failed and why."""
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle


@dataclass
class FuzzContext:
    """Everything the oracles inspect for one sampled scenario.

    Attributes:
        family: the scenario family the sample came from.
        seed: the sample seed (together with ``family``, the reproduction
            key the harness prints on failure).
        config: the sampled study configuration.
        dataset: the assembled dataset (built over ``fast_result``).
        engine: the one-pass analysis engine over the dataset's index.
        legacy_result: the legacy propagation engine's run.
        fast_result: the compiled fast engine's run.
    """

    family: str
    seed: int
    config: "StudyConfig"
    dataset: "StudyDataset"
    engine: "AnalysisEngine"
    legacy_result: "SimulationResult"
    fast_result: "SimulationResult"

    @property
    def graph(self) -> "AnnotatedASGraph":
        """The ground-truth annotated AS graph of the sample."""
        return self.dataset.ground_truth_graph


def _diverged(oracle: str, what: str) -> OracleViolation:
    """A standard divergence violation for a differential oracle."""
    return OracleViolation(oracle, f"{what} differ between the two implementations")


# -- differential: fast engine vs legacy engine -------------------------------------


def _table_snapshot(result: "SimulationResult") -> dict:
    """Order-insensitive semantic content of every observed table."""
    snapshot = {}
    for asn in result.observed_ases:
        table = result.table_of(asn)
        snapshot[asn] = {
            entry.prefix: (Counter(entry.routes), entry.best)
            for entry in table.entries()
        }
    return snapshot


def check_propagation_equivalence(
    legacy: "SimulationResult", fast: "SimulationResult"
) -> None:
    """Assert the fast engine's run is semantically identical to the legacy run.

    Args:
        legacy: the legacy message-object engine's result.
        fast: the compiled fast engine's result.

    Raises:
        OracleViolation: on any divergence (message counts, truncation,
            observed set, or any table's candidate/best routes).
    """
    oracle = "propagation-differential"
    if fast.message_count != legacy.message_count:
        raise OracleViolation(
            oracle,
            f"message counts differ: legacy {legacy.message_count}, "
            f"fast {fast.message_count}",
        )
    if fast.truncated_prefixes != legacy.truncated_prefixes:
        raise _diverged(oracle, "truncated prefix sets")
    if fast.observed_ases != legacy.observed_ases:
        raise _diverged(oracle, "observed AS sets")
    legacy_tables = _table_snapshot(legacy)
    fast_tables = _table_snapshot(fast)
    for asn in legacy.observed_ases:
        if fast_tables[asn] != legacy_tables[asn]:
            raise _diverged(oracle, f"observed tables at AS{asn}")


# -- differential: analysis engine vs legacy analyzers ------------------------------


def check_analysis_equivalence(dataset: "StudyDataset", engine: "AnalysisEngine") -> None:
    """Assert the indexed engine equals every legacy analyzer on one dataset.

    Runs the full legacy analyzer pass (atoms, Tables 2/3, Fig. 2, SA
    reports, Tables 5-10, causes/Case 3, community semantics, Table 4/7
    verification) and compares the result objects with ``==``.

    Args:
        dataset: the assembled study dataset both sides analyse.
        engine: the dataset's one-pass analysis engine.

    Raises:
        OracleViolation: naming the first diverging query.
    """
    oracle = "analysis-differential"
    graph = dataset.ground_truth_graph
    glasses = [dataset.looking_glass_of(asn) for asn in dataset.looking_glass_ases]
    providers = dataset.providers_under_study(3)
    tables = {provider: dataset.result.table_of(provider) for provider in providers}
    export_analyzer = ExportPolicyAnalyzer(graph)
    reports = export_analyzer.analyze_providers(
        tables, known_customer_prefixes=dataset.internet.originated
    )

    checks: list[tuple[str, Callable[[], object], Callable[[], object]]] = [
        (
            "policy atoms",
            lambda: PolicyAtomAnalyzer().compute_atoms(dataset.collector),
            engine.atoms,
        ),
        (
            "Table 2 import typicality",
            lambda: ImportPolicyAnalyzer(graph).analyze_many(glasses),
            engine.import_typicality,
        ),
        (
            "Table 3 IRR typicality",
            lambda: ImportPolicyAnalyzer(graph).analyze_irr(dataset.irr, min_neighbors=5),
            lambda: engine.irr_typicality(min_neighbors=5),
        ),
        (
            "Fig. 2(a) consistency",
            lambda: ConsistencyAnalyzer().analyze_many(glasses),
            engine.consistency_by_as,
        ),
        (
            "Fig. 2(b) router consistency",
            lambda: ConsistencyAnalyzer().analyze_routers(
                max(glasses, key=lambda glass: len(list(glass.table.prefixes()))),
                router_count=8,
            ),
            lambda: engine.consistency_by_router(router_count=8),
        ),
        ("Fig. 4 SA reports", lambda: reports, engine.sa_reports),
        (
            "Table 6 customer SA reports",
            lambda: export_analyzer.analyze_customers(reports, tables),
            engine.customer_sa_reports,
        ),
        (
            "Table 10 peer export",
            lambda: PeerExportAnalyzer(graph).analyze_many(
                tables, originated=dataset.internet.originated
            ),
            engine.peer_export_reports,
        ),
        (
            "Table 7 SA verification",
            lambda: Verifier(graph).verify_many(reports, dataset.collector),
            engine.verify_sa_prefixes,
        ),
        (
            "Table 4 relationship verification",
            lambda: Verifier(
                GaoInference().infer(dataset.collector.all_paths()).graph,
                CommunityAnalyzer(),
            ).verify_relationships(
                [
                    glass
                    for glass in glasses
                    if dataset.assignment.policies[glass.asn].community_plan is not None
                ]
            ),
            engine.verify_relationships,
        ),
    ]
    for name, legacy_side, engine_side in checks:
        if engine_side() != legacy_side():
            raise _diverged(oracle, f"{name} results")

    cause_analyzer = CauseAnalyzer(graph)
    for provider, report in reports.items():
        if engine.homing_breakdown(provider) != cause_analyzer.homing_breakdown(report):
            raise _diverged(oracle, f"Table 8 homing breakdowns for AS{provider}")
        if engine.cause_breakdown(provider) != cause_analyzer.cause_breakdown(
            report, tables[provider]
        ):
            raise _diverged(oracle, f"Table 9 cause breakdowns for AS{provider}")
        if engine.case3(provider) != cause_analyzer.case3_analysis(
            report, dataset.collector
        ):
            raise _diverged(oracle, f"Case 3 results for AS{provider}")


# -- ground truth: valley-free observed routes --------------------------------------


def valley_violations(
    graph: "AnnotatedASGraph", result: "SimulationResult", limit: int = 5
) -> list[str]:
    """Loop or valley violations among the observed candidate routes.

    Args:
        graph: the ground-truth annotated graph.
        result: a propagation result whose observed tables are scanned
            (candidate routes included, not just best routes).
        limit: stop after this many violations.

    Returns:
        Human-readable violation descriptions (empty when all routes are
        loop-free and valley-free).
    """
    violations: list[str] = []
    for asn in result.observed_ases:
        for entry in result.table_of(asn).entries():
            for route in entry.routes:
                if route.is_local:
                    continue
                asns = list(route.as_path.deduplicate())
                if len(asns) != len(set(asns)):
                    violations.append(
                        f"AS{asn} holds looping path {route.as_path} for {entry.prefix}"
                    )
                elif not graph.is_valley_free([asn, *asns]):
                    violations.append(
                        f"AS{asn} holds valley path {route.as_path} for {entry.prefix}"
                    )
                if len(violations) >= limit:
                    return violations
    return violations


def check_valley_free(graph: "AnnotatedASGraph", result: "SimulationResult") -> None:
    """Assert every observed candidate route is loop-free and valley-free.

    Args:
        graph: the ground-truth annotated graph.
        result: the propagation result to scan.

    Raises:
        OracleViolation: listing the first violating routes.
    """
    violations = valley_violations(graph, result)
    if violations:
        raise OracleViolation("valley-free", "; ".join(violations))


# -- ground truth: relationship inference -------------------------------------------


def check_relationship_inference(
    graph: "AnnotatedASGraph", collector: "CollectorTable"
) -> None:
    """Assert Gao/SARK inference stays inside the true adjacency, with sane accuracy.

    Observed AS paths only traverse real edges, so neither algorithm may
    annotate a pair of ASes that are not adjacent in the ground truth, and
    grading the inferred graph against the truth must yield an accuracy in
    [0, 1] with zero extra edges.

    Args:
        graph: the ground-truth annotated graph.
        collector: the collector table whose paths feed the inference.

    Raises:
        OracleViolation: on invented edges or an out-of-range accuracy.
    """
    oracle = "relationship-inference"
    paths = collector.all_paths()
    for label, inference in (("Gao", GaoInference()), ("SARK", RankBasedInference())):
        inferred = inference.infer(paths).graph
        for edge in inferred.edges():
            if graph.relationship(edge.provider, edge.customer) is None:
                raise OracleViolation(
                    oracle,
                    f"{label} inferred a relationship between non-adjacent "
                    f"AS{edge.provider} and AS{edge.customer}",
                )
        accuracy = compare_with_ground_truth(inferred, graph)
        if accuracy.extra_edges:
            raise OracleViolation(
                oracle, f"{label} graded with {accuracy.extra_edges} invented edges"
            )
        if not 0.0 <= accuracy.accuracy <= 1.0:
            raise OracleViolation(
                oracle, f"{label} accuracy {accuracy.accuracy} outside [0, 1]"
            )


# -- ground truth: atoms refine the next-hop partition ------------------------------


def check_atom_refinement(engine: "AnalysisEngine", collector: "CollectorTable") -> None:
    """Assert atoms partition the collector's prefixes and refine next hops.

    Atoms group prefixes by their full per-vantage path vector; grouping by
    the per-vantage *next hop* is coarser, so every atom must sit inside
    exactly one next-hop class — checked against a next-hop vector computed
    independently from the raw collector rows.

    Args:
        engine: the analysis engine whose atoms are checked.
        collector: the raw collector table the vectors are rebuilt from.

    Raises:
        OracleViolation: when atoms overlap, miss prefixes, or straddle two
            next-hop classes.
    """
    oracle = "atom-refinement"
    next_hop_vector: dict = {}
    for entry in collector.entries:
        first_hop = entry.as_path.next_hop_as if len(entry.as_path) else None
        next_hop_vector.setdefault(entry.prefix, {})[entry.vantage] = first_hop

    covered: set = set()
    for atom in engine.atoms():
        members = set(atom.prefixes)
        if len(members) != len(atom.prefixes):
            raise OracleViolation(oracle, "an atom lists a prefix twice")
        if members & covered:
            raise OracleViolation(oracle, "two atoms share a prefix")
        covered |= members
        if not members <= set(next_hop_vector):
            raise OracleViolation(oracle, "an atom contains an unobserved prefix")
        vectors = {
            tuple(sorted(next_hop_vector[prefix].items())) for prefix in members
        }
        if len(vectors) != 1:
            raise OracleViolation(
                oracle,
                "an atom straddles two next-hop classes (atoms must refine the "
                "next-hop-AS partition)",
            )
    if covered != set(next_hop_vector):
        missing = len(set(next_hop_vector) - covered)
        raise OracleViolation(
            oracle, f"atoms miss {missing} collector prefixes (not a partition)"
        )


# -- ground truth: SA-prefix partitions ---------------------------------------------


def check_sa_partitions(engine: "AnalysisEngine") -> None:
    """Assert the SA-prefix pipeline's category counts form real partitions.

    Per studied provider: customer prefixes split exactly into
    customer-routed and SA (Fig. 4); the Table 9 causes cover every SA
    prefix with ``selective`` as the exact remainder of the (possibly
    overlapping) splitting/aggregating classes; Table 8 homing partitions
    the SA origins; and the Table 7 verification outcomes partition the SA
    set.

    Args:
        engine: the analysis engine to query.

    Raises:
        OracleViolation: naming the provider and the broken partition.
    """
    oracle = "sa-partitions"
    for provider, report in engine.sa_reports().items():
        sa_count = report.sa_prefix_count
        if report.customer_route_prefix_count + sa_count != report.customer_prefix_count:
            raise OracleViolation(
                oracle,
                f"AS{provider}: customer-routed + SA != customer prefixes "
                f"({report.customer_route_prefix_count} + {sa_count} != "
                f"{report.customer_prefix_count})",
            )

        breakdown = engine.cause_breakdown(provider)
        splitting = breakdown.splitting_count
        aggregating = breakdown.aggregating_count
        selective = breakdown.selective_count
        for label, value in (
            ("splitting", splitting),
            ("aggregating", aggregating),
            ("selective", selective),
        ):
            if not 0 <= value <= sa_count:
                raise OracleViolation(
                    oracle, f"AS{provider}: {label} count {value} outside [0, {sa_count}]"
                )
        covered = sa_count - selective
        if covered < 0 or max(splitting, aggregating) > covered:
            raise OracleViolation(
                oracle,
                f"AS{provider}: splitting/aggregating exceed the non-selective "
                f"remainder ({splitting}/{aggregating} vs {covered})",
            )
        if covered > splitting + aggregating:
            raise OracleViolation(
                oracle,
                f"AS{provider}: {covered} SA prefixes claimed covered but the "
                f"causes only explain {splitting + aggregating}",
            )

        homing = engine.homing_breakdown(provider)
        origins = report.origins_with_sa_prefixes()
        if homing.multihomed_origins & homing.singlehomed_origins:
            raise OracleViolation(
                oracle, f"AS{provider}: an origin is both multi- and single-homed"
            )
        if homing.multihomed_origins | homing.singlehomed_origins != origins:
            raise OracleViolation(
                oracle, f"AS{provider}: homing breakdown does not cover the SA origins"
            )

        verification = engine.verify_sa_report(report)
        outcomes = (
            verification.verified_count
            + verification.step1_failures
            + verification.step2_failures
        )
        if outcomes != sa_count:
            raise OracleViolation(
                oracle,
                f"AS{provider}: verification outcomes ({outcomes}) do not "
                f"partition the {sa_count} SA prefixes",
            )


# -- ground truth: consistency rates ------------------------------------------------


def check_consistency_rates(engine: "AnalysisEngine") -> None:
    """Assert every Fig. 2 consistency result is a valid fraction.

    Args:
        engine: the analysis engine to query.

    Raises:
        OracleViolation: when any per-AS or per-router result has
            ``consistent_routes`` outside ``[0, total_routes]``.
    """
    oracle = "consistency-rates"
    results = engine.consistency_by_as() + engine.consistency_by_router(router_count=5)
    for result in results:
        if result.total_routes < 0 or not (
            0 <= result.consistent_routes <= result.total_routes
        ):
            raise OracleViolation(
                oracle,
                f"AS{result.asn} router {result.router_id}: "
                f"{result.consistent_routes}/{result.total_routes} is not a "
                f"valid consistency fraction",
            )


# -- ground truth: peer-export monotonicity -----------------------------------------


def check_peer_export_monotonicity(engine: "AnalysisEngine") -> None:
    """Assert Table 10 counts are bounded and monotone in the threshold.

    Per peer, the directly-received count never exceeds the originated
    count; lowering the full-export threshold can only add announcing
    peers, never remove them.

    Args:
        engine: the analysis engine to query.

    Raises:
        OracleViolation: naming the provider/peer that breaks a bound.
    """
    oracle = "peer-export-monotonicity"
    strict = engine.peer_export_reports(full_export_threshold=1.0)
    loose = engine.peer_export_reports(full_export_threshold=0.5)
    for asn, report in strict.items():
        for behaviour in report.peers:
            if not 0 <= behaviour.directly_received <= behaviour.originated_prefixes:
                raise OracleViolation(
                    oracle,
                    f"AS{asn}: peer AS{behaviour.peer} directly received "
                    f"{behaviour.directly_received} of "
                    f"{behaviour.originated_prefixes} prefixes",
                )
        relaxed = loose[asn]
        if {b.peer for b in report.peers} != {b.peer for b in relaxed.peers}:
            raise OracleViolation(
                oracle, f"AS{asn}: the peer set depends on the export threshold"
            )
        if relaxed.announcing_peer_count < report.announcing_peer_count:
            raise OracleViolation(
                oracle,
                f"AS{asn}: lowering the threshold removed announcing peers "
                f"({report.announcing_peer_count} -> {relaxed.announcing_peer_count})",
            )
        if not 0.0 <= report.percent_announcing <= 100.0:
            raise OracleViolation(
                oracle, f"AS{asn}: percent announcing {report.percent_announcing}"
            )


#: Every oracle the harness runs per case, in execution order.
ORACLES: tuple[tuple[str, Callable[[FuzzContext], None]], ...] = (
    (
        "propagation-differential",
        lambda ctx: check_propagation_equivalence(ctx.legacy_result, ctx.fast_result),
    ),
    (
        "analysis-differential",
        lambda ctx: check_analysis_equivalence(ctx.dataset, ctx.engine),
    ),
    ("valley-free", lambda ctx: check_valley_free(ctx.graph, ctx.fast_result)),
    (
        "relationship-inference",
        lambda ctx: check_relationship_inference(ctx.graph, ctx.dataset.collector),
    ),
    (
        "atom-refinement",
        lambda ctx: check_atom_refinement(ctx.engine, ctx.dataset.collector),
    ),
    ("sa-partitions", lambda ctx: check_sa_partitions(ctx.engine)),
    ("consistency-rates", lambda ctx: check_consistency_rates(ctx.engine)),
    (
        "peer-export-monotonicity",
        lambda ctx: check_peer_export_monotonicity(ctx.engine),
    ),
)
