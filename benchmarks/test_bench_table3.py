"""Benchmark: reproduce Table 3 (typical LOCAL_PREF from the IRR).

Paper shape: the registered ASes' import preferences are overwhelmingly
typical (80%-100%, most at or near 100%).
"""


def test_bench_table3(benchmark, run_experiment):
    result = run_experiment(benchmark, "table3")
    percentages = [float(row[-1].rstrip("%")) for row in result.rows]
    assert len(percentages) >= 10
    assert sum(percentages) / len(percentages) > 90.0
