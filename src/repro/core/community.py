"""Community-semantics inference and relationship verification (Appendix).

Many ASes tag the routes they receive with communities that encode the
relationship with the announcing neighbor (Table 11 shows AS12859's plan).
The paper's Appendix uses those communities to *verify* inferred AS
relationships:

1. **Query** the community tagged on routes from each next-hop AS (here:
   read it from the Looking Glass table).
2. **Infer the semantics** of the community values: when the AS publishes the
   plan (in the IRR or on its website) the mapping is given; otherwise the
   mapping is bootstrapped from the number of prefixes each next-hop AS
   announces (Fig. 9) — a neighbor announcing a near-full table is a
   provider, neighbors announcing one or two prefixes are customers, large
   announcers of a provider-free AS are peers — and every neighbor tagged
   with the "same" community value (same value range) inherits the anchor's
   relationship.
3. **Map** communities to relationships for all neighbors and compare with
   the inferred graph (feeding Table 4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.bgp.attributes import Community
from repro.exceptions import InferenceError
from repro.net.asn import ASN
from repro.simulation.collector import LookingGlass
from repro.simulation.policies import CommunityPlan
from repro.topology.graph import AnnotatedASGraph, Relationship


@dataclass
class NeighborSignature:
    """What the Looking Glass reveals about one next-hop AS.

    Attributes:
        neighbor: the next-hop AS.
        prefix_count: how many prefixes it announces to the tagging AS.
        community: the dominant community (defined by the tagging AS) on the
            routes learned from it, if any.
    """

    neighbor: ASN
    prefix_count: int
    community: Community | None = None


@dataclass
class CommunitySemantics:
    """The inferred meaning of an AS's relationship-tagging communities.

    Attributes:
        asn: the tagging AS.
        value_to_relationship: mapping from a community *bucket* (see
            :func:`bucket_of`) to the inferred relationship.
        signatures: the per-neighbor evidence used.
        anchors: neighbors whose relationship was fixed by the prefix-count
            heuristic (the "special ASes" of the Appendix).
    """

    asn: ASN
    value_to_relationship: dict[int, Relationship] = field(default_factory=dict)
    signatures: dict[ASN, NeighborSignature] = field(default_factory=dict)
    anchors: dict[ASN, Relationship] = field(default_factory=dict)

    def relationship_for_community(self, community: Community) -> Relationship | None:
        """The relationship a community value encodes, if inferred."""
        if community.asn != self.asn:
            return None
        return self.value_to_relationship.get(bucket_of(community))

    def relationship_for_neighbor(self, neighbor: ASN) -> Relationship | None:
        """The relationship of a neighbor according to its tagged community."""
        signature = self.signatures.get(neighbor)
        if signature is None or signature.community is None:
            return None
        return self.relationship_for_community(signature.community)


def bucket_of(community: Community, bucket_size: int = 1000) -> int:
    """Group community values into ranges.

    The Appendix observes that one relationship may be indicated by several
    community values drawn from the same range ("12859:1010" and
    "12859:1020" are the *same* for this purpose); bucketing by
    ``value // bucket_size`` reproduces that equivalence.
    """
    return community.value // bucket_size


@dataclass
class CommunityVerificationResult:
    """Table 4 style row: community-verified relationships of one AS.

    Attributes:
        asn: the tagging AS.
        neighbor_count: neighbors visible in its table.
        verifiable_neighbors: neighbors whose routes carry a tagged community
            with inferred semantics.
        verified_neighbors: verifiable neighbors whose community-derived
            relationship matches the supplied relationship graph.
        mismatches: neighbors where the two disagree.
    """

    asn: ASN
    neighbor_count: int = 0
    verifiable_neighbors: int = 0
    verified_neighbors: int = 0
    mismatches: list[ASN] = field(default_factory=list)

    @property
    def percent_verified(self) -> float:
        """Percentage of verifiable neighbor relationships confirmed."""
        if self.verifiable_neighbors == 0:
            return 0.0
        return 100.0 * self.verified_neighbors / self.verifiable_neighbors


class CommunityAnalyzer:
    """Implements the Appendix: Fig. 9, semantics inference, Table 4 verification."""

    def __init__(
        self,
        full_table_fraction: float = 0.8,
        customer_prefix_threshold: int = 3,
        peer_degree_percentile: float = 0.8,
    ) -> None:
        if not (0.0 < full_table_fraction <= 1.0):
            raise InferenceError("full_table_fraction must be in (0, 1]")
        self.full_table_fraction = full_table_fraction
        self.customer_prefix_threshold = customer_prefix_threshold
        self.peer_degree_percentile = peer_degree_percentile

    # -- Fig. 9 ---------------------------------------------------------------------

    def prefix_counts_by_rank(self, glass: LookingGlass) -> list[tuple[ASN, int]]:
        """Fig. 9: (next-hop AS, prefix count) sorted by non-increasing count."""
        counts = glass.prefix_count_by_neighbor()
        return sorted(counts.items(), key=lambda item: item[1], reverse=True)

    # -- signatures ---------------------------------------------------------------------

    def neighbor_signatures(self, glass: LookingGlass) -> dict[ASN, NeighborSignature]:
        """Collect each neighbor's prefix count and dominant tagged community."""
        counts = glass.prefix_count_by_neighbor()
        community_votes: dict[ASN, Counter] = {n: Counter() for n in counts}
        for entry in glass.table.entries():
            for route in entry.routes:
                if route.is_local:
                    continue
                own = route.communities.from_asn(glass.asn)
                if not own:
                    continue
                for community in own:
                    community_votes[route.next_hop_as][community] += 1
        signatures: dict[ASN, NeighborSignature] = {}
        for neighbor, count in counts.items():
            votes = community_votes.get(neighbor)
            community = votes.most_common(1)[0][0] if votes else None
            signatures[neighbor] = NeighborSignature(
                neighbor=neighbor, prefix_count=count, community=community
            )
        return signatures

    # -- semantics inference (Appendix Step 2) -----------------------------------------------

    def infer_semantics(
        self,
        glass: LookingGlass,
        published_plan: CommunityPlan | None = None,
        has_providers: bool | None = None,
    ) -> CommunitySemantics:
        """Infer what each community value range means for one tagging AS.

        When the AS publishes its plan (``published_plan``), the mapping is
        read off directly, mirroring ASes that register the semantics in the
        IRR.  Otherwise the prefix-count heuristic of the Appendix anchors a
        few neighbors (provider / peer / customer) and every community bucket
        inherits the relationship of its anchors.
        """
        semantics = CommunitySemantics(asn=glass.asn)
        semantics.signatures = self.neighbor_signatures(glass)
        if not semantics.signatures:
            return semantics

        if published_plan is not None:
            for signature in semantics.signatures.values():
                if signature.community is None:
                    continue
                relationship = published_plan.relationship_of(signature.community)
                if relationship is not None:
                    semantics.value_to_relationship[bucket_of(signature.community)] = (
                        relationship
                    )
            return semantics

        total_prefixes = len(list(glass.table.prefixes()))
        ranked = sorted(
            semantics.signatures.values(), key=lambda s: s.prefix_count, reverse=True
        )
        # Anchor providers: neighbors announcing (nearly) the full table.
        provider_anchors = [
            s for s in ranked
            if s.prefix_count >= self.full_table_fraction * total_prefixes
        ]
        if has_providers is None:
            has_providers = bool(provider_anchors)
        # Anchor customers: neighbors announcing only a handful of prefixes.
        customer_anchors = [
            s for s in ranked if s.prefix_count <= self.customer_prefix_threshold
        ]
        # Anchor peers: large announcers that are not providers.  "Large" means
        # clearly above customer scale (the big gap of the Appendix), so an AS
        # with no peers at all does not get a customer mislabelled as one.
        peer_floor = max(self.customer_prefix_threshold * 4, int(0.02 * total_prefixes))
        non_provider = [s for s in ranked if s not in provider_anchors]
        peer_candidates = [s for s in non_provider if s.prefix_count >= peer_floor]
        peer_anchors = peer_candidates[: max(1, len(peer_candidates) // 3)] if peer_candidates else []

        for anchor_set, relationship in (
            (provider_anchors if has_providers else [], Relationship.PROVIDER),
            (peer_anchors, Relationship.PEER),
            (customer_anchors, Relationship.CUSTOMER),
        ):
            for signature in anchor_set:
                if signature.community is None:
                    continue
                bucket = bucket_of(signature.community)
                if bucket not in semantics.value_to_relationship:
                    semantics.value_to_relationship[bucket] = relationship
                    semantics.anchors[signature.neighbor] = relationship
        return semantics

    # -- relationship verification (Appendix Step 3, Table 4) -------------------------------------

    def verify_relationships(
        self,
        glass: LookingGlass,
        semantics: CommunitySemantics,
        relationships: AnnotatedASGraph,
    ) -> CommunityVerificationResult:
        """Compare community-derived relationships against a relationship graph."""
        result = CommunityVerificationResult(asn=glass.asn)
        for neighbor, signature in semantics.signatures.items():
            result.neighbor_count += 1
            derived = semantics.relationship_for_neighbor(neighbor)
            if derived is None:
                continue
            graph_relationship = relationships.relationship(glass.asn, neighbor)
            if graph_relationship is None:
                continue
            result.verifiable_neighbors += 1
            if graph_relationship is derived or (
                graph_relationship is Relationship.SIBLING
                and derived is Relationship.CUSTOMER
            ):
                result.verified_neighbors += 1
            else:
                result.mismatches.append(neighbor)
        return result
