"""Tests for the two-tier content-addressed stage cache."""

from repro.session import StageCache, fingerprint
from repro.storage.store import DiskStore
from repro.topology.generator import GeneratorParameters


class TestFingerprint:
    def test_deterministic(self):
        params = GeneratorParameters(seed=1)
        assert fingerprint("topology", params) == fingerprint("topology", params)

    def test_distinguishes_parameters(self):
        assert fingerprint("topology", GeneratorParameters(seed=1)) != fingerprint(
            "topology", GeneratorParameters(seed=2)
        )

    def test_distinguishes_stage_names(self):
        params = GeneratorParameters()
        assert fingerprint("topology", params) != fingerprint("policies", params)


class TestStageCache:
    def test_miss_then_hit(self):
        cache = StageCache()
        built = []

        def builder():
            built.append(1)
            return "artifact"

        assert cache.get_or_build("topology", "k1", builder) == "artifact"
        assert cache.get_or_build("topology", "k1", builder) == "artifact"
        assert built == [1]
        stats = cache.stats_for("topology")
        assert (stats.misses, stats.hits, stats.builds) == (1, 1, 1)

    def test_distinct_keys_build_separately(self):
        cache = StageCache()
        assert cache.get_or_build("s", "a", lambda: 1) == 1
        assert cache.get_or_build("s", "b", lambda: 2) == 2
        assert len(cache) == 2
        assert cache.stats_for("s").misses == 2

    def test_per_stage_stats(self):
        cache = StageCache()
        cache.get_or_build("topology", "k", lambda: 1)
        cache.get_or_build("policies", "k2", lambda: 2)
        assert cache.stats_for("topology").misses == 1
        assert cache.stats_for("policies").misses == 1
        assert cache.stats_for("never-touched").misses == 0

    def test_concurrent_same_key_builds_once(self):
        import threading

        cache = StageCache()
        built = []
        release = threading.Event()

        def slow_builder():
            release.wait(timeout=5)
            built.append(1)
            return "artifact"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_build("s", "k", slow_builder)
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=10)

        assert results == ["artifact"] * 4
        assert built == [1]
        stats = cache.stats_for("s")
        assert (stats.misses, stats.hits) == (1, 3)

    def test_failed_build_retried_by_waiters(self):
        cache = StageCache()
        attempts = []

        def flaky_builder():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first build fails")
            return "artifact"

        import pytest as _pytest

        with _pytest.raises(RuntimeError):
            cache.get_or_build("s", "k", flaky_builder)
        assert cache.get_or_build("s", "k", flaky_builder) == "artifact"
        assert len(attempts) == 2

    def test_clear_resets_everything(self):
        cache = StageCache()
        cache.get_or_build("s", "k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats_for("s").misses == 0


class TestVersionedFingerprint:
    def test_salted_with_storage_versions(self, monkeypatch):
        params = GeneratorParameters(seed=1)
        before = fingerprint("topology", params)
        from repro.storage import versions

        monkeypatch.setattr(versions, "SCHEMA_VERSION", versions.SCHEMA_VERSION + 1)
        assert fingerprint("topology", params) != before

    def test_salted_with_codec_versions(self, monkeypatch):
        params = GeneratorParameters(seed=1)
        before = fingerprint("topology", params)
        from repro.storage import versions

        bumped = dict(versions.CODEC_VERSIONS, topology=99)
        monkeypatch.setattr(versions, "CODEC_VERSIONS", bumped)
        assert fingerprint("topology", params) != before


class TestBoundedMemoryTier:
    def test_lru_eviction(self):
        cache = StageCache(max_entries=2)
        cache.get_or_build("s", "a", lambda: 1)
        cache.get_or_build("s", "b", lambda: 2)
        cache.get_or_build("s", "a", lambda: 1)  # refresh a
        cache.get_or_build("s", "c", lambda: 3)  # evicts b (least recent)
        assert len(cache) == 2
        built = []
        cache.get_or_build("s", "b", lambda: built.append(1) or 2)
        assert built == [1]  # b was evicted and rebuilt
        stats = cache.stats_for("s")
        assert stats.misses == 4
        assert stats.hits == 1

    def test_unbounded_by_default(self):
        cache = StageCache()
        for index in range(300):
            cache.get_or_build("s", f"k{index}", lambda: index)
        assert len(cache) == 300


class TestDiskTier:
    def test_second_cache_hits_disk(self, tmp_path):
        disk = DiskStore(tmp_path)
        encode = lambda value: repr(value).encode()  # noqa: E731
        decode = lambda data: eval(data.decode())  # noqa: E731,S307

        first = StageCache(disk=disk)
        first.get_or_build("s", "k", lambda: [1, 2], encode=encode, decode=decode)
        assert first.stats_for("s").misses == 1

        second = StageCache(disk=disk)
        built = []
        value = second.get_or_build(
            "s", "k", lambda: built.append(1), encode=encode, decode=decode
        )
        assert value == [1, 2]
        assert built == []  # served from disk, never built
        stats = second.stats_for("s")
        assert (stats.hits, stats.disk_hits, stats.misses) == (0, 1, 0)

    def test_decode_failure_falls_back_to_builder(self, tmp_path):
        disk = DiskStore(tmp_path)
        disk.write("s", "k", b"not what decode expects")

        def decode(data: bytes):
            raise ValueError("corrupt")

        cache = StageCache(disk=disk)
        value = cache.get_or_build(
            "s", "k", lambda: "rebuilt", encode=lambda v: v.encode(), decode=decode
        )
        assert value == "rebuilt"
        assert cache.stats_for("s").misses == 1
        # The rebuild overwrote the bad artifact; a new cache now disk-hits.
        fresh = StageCache(disk=disk)
        assert (
            fresh.get_or_build(
                "s",
                "k",
                lambda: "never",
                encode=lambda v: v.encode(),
                decode=lambda d: d.decode(),
            )
            == "rebuilt"
        )
        assert fresh.stats_for("s").disk_hits == 1

    def test_encode_failure_does_not_crash_a_successful_build(self, tmp_path):
        from repro.exceptions import StorageError

        def encode(value):
            raise StorageError("artifact cannot be lowered")

        cache = StageCache(disk=DiskStore(tmp_path))
        value = cache.get_or_build(
            "s", "k", lambda: "built", encode=encode, decode=bytes.decode
        )
        assert value == "built"  # best-effort tier: the computation survives
        assert cache.stats_for("s").misses == 1

    def test_no_codec_stays_memory_only(self, tmp_path):
        disk = DiskStore(tmp_path)
        cache = StageCache(disk=disk)
        cache.get_or_build("s", "k", lambda: 1)
        assert disk.read("s", "k") is None

    def test_clear_disk(self, tmp_path):
        disk = DiskStore(tmp_path)
        cache = StageCache(disk=disk)
        cache.get_or_build(
            "s", "k", lambda: "v", encode=lambda v: v.encode(), decode=bytes.decode
        )
        cache.clear(disk=True)
        assert disk.read("s", "k") is None
