"""Tests of the content-addressed disk tier."""

import pytest

from repro.storage import versions
from repro.storage.store import DiskStore


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "abc123", b"payload")
        assert store.read("topology", "abc123") == b"payload"

    def test_missing_is_none(self, tmp_path):
        assert DiskStore(tmp_path / "nowhere").read("topology", "k") is None

    def test_write_is_atomic_replace(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("irr", "k1", b"one")
        store.write("irr", "k1", b"two")
        assert store.read("irr", "k1") == b"two"
        stage_dir = tmp_path / "irr"
        assert not list(stage_dir.rglob("*.tmp"))

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "k", b"payload")
        path.write_bytes(b"garbage")
        assert store.read("topology", "k") is None

    def test_flipped_byte_inside_header_string_reads_as_miss(self, tmp_path):
        # Corruption may surface as a UnicodeDecodeError (invalid UTF-8 in
        # a packed string), not just a StorageError — still a miss.
        store = DiskStore(tmp_path)
        path = store.write("topology", "k", b"payload")
        data = bytearray(path.read_bytes())
        position = data.index(b"repro-artifact")
        data[position] = 0xFF
        path.write_bytes(bytes(data))
        assert store.read("topology", "k") is None

    def test_stage_mismatch_reads_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "k", b"payload")
        moved = tmp_path / "policies" / "k"[:2]
        moved.mkdir(parents=True)
        (moved / path.name).write_bytes(path.read_bytes())
        assert store.read("policies", "k") is None

    def test_schema_version_mismatch_reads_as_miss(self, tmp_path, monkeypatch):
        store = DiskStore(tmp_path)
        store.write("topology", "k", b"payload")
        monkeypatch.setattr(versions, "SCHEMA_VERSION", versions.SCHEMA_VERSION + 1)
        monkeypatch.setattr(
            "repro.storage.store.SCHEMA_VERSION", versions.SCHEMA_VERSION
        )
        assert store.read("topology", "k") is None


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "aa11", b"x" * 10)
        store.write("topology", "bb22", b"y" * 20)
        store.write("irr", "cc33", b"z")
        stats = store.stats()
        assert stats["topology"]["artifacts"] == 2
        assert stats["irr"]["artifacts"] == 1
        assert stats["topology"]["bytes"] > 30
        removed = store.clear()
        assert removed == 3
        assert store.stats() == {"irr": {"artifacts": 0, "bytes": 0},
                                 "topology": {"artifacts": 0, "bytes": 0}}
        assert store.read("topology", "aa11") is None

    def test_clear_leaves_sweeps_alone(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "aa11", b"x")
        sweep_file = tmp_path / "sweeps" / "digest" / "manifest.json"
        sweep_file.parent.mkdir(parents=True)
        sweep_file.write_text("{}")
        store.clear()
        assert sweep_file.exists()

    def test_stats_and_clear_tolerate_vanishing_files(self, tmp_path, monkeypatch):
        # A concurrent writer/clear can remove files between the directory
        # walk and the per-file stat/unlink; both walks must skip, not raise.
        store = DiskStore(tmp_path)
        store.write("topology", "aa11", b"x" * 10)
        real = store.path_for("topology", "aa11")
        ghost = tmp_path / "topology" / "bb" / "bb22.art"

        def walk_with_ghost(stage_dir):
            return [real, ghost] if stage_dir.name == "topology" else []

        monkeypatch.setattr(store, "_artifact_files", walk_with_ghost)
        assert store.stats() == {"topology": {"artifacts": 1, "bytes": real.stat().st_size}}
        assert store.clear() == 1
        assert not real.exists()


class TestQuarantine:
    def test_invalid_file_moves_to_quarantine(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "abc123", b"payload")
        path.write_bytes(b"garbage")
        assert store.read("topology", "abc123") is None
        assert not path.exists()
        moved = tmp_path / "quarantine" / "topology" / path.name
        assert moved.read_bytes() == b"garbage"

    def test_quarantine_rules_out_repeated_decodes(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "abc123", b"payload")
        path.write_bytes(b"garbage")
        store.read("topology", "abc123")
        assert store.health()["quarantined_reads"] == 1
        store.read("topology", "abc123")  # plain miss now: no file to decode
        assert store.health()["quarantined_reads"] == 1

    def test_quarantined_files_visible_across_instances(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "abc123", b"payload")
        path.write_bytes(b"garbage")
        store.read("topology", "abc123")
        other = DiskStore(tmp_path)  # e.g. `repro cache stats` in a new process
        assert other.health()["quarantined_files"] == 1
        assert other.health()["quarantined_reads"] == 0

    def test_clear_and_stats_leave_quarantine_alone(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "abc123", b"payload")
        path.write_bytes(b"garbage")
        store.read("topology", "abc123")
        assert store.stats() == {"topology": {"artifacts": 0, "bytes": 0}}
        store.clear()
        assert store.health()["quarantined_files"] == 1


class TestDegradation:
    def blocked_store(self, tmp_path, **kwargs) -> DiskStore:
        # A root that is a *file*: every mkdir (hence every write) fails
        # with a real OSError, no monkeypatching needed.
        root = tmp_path / "not-a-directory"
        root.write_text("")
        return DiskStore(root, **kwargs)

    def test_persistent_write_failures_trip_degraded_mode(self, tmp_path):
        store = self.blocked_store(tmp_path)
        for attempt in range(store.degrade_after):
            with pytest.raises(OSError):
                store.write("topology", "k", b"payload")
        assert store.degraded
        assert store.write_failures == store.degrade_after
        # Degraded: writes are silently skipped instead of raising.
        assert store.write("topology", "k", b"payload") is None
        assert store.write_failures == store.degrade_after

    def test_health_reports_the_counters(self, tmp_path):
        store = self.blocked_store(tmp_path, degrade_after=1)
        with pytest.raises(OSError):
            store.write("topology", "k", b"payload")
        health = store.health()
        assert health["degraded"] is True
        assert health["write_failures"] == 1
        assert health["quarantined_reads"] == 0

    def test_a_success_resets_the_consecutive_counter(self, tmp_path):
        store = DiskStore(tmp_path / "store")
        blocked = self.blocked_store(tmp_path)
        # Interleave failures (on the blocked root) with successes by
        # copying the counters through one instance: simplest is to drive
        # the real store's bookkeeping directly.
        store._note_write_failure()
        store._note_write_failure()
        store.write("topology", "k", b"payload")  # success resets the streak
        store._note_write_failure()
        assert not store.degraded
        assert store.write_failures == 3
        assert blocked.write_failures == 0

    def test_reads_still_work_while_degraded(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "k", b"payload")
        store.degraded = True
        assert store.read("topology", "k") == b"payload"
        assert store.write("topology", "other", b"x") is None


class TestReadView:
    def test_round_trip_is_zero_copy(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "abc123", b"payload")
        view = store.read_view("topology", "abc123")
        assert view is not None
        assert isinstance(view.payload, memoryview)
        assert bytes(view.payload) == b"payload"
        assert view.path == store.path_for("topology", "abc123")
        view.close()
        assert view.payload is None

    def test_missing_is_none(self, tmp_path):
        assert DiskStore(tmp_path).read_view("topology", "nope") is None

    def test_corrupt_file_is_a_miss_and_quarantined(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "abc123", b"payload")
        path.write_bytes(b"garbage")
        assert store.read_view("topology", "abc123") is None
        assert not path.exists()
        assert store.health()["quarantined_reads"] == 1

    def test_stage_mismatch_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "abcdef", b"payload")
        moved = tmp_path / "policies" / "ab"
        moved.mkdir(parents=True)
        (moved / path.name).write_bytes(path.read_bytes())
        assert store.read_view("policies", "abcdef") is None

    def test_context_manager_closes(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "abc123", b"payload")
        with store.read_view("topology", "abc123") as view:
            assert bytes(view.payload) == b"payload"
        assert view.payload is None

    def test_open_artifact_view_by_path(self, tmp_path):
        from repro.exceptions import StorageError
        from repro.storage.store import open_artifact_view

        store = DiskStore(tmp_path)
        path = store.write("topology", "abc123", b"payload")
        with open_artifact_view(path, "topology") as view:
            assert bytes(view.payload) == b"payload"
        with pytest.raises(StorageError):
            open_artifact_view(path, "policies")  # wrong stage header

    def test_open_artifact_view_rejects_empty_file(self, tmp_path):
        from repro.exceptions import StorageError
        from repro.storage.store import open_artifact_view

        empty = tmp_path / "empty.art"
        empty.touch()
        with pytest.raises(StorageError):
            open_artifact_view(empty, "topology")
