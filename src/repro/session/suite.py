"""Parallel experiment runner and the structured suite report.

``run_suite`` executes a set of registered experiments against one study.
Each experiment class declares ``requires: frozenset[Stage]``; the runner
instantiates the class fresh (experiments may keep per-run state), hands it a
:class:`~repro.session.stages.StageView` restricted to exactly those stages,
and times the run.  Analyses are CPU-light and operate over shared read-only
stage artifacts, so independent experiments run concurrently on a thread
pool when ``workers > 1``.

Results come back as a :class:`SuiteReport` ordered by experiment id — the
JSON serialization is deterministic, and byte-identical between serial and
parallel runs when timings are masked (``include_timing=False``).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import ExperimentError
from repro.session.stages import Stage, StageView

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.data.dataset import StudyDataset
    from repro.experiments.base import ExperimentResult
    from repro.session.study import Study


@dataclass
class ExperimentReport:
    """One experiment's reproduced table plus run metadata.

    Attributes:
        experiment_id: registry identifier ("table5", "fig6", ...).
        title: human-readable title.
        paper_reference: the table/figure and section reproduced.
        headers: column headers.
        rows: the data rows.
        notes: free-form remarks.
        timing: wall-clock seconds the analysis took.
    """

    experiment_id: str
    title: str
    paper_reference: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str]
    timing: float

    @classmethod
    def from_result(cls, result: "ExperimentResult", timing: float) -> "ExperimentReport":
        """Wrap an :class:`ExperimentResult` with its wall-clock cost."""
        return cls(
            experiment_id=result.experiment_id,
            title=result.title,
            paper_reference=result.paper_reference,
            headers=list(result.headers),
            rows=[list(row) for row in result.rows],
            notes=list(result.notes),
            timing=timing,
        )

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict with a stable key order and schema."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "timing": round(self.timing, 6) if include_timing else None,
        }

    def render(self) -> str:
        """The familiar ASCII-table rendering."""
        from repro.experiments.base import ExperimentResult

        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            paper_reference=self.paper_reference,
            headers=list(self.headers),
            rows=[list(row) for row in self.rows],
            notes=list(self.notes),
        ).render()


@dataclass
class SuiteReport:
    """The structured result of one ``run_suite`` call.

    Attributes:
        scenario: scenario name the suite ran against (``None`` for ad-hoc
            configurations).
        experiments: per-experiment reports, ordered by experiment id.
        workers: how many worker threads executed the suite.
        total_seconds: wall-clock cost of the whole suite (excludes dataset
            construction, which is paid by the stage cache).
    """

    experiments: list[ExperimentReport] = field(default_factory=list)
    scenario: str | None = None
    workers: int = 1
    total_seconds: float = 0.0

    def get(self, experiment_id: str) -> ExperimentReport:
        """The report of one experiment.

        Raises:
            ExperimentError: if the suite did not run that experiment.
        """
        for report in self.experiments:
            if report.experiment_id == experiment_id:
                return report
        raise ExperimentError(
            f"suite has no report for {experiment_id!r}; "
            f"ran: {[r.experiment_id for r in self.experiments]}"
        )

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict; ``include_timing=False`` masks all timings."""
        return {
            "scenario": self.scenario,
            "experiments": [
                report.to_dict(include_timing=include_timing)
                for report in self.experiments
            ],
            "workers": self.workers if include_timing else None,
            "total_seconds": round(self.total_seconds, 6) if include_timing else None,
        }

    def to_json(self, *, include_timing: bool = True, indent: int | None = 2) -> str:
        """Deterministic JSON; byte-identical across worker counts when
        ``include_timing=False``."""
        return json.dumps(
            self.to_dict(include_timing=include_timing),
            indent=indent,
            default=str,
        )

    def render(self) -> str:
        """Every experiment's ASCII table, separated by blank lines."""
        return "\n\n".join(report.render() for report in self.experiments)


def run_suite(
    study: "Study | StudyDataset",
    ids: Iterable[str] | None = None,
    *,
    workers: int = 1,
    scenario: str | None = None,
) -> SuiteReport:
    """Run experiments against a study (or an already-assembled dataset).

    Args:
        study: a :class:`Study` or a flat :class:`StudyDataset`.
        ids: experiment identifiers to run (default: every registered one).
        workers: thread-pool size; ``1`` runs serially.  Experiments are
            deterministic over the shared read-only dataset, so the report
            content is identical for any worker count.
        scenario: optional scenario name recorded in the report.

    Returns:
        A :class:`SuiteReport` ordered by experiment id.
    """
    # Imported lazily: repro.experiments imports repro.session at module
    # scope, so the reverse import must happen at call time.
    from repro.experiments.registry import experiment_class, experiment_ids

    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    selected = sorted(set(ids)) if ids is not None else experiment_ids()
    classes = {identifier: experiment_class(identifier) for identifier in selected}
    is_study = hasattr(study, "dataset")
    dataset = study.dataset() if is_study else study
    if any(Stage.ANALYSIS in cls.requires for cls in classes.values()):
        # Compile the measurement index once, up front: every
        # analysis-backed experiment then shares it instead of racing to
        # build it inside the worker pool.  A Study routes through the stage
        # cache (recording hit/miss accounting); a bare dataset goes through
        # its own memo.
        if is_study:
            study.analysis()
        else:
            dataset.analysis_engine()

    def run_one(identifier: str) -> ExperimentReport:
        cls = classes[identifier]
        experiment = cls()
        view = StageView(dataset, cls.requires)
        start = time.perf_counter()
        result = experiment.run(view)
        return ExperimentReport.from_result(result, time.perf_counter() - start)

    started = time.perf_counter()
    if workers == 1 or len(selected) <= 1:
        reports = [run_one(identifier) for identifier in selected]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            reports = list(pool.map(run_one, selected))
    total = time.perf_counter() - started

    reports.sort(key=lambda report: report.experiment_id)
    return SuiteReport(
        experiments=reports,
        scenario=scenario,
        workers=workers,
        total_seconds=total,
    )
