"""POOL: process-pool safety rules around ``ProcessPoolExecutor``.

Work shipped to a worker process is pickled; lambdas, closures and bound
methods are not picklable (or drag a surprising amount of state along),
and module-level mutable state read inside a worker is a *per-process
copy* — mutations made by the parent after fork/spawn, or by other
workers, are invisible.  Both failure modes surface only at runtime, in
the worker, with a traceback pointing nowhere near the cause.

Rules:

* :class:`UnpicklableSubmitRule` (POOL001) — a lambda, locally nested
  function or bound method submitted to a process pool;
* :class:`WorkerModuleStateRule` (POOL002) — a worker entry point reading
  module-level mutable state (mutable literals, or globals reassigned via
  ``global``).

POOL002 carries one sanctioned exemption: names bound to
:class:`repro.simulation.fastpath.shm.AttachCache`.  An ``AttachCache``
entry is a pure function of its key (the attach descriptor shipped with
each task), so a fresh process, a respawned worker and a warm worker all
compute identical values — the stale-per-process-copy hazard the rule
guards against cannot occur.  Plain dict/list worker memos remain
findings; the fix is to wrap them in an ``AttachCache`` (or to pass the
state through task arguments).

Both self-gate on ``ProcessPoolExecutor`` usage, so they cover
``session/sweep.py``, ``simulation/fastpath`` and ``fuzz/harness.py``
today and any future pool automatically.  Thread pools are exempt: they
share memory and pickle nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import (
    LintContext,
    ModuleUnderLint,
    Rule,
    dotted_name,
    register,
    scope_statements,
    walk_scopes,
)
from repro.devtools.model import Finding

#: Executor methods that pickle their callable into worker processes.
_SUBMIT_METHODS = frozenset({"submit", "map"})

#: Module-level calls producing mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "deque", "Counter"}
)

#: Sanctioned worker-memo wrappers: every entry is a pure function of its
#: key, so per-process copies are identical by construction (see the
#: module docstring).  Names bound to these calls never trip POOL002 —
#: not even when rebound from an initializer via ``global``.
_SANCTIONED_MEMOS = frozenset({"AttachCache"})


def _uses_process_pool(tree: ast.Module) -> bool:
    """``True`` when the module references ``ProcessPoolExecutor``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == "ProcessPoolExecutor":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ProcessPoolExecutor":
            return True
    return False


def _is_pool_constructor(node: ast.expr) -> bool:
    """``True`` for ``ProcessPoolExecutor(...)`` calls (dotted or plain)."""
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    return dotted is not None and dotted.split(".")[-1] == "ProcessPoolExecutor"


def _executor_names(body: list[ast.stmt]) -> set[str]:
    """Names bound to a process pool within one scope."""
    names: set[str] = set()
    for node in scope_statements(body):
        if isinstance(node, ast.Assign) and _is_pool_constructor(node.value):
            names.update(t.id for t in node.targets if isinstance(t, ast.Name))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_pool_constructor(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
    return names


def _submitted_callables(
    body: list[ast.stmt], executors: set[str]
) -> Iterator[tuple[ast.expr, str]]:
    """``(callable expression, method name)`` for every pool submission."""
    for node in scope_statements(body):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in executors
            and node.args
        ):
            yield _unwrap_partial(node.args[0]), node.func.attr


def _unwrap_partial(node: ast.expr) -> ast.expr:
    """The innermost callable of ``functools.partial(...)`` wrappings."""
    while (
        isinstance(node, ast.Call)
        and (dotted_name(node.func) or "").split(".")[-1] == "partial"
        and node.args
    ):
        node = node.args[0]
    return node


def _imported_module_names(tree: ast.Module) -> set[str]:
    """Top-level names that refer to imported modules (``import x as y``)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


@register
class UnpicklableSubmitRule(Rule):
    """POOL001: lambdas, closures or bound methods handed to a process pool.

    ``pickle`` refuses lambdas and functions defined inside another
    function, and a bound method pickles its whole instance.  Only
    module-level functions are safe task entry points.
    """

    id = "POOL001"
    family = "POOL"
    summary = "process pools need module-level functions, not closures"
    applies_to = None  # self-gated on ProcessPoolExecutor usage

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield one finding per unpicklable pool submission."""
        if not _uses_process_pool(module.tree):
            return
        imported_modules = _imported_module_names(module.tree)
        for scope, body in walk_scopes(module.tree):
            nested = {
                n.name
                for n in scope_statements(body)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            } if not isinstance(scope, ast.Module) else set()
            executors = _executor_names(body)
            for callable_node, method in _submitted_callables(body, executors):
                message = self._violation(callable_node, method, nested, imported_modules)
                if message is not None:
                    yield module.finding(self, callable_node, message)

    @staticmethod
    def _violation(
        node: ast.expr, method: str, nested: set[str], imported_modules: set[str]
    ) -> str | None:
        """The violation message for one submitted callable, or ``None``."""
        if isinstance(node, ast.Lambda):
            return f"lambda submitted to pool.{method}() cannot be pickled"
        if isinstance(node, ast.Name) and node.id in nested:
            return (
                f"locally defined function '{node.id}' submitted to "
                f"pool.{method}() cannot be pickled; move it to module level"
            )
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in imported_modules:
                return None  # module.function: picklable by reference
            return (
                f"bound method '{ast.unparse(node)}' submitted to "
                f"pool.{method}() pickles its whole instance into every "
                "worker; use a module-level function"
            )
        return None


@register
class WorkerModuleStateRule(Rule):
    """POOL002: worker entry points reading module-level mutable state.

    Each worker process gets its own copy of module globals at import
    time; reads inside a worker see neither parent mutations made after
    the pool spawned nor other workers' writes.  Pass state through task
    arguments, or memoize worker-side state that derives purely from task
    arguments in an :class:`repro.simulation.fastpath.shm.AttachCache`
    (sanctioned — see the module docstring).
    """

    id = "POOL002"
    family = "POOL"
    summary = "workers see stale per-process copies of module mutable state"
    applies_to = None  # self-gated on ProcessPoolExecutor usage

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield one finding per mutable-global read inside a worker."""
        if not _uses_process_pool(module.tree):
            return
        mutable = self._module_mutable_names(module.tree)
        if not mutable:
            return
        workers = self._worker_functions(module.tree)
        for function in workers:
            seen: set[tuple[str, int]] = set()
            for node in ast.walk(function):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable
                    and (node.id, node.lineno) not in seen
                ):
                    seen.add((node.id, node.lineno))
                    yield module.finding(
                        self,
                        node,
                        f"worker '{function.name}' reads module-level mutable "
                        f"state '{node.id}'; each process sees its own copy — "
                        "pass it via task arguments or an initializer",
                    )

    @staticmethod
    def _module_mutable_names(tree: ast.Module) -> set[str]:
        """Module-level names holding mutable containers or reassigned globals.

        Names bound to a sanctioned memo wrapper (:data:`_SANCTIONED_MEMOS`)
        are subtracted: their per-process copies are identical by
        construction, so reading them in a worker is the *fix* for this
        rule, not a violation of it.
        """
        mutable: set[str] = set()
        sanctioned: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                targets = [node.target.id]
                value = node.value
            else:
                continue
            if value is None:
                continue
            if WorkerModuleStateRule._is_sanctioned_memo(value):
                sanctioned.update(targets)
            elif WorkerModuleStateRule._is_mutable_literal(value):
                mutable.update(targets)
        # Globals written from function bodies (the initializer pattern).
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declared: set[str] = set()
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Global):
                        declared.update(inner.names)
                if declared:
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Assign):
                            for target in inner.targets:
                                if not (
                                    isinstance(target, ast.Name)
                                    and target.id in declared
                                ):
                                    continue
                                if WorkerModuleStateRule._is_sanctioned_memo(
                                    inner.value
                                ):
                                    sanctioned.add(target.id)
                                else:
                                    mutable.add(target.id)
        return mutable - sanctioned

    @staticmethod
    def _is_sanctioned_memo(node: ast.expr) -> bool:
        """``True`` for calls constructing a sanctioned worker memo."""
        if not isinstance(node, ast.Call):
            return False
        dotted = dotted_name(node.func)
        return dotted is not None and dotted.split(".")[-1] in _SANCTIONED_MEMOS

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        """``True`` for list/dict/set displays, comprehensions and factories."""
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            return (
                dotted is not None and dotted.split(".")[-1] in _MUTABLE_FACTORIES
            )
        return False

    @staticmethod
    def _worker_functions(tree: ast.Module) -> list[ast.FunctionDef]:
        """Module-level functions that run inside worker processes.

        A function is a worker when its name is submitted/mapped to a pool
        anywhere in the module, or passed as a pool's ``initializer``.
        """
        worker_names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and node.args
            ):
                target = _unwrap_partial(node.args[0])
                if isinstance(target, ast.Name):
                    worker_names.add(target.id)
            if _is_pool_constructor(node):
                for keyword in node.keywords:
                    if keyword.arg == "initializer" and isinstance(
                        keyword.value, ast.Name
                    ):
                        worker_names.add(keyword.value.id)
        return [
            node
            for node in tree.body
            if isinstance(node, ast.FunctionDef) and node.name in worker_names
        ]
