"""Unit tests for repro.net.aspath."""

import pytest

from repro.exceptions import ASPathError
from repro.net.aspath import ASPath


class TestConstruction:
    def test_parse(self):
        path = ASPath.parse("8220 12878 5606 15471")
        assert path.asns == (8220, 12878, 5606, 15471)

    def test_parse_empty(self):
        assert len(ASPath.parse("   ")) == 0

    def test_origin_only(self):
        path = ASPath.origin_only(6280)
        assert path.origin_as == 6280
        assert path.next_hop_as == 6280
        assert len(path) == 1

    def test_rejects_negative(self):
        with pytest.raises(ASPathError):
            ASPath([7018, -1])

    def test_immutable(self):
        path = ASPath([1, 2])
        with pytest.raises(AttributeError):
            path._asns = (3,)


class TestViews:
    def test_next_hop_and_origin(self):
        path = ASPath.parse("7018 1239 701 6280")
        assert path.next_hop_as == 7018
        assert path.origin_as == 6280

    def test_empty_path_has_no_next_hop(self):
        with pytest.raises(ASPathError):
            ASPath().next_hop_as

    def test_empty_path_has_no_origin(self):
        with pytest.raises(ASPathError):
            ASPath().origin_as

    def test_contains_and_loop(self):
        path = ASPath.parse("1 2 3")
        assert path.contains(2)
        assert path.has_loop_for(3)
        assert not path.has_loop_for(4)

    def test_unique_length_ignores_prepending(self):
        assert ASPath.parse("1 1 1 2 3").unique_length == 3

    def test_adjacencies_deduplicate_prepending(self):
        path = ASPath.parse("1 1 2 2 2 3")
        assert list(path.adjacencies()) == [(1, 2), (2, 3)]

    def test_adjacencies_single_as(self):
        assert list(ASPath.parse("7018").adjacencies()) == []


class TestOperations:
    def test_prepend(self):
        path = ASPath.parse("2 3").prepend(1)
        assert path.asns == (1, 2, 3)

    def test_prepend_multiple(self):
        path = ASPath.parse("2 3").prepend(1, count=3)
        assert path.asns == (1, 1, 1, 2, 3)
        assert path.deduplicate().asns == (1, 2, 3)

    def test_prepend_rejects_zero_count(self):
        with pytest.raises(ASPathError):
            ASPath.parse("2").prepend(1, count=0)

    def test_strip_private(self):
        path = ASPath.parse("7018 64999 701")
        assert path.strip_private().asns == (7018, 701)

    def test_startswith(self):
        path = ASPath.parse("1 2 3 4")
        assert path.startswith(ASPath.parse("1 2"))
        assert path.startswith([1, 2, 3])
        assert not path.startswith([2, 3])


class TestDunder:
    def test_equality_and_hash(self):
        assert ASPath.parse("1 2") == ASPath([1, 2])
        assert hash(ASPath.parse("1 2")) == hash(ASPath([1, 2]))
        assert ASPath.parse("1 2") != ASPath.parse("2 1")

    def test_iteration_and_indexing(self):
        path = ASPath.parse("5 6 7")
        assert list(path) == [5, 6, 7]
        assert path[1] == 6

    def test_bool(self):
        assert not ASPath()
        assert ASPath([1])

    def test_str_roundtrip(self):
        text = "7018 1239 701"
        assert str(ASPath.parse(text)) == text
