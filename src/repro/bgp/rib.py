"""Routing Information Bases: Adj-RIB-In and Loc-RIB.

The paper's inference pipeline consumes *routing tables* — per-prefix best
routes (a Loc-RIB) for RouteViews-style data and, for Looking Glass data,
tables that also expose alternative routes, LOCAL_PREF and communities.
These containers model both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.bgp.decision import DecisionProcess
from repro.bgp.route import NeighborKind, Route
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


@dataclass
class RibEntry:
    """All routes known for one prefix, plus the selected best route."""

    prefix: Prefix
    routes: list[Route] = field(default_factory=list)
    best: Route | None = None

    def alternatives(self) -> list[Route]:
        """Routes other than the best one."""
        return [route for route in self.routes if route is not self.best]


class AdjRibIn:
    """Routes received from one neighbor, before best-route selection."""

    def __init__(self, neighbor: ASN, kind: NeighborKind = NeighborKind.UNKNOWN) -> None:
        self.neighbor = neighbor
        self.kind = kind
        self._routes: dict[Prefix, Route] = {}

    def add(self, route: Route) -> None:
        """Store (or replace) the route announced by this neighbor for its prefix."""
        self._routes[route.prefix] = route

    def withdraw(self, prefix: Prefix) -> None:
        """Remove the route for ``prefix`` if present."""
        self._routes.pop(prefix, None)

    def get(self, prefix: Prefix) -> Route | None:
        """Return the route announced for ``prefix``, if any."""
        return self._routes.get(prefix)

    def routes(self) -> Iterator[Route]:
        """Iterate over every route announced by this neighbor."""
        return iter(self._routes.values())

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: object) -> bool:
        return prefix in self._routes


class LocRib:
    """The per-AS (or per-router) routing table after best-route selection.

    The table keeps every candidate route per prefix along with the selected
    best route, because the export-policy inference needs to ask both "what
    is the best route to this prefix?" and "does a customer route to this
    prefix exist at all?".
    """

    def __init__(self, owner: ASN, decision: DecisionProcess | None = None) -> None:
        self.owner = owner
        self.decision = decision or DecisionProcess()
        self._entries: PrefixTrie[RibEntry] = PrefixTrie()

    # -- mutation --------------------------------------------------------------

    def add_route(self, route: Route) -> RibEntry:
        """Insert a candidate route and re-run best-route selection for its prefix."""
        entry = self._entries.get(route.prefix)
        if entry is None:
            entry = RibEntry(prefix=route.prefix)
            self._entries.insert(route.prefix, entry)
        # A neighbor announces at most one route per prefix: replace any
        # previous announcement from the same neighbor and router.
        entry.routes = [
            existing
            for existing in entry.routes
            if not (
                existing.next_hop_as == route.next_hop_as
                and existing.router_id == route.router_id
                and existing.source == route.source
            )
        ]
        entry.routes.append(route)
        entry.best = self.decision.select_best(entry.routes)
        return entry

    def add_routes(self, routes: Iterable[Route]) -> None:
        """Insert many candidate routes."""
        for route in routes:
            self.add_route(route)

    def load_entry(self, prefix: Prefix, routes: list[Route], best: Route | None) -> RibEntry:
        """Install a fully-selected entry in one step.

        Bulk-loading path used by simulation engines that already ran the
        decision process: the caller guarantees ``best`` is what
        :meth:`DecisionProcess.select_best` would pick over ``routes`` (in
        order) and that the routes come from distinct (neighbor, router,
        source) triples.  Falls back to :meth:`add_route` when an entry for
        the prefix already exists, so mixing both APIs stays correct.
        """
        entry = RibEntry(prefix=prefix, routes=list(routes), best=best)
        stored = self._entries.insert_if_absent(prefix, entry)
        if stored is not entry:
            for route in routes:
                stored = self.add_route(route)
        return stored

    def withdraw(self, prefix: Prefix, neighbor: ASN) -> None:
        """Remove the route announced by ``neighbor`` for ``prefix``."""
        entry = self._entries.get(prefix)
        if entry is None:
            return
        entry.routes = [r for r in entry.routes if r.next_hop_as != neighbor]
        if entry.routes:
            entry.best = self.decision.select_best(entry.routes)
        else:
            self._entries.remove(prefix)

    # -- queries --------------------------------------------------------------------

    def entry(self, prefix: Prefix) -> RibEntry | None:
        """Return the entry for exactly ``prefix``."""
        return self._entries.get(prefix)

    def best_route(self, prefix: Prefix) -> Route | None:
        """Return the selected best route for exactly ``prefix``."""
        entry = self._entries.get(prefix)
        return entry.best if entry else None

    def all_routes(self, prefix: Prefix) -> list[Route]:
        """Return every candidate route for exactly ``prefix``."""
        entry = self._entries.get(prefix)
        return list(entry.routes) if entry else []

    def lookup(self, address: int | str) -> Route | None:
        """Longest-prefix-match lookup of the best route for an address."""
        match = self._entries.lookup_address(address)
        return match[1].best if match else None

    def prefixes(self) -> Iterator[Prefix]:
        """Iterate over every prefix with at least one route."""
        return iter(self._entries)

    def entries(self) -> Iterator[RibEntry]:
        """Iterate over every RIB entry."""
        for _, entry in self._entries.items():
            yield entry

    def best_routes(self) -> Iterator[Route]:
        """Iterate over the best route of every prefix."""
        for entry in self.entries():
            if entry.best is not None:
                yield entry.best

    def routes_from(self, neighbor: ASN) -> Iterator[Route]:
        """Iterate over every candidate route learned from ``neighbor``."""
        for entry in self.entries():
            for route in entry.routes:
                if route.next_hop_as == neighbor:
                    yield route

    def best_routes_from(self, neighbor: ASN) -> Iterator[Route]:
        """Iterate over best routes whose next hop is ``neighbor``."""
        for route in self.best_routes():
            if route.next_hop_as == neighbor:
                yield route

    def neighbors(self) -> set[ASN]:
        """Return every next-hop AS appearing in the table."""
        found: set[ASN] = set()
        for entry in self.entries():
            for route in entry.routes:
                if route.next_hop_as != self.owner:
                    found.add(route.next_hop_as)
        return found

    def prefixes_originated_by(self, asn: ASN) -> list[Prefix]:
        """Return every prefix whose best route is originated by ``asn``."""
        return [
            entry.prefix
            for entry in self.entries()
            if entry.best is not None and entry.best.origin_as == asn
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: object) -> bool:
        return prefix in self._entries

    def __repr__(self) -> str:
        return f"LocRib(owner=AS{self.owner}, prefixes={len(self)})"
