"""Experiment abstractions shared by every table/figure reproduction."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.reporting.tables import ascii_table
from repro.session.stages import ALL_STAGES, Stage, StageView


@dataclass
class ExperimentResult:
    """The reproduced rows of one table or figure.

    Attributes:
        experiment_id: registry identifier ("table5", "fig6", ...).
        title: human-readable title.
        paper_reference: which table/figure and section of the paper this
            reproduces.
        headers: column headers of the reproduced table / series.
        rows: the data rows.
        notes: free-form remarks (e.g. the paper's headline numbers to
            compare against, or caveats about the synthetic substrate).
    """

    experiment_id: str
    title: str
    paper_reference: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Render the result as an ASCII table with notes."""
        parts = [
            f"== {self.experiment_id}: {self.title}",
            f"   (reproduces {self.paper_reference})",
            ascii_table(self.headers, self.rows),
        ]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


class Experiment(abc.ABC):
    """Base class for one table/figure reproduction.

    Subclasses declare ``requires`` — the pipeline stages their analysis
    reads.  ``run_suite`` hands ``run`` a :class:`StageView` exposing exactly
    those stages (accessing anything else raises), which keeps the declared
    dependencies honest and lets independent experiments run concurrently
    over the same read-only stage artifacts.
    """

    #: Registry identifier, e.g. ``"table5"``.
    experiment_id: str = ""
    #: Human-readable title.
    title: str = ""
    #: The table/figure and section of the paper being reproduced.
    paper_reference: str = ""
    #: The pipeline stages this experiment reads (see :class:`Stage`).
    requires: frozenset[Stage] = ALL_STAGES

    @abc.abstractmethod
    def run(self, dataset: StageView) -> ExperimentResult:
        """Execute the experiment against a stage view of a study dataset.

        A plain :class:`~repro.data.dataset.StudyDataset` is also accepted
        (it exposes the same attributes, ungated)."""

    def _result(self) -> ExperimentResult:
        """Create an empty result pre-filled with this experiment's metadata."""
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            paper_reference=self.paper_reference,
        )
