"""Figure 7 — SA-prefix uptime and shifting to non-SA."""

from __future__ import annotations

from repro.analysis.persistence import uptime_distribution
from repro.session.stages import StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import persistence_snapshots
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Figure7Experiment(Experiment):
    """Histogram of prefixes remaining SA vs. shifting to non-SA, by uptime."""

    experiment_id = "fig7"
    title = "Prefixes remaining SA vs. shifting from SA to non-SA"
    paper_reference = "Figure 7, Section 5.1.4"
    requires = frozenset()

    month_snapshots = 31
    day_snapshots = 12

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        result.headers = ["panel", "uptime", "remaining as SA", "shifting SA->non-SA"]
        for panel, count, seed in (
            ("fig7a (daily)", self.month_snapshots, 315),
            ("fig7b (intra-day)", self.day_snapshots, 316),
        ):
            provider, snapshots, graph = persistence_snapshots(count, seed)
            distribution = uptime_distribution(list(snapshots), provider, graph)
            for uptime, remaining, shifting in distribution.histogram():
                if remaining == 0 and shifting == 0:
                    continue
                result.rows.append([panel, uptime, remaining, shifting])
            result.notes.append(
                f"{panel}: {format_percent(distribution.percent_shifting, 1)} of ever-SA "
                "prefixes shift to non-SA during the period"
            )
        result.notes.append(
            "Paper Fig. 7: about one sixth of SA prefixes are not stable over a month, "
            "but most are stable within one day."
        )
        return result
