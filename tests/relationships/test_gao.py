"""Unit tests for the Gao-style relationship inference."""

import pytest

from repro.exceptions import InferenceError
from repro.net.aspath import ASPath
from repro.relationships.gao import GaoInference
from repro.topology.graph import Relationship


def hierarchy_paths():
    """Paths over a small hierarchy observed from two Tier-1 vantage points.

    Ground truth: AS1 and AS2 are Tier-1 peers with many direct stub
    customers (so their degrees dominate, as in the real Internet); AS10 and
    AS20 are transit customers of AS1/AS2; AS100, AS200, AS300 are stubs
    below AS10/AS20.
    """
    texts = [
        # Direct stub customers that give the Tier-1s the largest degrees.
        *[f"1 {stub}" for stub in range(1100, 1110)],
        *[f"2 {stub}" for stub in range(2100, 2110)],
        # Transit branches observed from each Tier-1.
        "1 10 100",
        "1 10 200",
        "1 10 100",
        "2 20 300",
        "2 20 300",
        # Cross-Tier-1 paths (the peer edge appears only at the top).
        "1 2 20 300",
        "1 2 2100",
        "2 1 10 100",
        "2 1 10 200",
        "2 1 1100",
    ]
    return [ASPath.parse(text) for text in texts]


class TestGaoInference:
    def test_transit_edges_inferred(self):
        result = GaoInference(peer_degree_ratio=1.5).infer(hierarchy_paths())
        graph = result.graph
        assert graph.relationship(10, 100) is Relationship.CUSTOMER
        assert graph.relationship(10, 200) is Relationship.CUSTOMER
        assert graph.relationship(20, 300) is Relationship.CUSTOMER
        assert graph.relationship(100, 10) is Relationship.PROVIDER

    def test_tier1_edges_inferred(self):
        result = GaoInference(peer_degree_ratio=1.5).infer(hierarchy_paths())
        graph = result.graph
        assert graph.relationship(1, 10) is Relationship.CUSTOMER
        assert graph.relationship(2, 20) is Relationship.CUSTOMER

    def test_peer_edge_between_tier1s(self):
        result = GaoInference(peer_degree_ratio=1.5).infer(hierarchy_paths())
        assert result.graph.relationship(1, 2) is Relationship.PEER

    def test_degrees_computed_from_paths(self):
        result = GaoInference().infer(hierarchy_paths())
        assert result.degrees[10] == 3  # neighbors 1, 100, 200
        assert result.degrees[100] == 1
        assert result.degrees[1] == 12  # ten stubs + AS10 + AS2

    def test_prepending_is_collapsed(self):
        paths = [ASPath.parse("10 10 10 100"), ASPath.parse("10 100"), ASPath.parse("10 200")]
        result = GaoInference().infer(paths)
        assert result.graph.relationship(10, 100) in (
            Relationship.CUSTOMER,
            Relationship.PEER,
        )

    def test_sibling_detection_with_mutual_transit(self):
        # AS5 and AS6 mutually provide transit for each other's stubs; the
        # mutual-transit evidence is observed below a large upstream AS9 so
        # that the votes are confident (non-top-adjacent) in both directions.
        paths = [
            *[ASPath.parse(f"9 {stub}") for stub in range(900, 910)],
            ASPath.parse("9 5 6 61"),
            ASPath.parse("9 5 6 62"),
            ASPath.parse("9 6 5 51"),
            ASPath.parse("9 6 5 52"),
        ]
        result = GaoInference(sibling_threshold=2, peer_degree_ratio=1.2).infer(paths)
        assert result.graph.relationship(5, 6) is Relationship.SIBLING

    def test_empty_input_rejected(self):
        with pytest.raises(InferenceError):
            GaoInference().infer([])

    def test_single_as_paths_rejected(self):
        with pytest.raises(InferenceError):
            GaoInference().infer([ASPath.parse("7018")])

    def test_plain_sequences_accepted(self):
        result = GaoInference().infer([[10, 100], [10, 200], (1, 10, 100)])
        assert result.graph.relationship(10, 100) is not None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InferenceError):
            GaoInference(peer_degree_ratio=0.5)
        with pytest.raises(InferenceError):
            GaoInference(sibling_threshold=0)

    def test_weighted_inference_matches_expanded_paths(self):
        # Feeding each distinct path once with its multiplicity must be
        # indistinguishable from feeding the expanded (duplicated) list.
        from collections import Counter

        paths = hierarchy_paths()
        counts = Counter(path.asns for path in paths)
        expanded = GaoInference(peer_degree_ratio=1.5).infer(paths)
        weighted = GaoInference(peer_degree_ratio=1.5).infer_weighted(
            counts.items()
        )
        assert weighted.degrees == expanded.degrees
        assert weighted.transit_votes == expanded.transit_votes
        assert weighted.ambiguous_votes == expanded.ambiguous_votes
        for left, right in expanded.transit_votes:
            assert weighted.graph.relationship(left, right) is (
                expanded.graph.relationship(left, right)
            )
        assert weighted.graph.relationship(1, 2) is Relationship.PEER

    def test_weighted_inference_ignores_nonpositive_weights(self):
        result = GaoInference().infer_weighted(
            [([10, 100], 3), ([10, 200], 1), ([1, 10, 100], 0)]
        )
        assert result.graph.relationship(10, 100) is not None
        assert 1 not in result.degrees

    def test_degree_gap_forces_transit_even_without_confident_votes(self):
        # AS1 is huge (many neighbors), AS50 tiny; their edge is only ever
        # top-adjacent, so the degree ratio decides: provider-to-customer.
        paths = [ASPath.parse(f"1 {n}") for n in range(100, 120)]
        paths.append(ASPath.parse("1 50"))
        paths.append(ASPath.parse("50 1 100"))
        result = GaoInference(peer_degree_ratio=3.0).infer(paths)
        assert result.graph.relationship(1, 50) is Relationship.CUSTOMER
