"""Tests of the deterministic binary packer."""

from array import array

import pytest

from repro.exceptions import StorageError
from repro.storage.packing import pack, unpack


class TestRoundTrip:
    def test_scalars(self):
        for value in (None, True, False, 0, 1, -1, 2**70, -(2**70), 3.25, -0.0,
                      "", "héllo", b"", b"\x00\xff"):
            assert unpack(pack(value)) == value

    def test_preserves_scalar_types(self):
        assert unpack(pack(True)) is True
        assert unpack(pack(1)) == 1 and unpack(pack(1)) is not True
        assert isinstance(unpack(pack(1.0)), float)

    def test_containers(self):
        tree = (1, [2, (3, "x")], b"raw", None, [[], ()])
        assert unpack(pack(tree)) == tree
        assert isinstance(unpack(pack(tree)), tuple)
        assert isinstance(unpack(pack([1]))[0], int)

    def test_arrays(self):
        column = array("q", [0, -5, 2**40])
        restored = unpack(pack((column, array("d", [1.5]))))
        assert restored[0] == column
        assert restored[0].typecode == "q"
        assert restored[1].tolist() == [1.5]

    def test_int_subclasses_lower_to_plain_ints(self):
        import enum

        class Code(enum.IntEnum):
            A = 7

        restored = unpack(pack((Code.A,)))
        assert restored == (7,)
        assert type(restored[0]) is int


class TestDeterminism:
    def test_equal_trees_pack_identically(self):
        tree = ("stage", [1, 2, 3], (4.5, b"x"), array("q", [9]))
        assert pack(tree) == pack(("stage", [1, 2, 3], (4.5, b"x"), array("q", [9])))

    def test_varint_boundaries(self):
        for value in (-(2**63), 2**63 - 1, 127, 128, -128, 16383, 16384):
            assert unpack(pack(value)) == value


class TestZeroCopyView:
    def test_arrays_stay_views_over_the_source_buffer(self):
        from repro.storage.packing import unpack_view

        column = array("q", [0, -5, 2**40])
        data = pack((column, b"blob", "text", 7))
        tree = unpack_view(data)
        restored_column, blob, text, number = tree
        assert isinstance(restored_column, memoryview)
        assert restored_column.format == "q"
        assert list(restored_column) == column.tolist()
        assert isinstance(blob, memoryview)
        assert bytes(blob) == b"blob"
        assert text == "text" and number == 7

    def test_accepts_memoryview_input_without_copy(self):
        from repro.storage.packing import unpack_view

        data = pack(array("q", [1, 2, 3]))
        view = unpack_view(memoryview(data))
        assert list(view) == [1, 2, 3]

    def test_matches_copying_unpack(self):
        from repro.storage.packing import unpack_view

        tree = (array("q", [9, -9]), (b"x", "y"), [1.5, None, True])
        copied = unpack(pack(tree))
        viewed = unpack_view(pack(tree))
        assert list(viewed[0]) == copied[0].tolist()
        assert bytes(viewed[1][0]) == copied[1][0]
        assert viewed[1][1] == copied[1][1]
        assert viewed[2] == copied[2]

    def test_rejects_noncontiguous_buffers(self):
        from repro.storage.packing import unpack_view

        data = pack(1) * 2
        with pytest.raises(StorageError):
            unpack_view(memoryview(data)[::2])

    def test_truncated_and_trailing_bytes(self):
        from repro.storage.packing import unpack_view

        data = pack((1, array("q", [2])))
        with pytest.raises(StorageError):
            unpack_view(data[:-1])
        with pytest.raises(StorageError):
            unpack_view(data + b"\x00")


class TestErrors:
    def test_rejects_hash_ordered_containers(self):
        with pytest.raises(StorageError):
            pack({"a": 1})
        with pytest.raises(StorageError):
            pack({1, 2})

    def test_truncated_data(self):
        data = pack((1, 2, 3))
        with pytest.raises(StorageError):
            unpack(data[:-1])

    def test_trailing_bytes(self):
        with pytest.raises(StorageError):
            unpack(pack(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(StorageError):
            unpack(b"\xfe")
