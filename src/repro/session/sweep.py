"""Resumable cross-process sweeps over the durable artifact store.

The paper's workload is sweep-shaped: the same inference and
characterization analyses re-run across many vantage/policy configurations.
:func:`run_sweep` fans a list of scenario specs (preset names or
``family@seed`` samples) out over worker processes, with every worker
attached to one shared disk tier (``--cache-dir``):

* **stage reuse** — workers share pipeline prefixes through the
  content-addressed store instead of recomputing them: the first case to
  need a topology persists it, every later case (in any process, in any
  later sweep) decodes it.
* **report reuse** — each case's timing-masked suite JSON is itself stored
  under the ``report`` tier, addressed by the full upstream key chain plus
  the experiment list.  A warm-cache sweep re-derives the keys (pure
  fingerprinting, no builds) and serves every case from disk, byte-identical
  to the cold run.
* **resume** — per-case completion is recorded in ``manifest.json`` inside
  the sweep directory, rewritten atomically after every case.  An
  interrupted sweep (crash, SIGKILL, ``fail_after`` test hook) restarts
  with the same arguments, skips every recorded case, and completes the
  remainder.

CLI::

    python -m repro sweep multihoming@0 multihoming@1 --cache-dir .repro-cache
    python -m repro sweep --family peering-density --count 10 --workers 4 \\
        --cache-dir /shared/cache
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError
from repro.session.cache import StageCache, fingerprint
from repro.session.scenarios import get_family, resolve_scenario
from repro.session.stages import Stage
from repro.session.suite import run_suite
from repro.storage.store import DiskStore

#: Manifest schema version (bumped on incompatible manifest changes).
MANIFEST_VERSION = 1

#: Environment variable making the orchestrator abort after N completed
#: cases — a deterministic stand-in for "the process was killed mid-sweep",
#: used by the resume smoke tests and CI.
FAIL_AFTER_ENV = "REPRO_SWEEP_FAIL_AFTER"


class SweepInterrupted(ExperimentError):
    """The sweep stopped before finishing; the manifest records progress."""


@dataclass
class SweepCase:
    """Outcome of one sweep case.

    Attributes:
        spec: the scenario spec (preset name or ``family@seed``).
        status: ``"completed"`` (experiments ran), ``"cached"`` (report
            served from the disk tier), ``"resumed"`` (skipped — already in
            the manifest) or ``"failed"``.
        seconds: wall-clock cost of the case in this run (0 when resumed).
        report_path: path of the case's suite-report JSON file.
        error: the failure message for ``"failed"`` cases.
        cache_stats: per-stage hit/disk-hit/miss counters of the case's
            cache (absent for resumed cases).
    """

    spec: str
    status: str
    seconds: float = 0.0
    report_path: str | None = None
    error: str | None = None
    cache_stats: dict | None = None

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict with a stable key order."""
        return {
            "spec": self.spec,
            "status": self.status,
            "seconds": round(self.seconds, 4) if include_timing else None,
            "report": self.report_path,
            "error": self.error,
            "cache_stats": self.cache_stats,
        }


@dataclass
class SweepReport:
    """The structured result of one :func:`run_sweep` call.

    Attributes:
        cases: per-case outcomes, in spec order.
        cache_dir: the shared disk tier directory.
        sweep_dir: the sweep's manifest/report directory.
        experiments: experiment ids the sweep ran (``None`` means all).
        workers: process-pool width.
        total_seconds: wall-clock cost of the whole call.
    """

    cases: list[SweepCase] = field(default_factory=list)
    cache_dir: str = ""
    sweep_dir: str = ""
    experiments: list[str] | None = None
    workers: int = 1
    total_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """``True`` when no case failed."""
        return all(case.status != "failed" for case in self.cases)

    def count(self, status: str) -> int:
        """How many cases finished with the given status."""
        return sum(1 for case in self.cases if case.status == status)

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """A JSON-ready dict; ``include_timing=False`` masks all timings."""
        return {
            "cache_dir": self.cache_dir,
            "sweep_dir": self.sweep_dir,
            "experiments": self.experiments,
            "ok": self.ok,
            "counts": {
                status: self.count(status)
                for status in ("completed", "cached", "resumed", "failed")
            },
            "cases": [
                case.to_dict(include_timing=include_timing) for case in self.cases
            ],
            "workers": self.workers if include_timing else None,
            "total_seconds": round(self.total_seconds, 4) if include_timing else None,
        }

    def to_json(self, *, include_timing: bool = True, indent: int | None = 2) -> str:
        """Deterministic JSON (byte-identical when timings are masked)."""
        return json.dumps(self.to_dict(include_timing=include_timing), indent=indent)

    def render(self) -> str:
        """A human-readable per-case summary."""
        lines = [
            f"sweep: {len(self.cases)} cases (workers={self.workers}, "
            f"cache={self.cache_dir})"
        ]
        for case in self.cases:
            marker = {"completed": "run ", "cached": "hit ", "resumed": "skip"}.get(
                case.status, "FAIL"
            )
            detail = case.error if case.error else f"{case.seconds:.2f}s"
            lines.append(f"{marker} {case.spec:28s} {detail}")
        lines.append(
            f"summary: {self.count('completed')} computed, "
            f"{self.count('cached')} from cache, {self.count('resumed')} resumed, "
            f"{self.count('failed')} failed, {self.total_seconds:.1f}s"
        )
        return "\n".join(lines)


def expand_case_specs(
    cases: list[str] | None,
    families: list[str] | None = None,
    count: int = 5,
    seed: int = 0,
) -> list[str]:
    """The sweep's case list: explicit specs plus family expansions.

    Args:
        cases: explicit scenario specs (presets or ``family@seed``).
        families: family names expanded to ``family@seed .. family@seed+count-1``.
        count: samples per expanded family.
        seed: first sample seed of each expanded family.

    Returns:
        The combined, de-duplicated spec list in request order.

    Raises:
        ExperimentError: on unknown families or an empty case list.
    """
    specs: list[str] = list(cases or [])
    for family in families or []:
        get_family(family)  # validate before spending any build time
        specs.extend(f"{family}@{seed + index}" for index in range(count))
    deduplicated = list(dict.fromkeys(specs))
    if not deduplicated:
        raise ExperimentError(
            "sweep needs at least one case: pass scenario specs or --family"
        )
    return deduplicated


def report_key(study, experiment_ids: list[str] | None, scenario: str) -> str:
    """The content address of one case's suite report.

    Covers every stage key of the study (hence the whole configuration,
    engine choice included), the experiment list and the scenario label
    (recorded inside the report JSON), so any change that could alter the
    report bytes moves the key.
    """
    return fingerprint(
        "suite-report",
        *(study.stage_key(stage) for stage in Stage),
        tuple(experiment_ids) if experiment_ids else "all",
        scenario,
    )


def _case_slug(spec: str) -> str:
    """A filesystem-safe, collision-free file stem for one case spec."""
    clean = re.sub(r"[^A-Za-z0-9_.-]+", "-", spec).strip("-") or "case"
    return f"{clean}-{fingerprint(spec)[:8]}"


def _run_sweep_case(task: tuple[str, tuple[str, ...] | None, str]) -> tuple:
    """Process-pool entry point: run (or load) one sweep case.

    Args:
        task: ``(spec, experiment ids or None, cache directory)``.

    Returns:
        ``(spec, report JSON, seconds, cache stats, status)`` where status
        is ``"cached"`` when the report came from the disk tier.
    """
    spec, experiments, cache_dir = task
    started = time.perf_counter()
    cache = StageCache(disk=DiskStore(cache_dir))
    study = resolve_scenario(spec).study(cache=cache)
    ids = list(experiments) if experiments else None

    def build() -> str:
        return run_suite(study, ids, scenario=spec).to_json(include_timing=False)

    json_text = cache.get_or_build(
        "report",
        report_key(study, ids, spec),
        build,
        encode=lambda text: text.encode("utf-8"),
        decode=lambda data: data.decode("utf-8"),
    )
    status = "cached" if cache.stats_for("report").disk_hits else "completed"
    return (
        spec,
        json_text,
        time.perf_counter() - started,
        cache.stats_dict(),
        status,
    )


class _Manifest:
    """The sweep's crash-safe completion record."""

    def __init__(self, path: pathlib.Path, experiments: list[str] | None) -> None:
        self.path = path
        self.experiments = list(experiments) if experiments else None
        self.cases: dict[str, dict] = {}

    def load(self) -> None:
        """Read an existing manifest; ignored when absent or incompatible."""
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            not isinstance(data, dict)
            or data.get("version") != MANIFEST_VERSION
            or data.get("experiments") != self.experiments
        ):
            return
        cases = data.get("cases")
        if isinstance(cases, dict):
            self.cases = cases

    def record(self, spec: str, entry: dict) -> None:
        """Record one case and atomically rewrite the manifest file."""
        self.cases[spec] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "version": MANIFEST_VERSION,
                "experiments": self.experiments,
                "cases": self.cases,
            },
            indent=2,
        )
        fd, tmp_name = tempfile.mkstemp(
            prefix=".manifest.", suffix=".tmp", dir=self.path.parent
        )
        with os.fdopen(fd, "w") as handle:
            handle.write(payload + "\n")
        os.replace(tmp_name, self.path)

    def completed(self, spec: str, sweep_dir: pathlib.Path) -> str | None:
        """The report path of an already-completed case, when still valid."""
        entry = self.cases.get(spec)
        if not isinstance(entry, dict) or entry.get("status") != "done":
            return None
        report = entry.get("report")
        if not isinstance(report, str) or not (sweep_dir / report).is_file():
            return None
        return report


def run_sweep(
    specs: list[str],
    *,
    cache_dir: str | os.PathLike,
    sweep_dir: str | os.PathLike | None = None,
    experiments: list[str] | None = None,
    workers: int = 1,
    resume: bool = True,
    fail_after: int | None = None,
) -> SweepReport:
    """Run a list of scenario cases over one shared artifact store.

    Args:
        specs: scenario specs (presets or ``family@seed``), e.g. from
            :func:`expand_case_specs`.
        cache_dir: the shared disk tier directory (created on demand).
        sweep_dir: where the manifest and per-case reports live; defaults
            to ``<cache_dir>/sweeps/<digest>`` with the digest derived from
            the case list and experiment set, so re-running the same sweep
            resumes it.
        experiments: experiment ids each case runs (``None`` means all).
        workers: process-pool width; ``1`` runs in-process.
        resume: honour an existing manifest (skip completed cases).
        fail_after: abort (``SweepInterrupted``) after this many cases
            complete in this run — deterministic crash injection for the
            resume tests; also settable via :data:`FAIL_AFTER_ENV`.

    Returns:
        The :class:`SweepReport`; per-case JSON files live under
        ``<sweep_dir>/cases/``.

    Raises:
        ExperimentError: on unknown scenarios/families or bad ``workers``.
        SweepInterrupted: when ``fail_after`` fires; completed cases are
            already persisted in the manifest.
    """
    if workers < 1:
        raise ExperimentError(f"sweep workers must be >= 1, got {workers}")
    for spec in specs:
        resolve_scenario(spec)  # validate every case before starting work
    if fail_after is None:
        raw = os.environ.get(FAIL_AFTER_ENV, "")
        fail_after = int(raw) if raw.isdigit() else None

    cache_root = pathlib.Path(cache_dir)
    experiment_ids = sorted(experiments) if experiments else None
    if sweep_dir is None:
        digest = fingerprint(
            "sweep", tuple(specs), tuple(experiment_ids) if experiment_ids else "all"
        )
        sweep_root = cache_root / "sweeps" / digest
    else:
        sweep_root = pathlib.Path(sweep_dir)
    cases_dir = sweep_root / "cases"

    manifest = _Manifest(sweep_root / "manifest.json", experiment_ids)
    if resume:
        manifest.load()

    started = time.perf_counter()
    outcomes: dict[str, SweepCase] = {}
    pending: list[str] = []
    for spec in specs:
        report = manifest.completed(spec, sweep_root)
        if report is not None:
            outcomes[spec] = SweepCase(
                spec=spec, status="resumed", report_path=str(sweep_root / report)
            )
        else:
            pending.append(spec)

    finished_this_run = 0

    def record(spec: str, json_text: str, seconds: float, stats: dict, status: str):
        nonlocal finished_this_run
        relative = f"cases/{_case_slug(spec)}.json"
        path = sweep_root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_text + "\n")
        manifest.record(
            spec,
            {
                "status": "done",
                "report": relative,
                "result": status,
                "seconds": round(seconds, 4),
            },
        )
        outcomes[spec] = SweepCase(
            spec=spec,
            status=status,
            seconds=seconds,
            report_path=str(path),
            cache_stats=stats,
        )
        finished_this_run += 1
        if fail_after is not None and finished_this_run >= fail_after:
            raise SweepInterrupted(
                f"sweep interrupted after {finished_this_run} case(s) "
                f"(fail_after={fail_after}); resume with the same arguments"
            )

    tasks = [
        (spec, tuple(experiment_ids) if experiment_ids else None, str(cache_root))
        for spec in pending
    ]
    cases_dir.mkdir(parents=True, exist_ok=True)
    if workers == 1 or len(tasks) <= 1:
        for task in tasks:
            try:
                spec, json_text, seconds, stats, status = _run_sweep_case(task)
            except Exception as error:  # noqa: BLE001 - case isolation
                outcomes[task[0]] = SweepCase(
                    spec=task[0], status="failed", error=str(error)
                )
                continue
            record(spec, json_text, seconds, stats, status)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_sweep_case, task): task for task in tasks}
            remaining = set(futures)
            try:
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        task = futures[future]
                        try:
                            spec, json_text, seconds, stats, status = future.result()
                        except Exception as error:  # noqa: BLE001 - case isolation
                            outcomes[task[0]] = SweepCase(
                                spec=task[0], status="failed", error=str(error)
                            )
                            continue
                        record(spec, json_text, seconds, stats, status)
            except SweepInterrupted:
                # Drop every queued case immediately — only the handful of
                # in-flight ones finish (and are discarded), so the
                # interruption really is mid-sweep even with a deep queue.
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    return SweepReport(
        cases=[outcomes[spec] for spec in specs if spec in outcomes],
        cache_dir=str(cache_root),
        sweep_dir=str(sweep_root),
        experiments=experiment_ids,
        workers=workers,
        total_seconds=time.perf_counter() - started,
    )
