"""Unit tests for per-AS policies and the policy generator."""

import pytest

from repro.bgp.attributes import Community
from repro.exceptions import PolicyError
from repro.net.prefix import Prefix
from repro.simulation.policies import (
    ASPolicy,
    ATYPICAL_SCHEME,
    CommunityPlan,
    LocalPrefScheme,
    PolicyGenerator,
    PolicyParameters,
    scoped_community,
)
from repro.topology.generator import GeneratorParameters, InternetGenerator
from repro.topology.graph import Relationship


@pytest.fixture(scope="module")
def small_internet():
    return InternetGenerator(
        GeneratorParameters(seed=11, tier1_count=4, tier2_count=8, tier3_count=16, stub_count=80)
    ).generate()


@pytest.fixture(scope="module")
def assignment(small_internet):
    generator = PolicyGenerator(PolicyParameters(seed=5))
    return generator.generate(small_internet, looking_glass_ases=small_internet.tier1[:2])


class TestLocalPrefScheme:
    def test_default_is_typical(self):
        scheme = LocalPrefScheme()
        assert scheme.is_typical
        assert scheme.value_for(Relationship.CUSTOMER) > scheme.value_for(Relationship.PEER)
        assert scheme.value_for(Relationship.PEER) > scheme.value_for(Relationship.PROVIDER)

    def test_atypical_scheme(self):
        assert not ATYPICAL_SCHEME.is_typical

    def test_sibling_value(self):
        assert LocalPrefScheme().value_for(Relationship.SIBLING) == 105


class TestCommunityPlan:
    def test_ranges_by_relationship(self):
        plan = CommunityPlan(asn=12859)
        customer = plan.community_for(Relationship.CUSTOMER)
        peer = plan.community_for(Relationship.PEER)
        provider = plan.community_for(Relationship.PROVIDER)
        assert customer.asn == 12859
        assert plan.relationship_of(customer) is Relationship.CUSTOMER
        assert plan.relationship_of(peer) is Relationship.PEER
        assert plan.relationship_of(provider) is Relationship.PROVIDER

    def test_neighbor_index_stays_in_range(self):
        plan = CommunityPlan(asn=12859)
        for index in range(0, 300, 7):
            community = plan.community_for(Relationship.PEER, neighbor_index=index)
            assert plan.relationship_of(community) is Relationship.PEER

    def test_foreign_community_is_unknown(self):
        plan = CommunityPlan(asn=12859)
        assert plan.relationship_of(Community(3549, 1000)) is None

    def test_out_of_range_value_is_unknown(self):
        plan = CommunityPlan(asn=12859)
        assert plan.relationship_of(Community(12859, 9999)) is None


class TestASPolicy:
    def test_import_local_pref_priority(self):
        prefix = Prefix.parse("10.1.0.0/16")
        policy = ASPolicy(asn=1)
        policy.neighbor_local_pref[42] = 70
        policy.prefix_local_pref[prefix] = 60
        # Prefix override wins over neighbor override.
        assert policy.import_local_pref(42, Relationship.CUSTOMER, prefix) == 60
        # Neighbor override wins over the scheme.
        other = Prefix.parse("10.2.0.0/16")
        assert policy.import_local_pref(42, Relationship.CUSTOMER, other) == 70
        # Scheme applies otherwise.
        assert policy.import_local_pref(7, Relationship.PEER, other) == 100

    def test_providers_for_prefix_defaults_to_all(self):
        prefix = Prefix.parse("10.1.0.0/16")
        policy = ASPolicy(asn=1)
        assert policy.providers_for_prefix(prefix, [10, 20]) == {10, 20}

    def test_selective_announcement_subset(self):
        prefix = Prefix.parse("10.1.0.0/16")
        policy = ASPolicy(asn=1)
        policy.announce_to_providers[prefix] = frozenset({10})
        assert policy.providers_for_prefix(prefix, [10, 20]) == {10}
        assert policy.selectively_announced_prefixes([10, 20]) == {prefix}

    def test_full_announcement_is_not_selective(self):
        prefix = Prefix.parse("10.1.0.0/16")
        policy = ASPolicy(asn=1)
        policy.announce_to_providers[prefix] = frozenset({10, 20})
        assert policy.selectively_announced_prefixes([10, 20]) == set()

    def test_scoped_prefixes_are_selective(self):
        prefix = Prefix.parse("10.1.0.0/16")
        policy = ASPolicy(asn=1)
        policy.scoped_to_providers[prefix] = frozenset({10})
        assert prefix in policy.selectively_announced_prefixes([10, 20])
        assert policy.scoped_providers_for_prefix(prefix) == {10}

    def test_peer_withholding(self):
        prefix = Prefix.parse("10.1.0.0/16")
        policy = ASPolicy(asn=1)
        policy.withhold_from_peers[prefix] = frozenset({7})
        assert policy.peers_for_prefix(prefix, [7, 8]) == {8}
        assert policy.peers_for_prefix(Prefix.parse("10.2.0.0/16"), [7, 8]) == {7, 8}

    def test_scoped_community_helper(self):
        community = scoped_community(3549)
        assert community.asn == 3549


class TestPolicyParameters:
    def test_defaults_valid(self):
        PolicyParameters().validate()

    def test_rejects_bad_probability(self):
        with pytest.raises(PolicyError):
            PolicyParameters(selective_announcement_probability=2.0).validate()


class TestPolicyGenerator:
    def test_every_as_gets_a_policy(self, small_internet, assignment):
        assert set(assignment.policies) == set(small_internet.graph.ases())

    def test_most_schemes_are_typical(self, small_internet, assignment):
        typical = sum(
            1 for policy in assignment.policies.values() if policy.local_pref.is_typical
        )
        assert typical / len(assignment.policies) > 0.9

    def test_selective_origins_are_multihomed(self, small_internet, assignment):
        graph = small_internet.graph
        assert assignment.selective_origins, "expected some selective announcers"
        for origin, prefixes in assignment.selective_origins.items():
            assert len(graph.providers_of(origin)) >= 2
            assert prefixes
            policy = assignment.policies[origin]
            for prefix in prefixes:
                providers = policy.providers_for_prefix(prefix, graph.providers_of(origin))
                scoped = policy.scoped_providers_for_prefix(prefix)
                assert (providers | scoped) != set(graph.providers_of(origin)) or scoped

    def test_scoped_origins_subset_of_selective(self, assignment):
        for origin, prefixes in assignment.scoped_origins.items():
            assert origin in assignment.selective_origins
            assert prefixes <= assignment.selective_origins[origin]

    def test_prefix_overrides_only_at_looking_glass_ases(self, small_internet, assignment):
        looking_glass = set(small_internet.tier1[:2])
        for asn, policy in assignment.policies.items():
            if policy.prefix_local_pref:
                assert asn in looking_glass

    def test_tagging_ases_have_plans(self, assignment):
        assert assignment.tagging_ases
        for asn in assignment.tagging_ases:
            assert assignment.policies[asn].community_plan is not None
            assert assignment.policies[asn].community_plan.asn == asn

    def test_policy_for_unknown_as_returns_default(self, assignment):
        policy = assignment.policy_for(999_999)
        assert policy.asn == 999_999
        assert policy.is_typical

    def test_all_selectively_announced_union(self, assignment):
        union = assignment.all_selectively_announced()
        for prefixes in assignment.selective_origins.values():
            assert prefixes <= union

    def test_generation_is_deterministic(self, small_internet):
        first = PolicyGenerator(PolicyParameters(seed=5)).generate(small_internet)
        second = PolicyGenerator(PolicyParameters(seed=5)).generate(small_internet)
        assert first.selective_origins == second.selective_origins
        assert first.tagging_ases == second.tagging_ases
        assert first.atypical_ases == second.atypical_ases
