"""Benchmark: reproduce Table 6 (per-customer SA prefixes).

Paper shape: for customers sitting under all three studied providers, a
substantial share of their prefixes (17%-97%) are selectively announced.
"""


def test_bench_table6(benchmark, run_experiment):
    result = run_experiment(benchmark, "table6")
    assert result.rows
    for row in result.rows:
        assert 0 <= row[2] <= row[1]
    assert any(row[2] > 0 for row in result.rows)
