"""ASCII table rendering."""

from __future__ import annotations

from typing import Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """Format a percentage the way the paper's tables do (e.g. ``"97.6%"``)."""
    return f"{value:.{digits}f}%"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    Cells are stringified with ``str``; numeric cells are right-aligned,
    everything else left-aligned.
    """
    text_rows = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))

    def is_numeric(cell: str) -> bool:
        stripped = cell.rstrip("%")
        try:
            float(stripped)
        except ValueError:
            return False
        return True

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index in range(columns):
            cell = cells[index] if index < len(cells) else ""
            if is_numeric(cell):
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    for row in text_rows:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)
