"""Unit tests for the BGP decision process (paper Section 2.2.1)."""

import pytest

from repro.bgp.attributes import Origin
from repro.bgp.decision import DecisionProcess, DecisionStep
from repro.bgp.route import Route, RouteSource
from repro.exceptions import PolicyError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

PREFIX = Prefix.parse("10.1.0.0/16")


def route(path="1 2", **kwargs):
    return Route(prefix=PREFIX, as_path=ASPath.parse(path), **kwargs)


@pytest.fixture
def decision():
    return DecisionProcess()


class TestPairwise:
    def test_local_pref_wins_over_shorter_path(self, decision):
        customer = route("3 4 5 6", local_pref=110)
        peer = route("7 8", local_pref=90)
        comparison = decision.compare(customer, peer)
        assert comparison.winner is customer
        assert comparison.step is DecisionStep.LOCAL_PREF

    def test_shorter_path_breaks_equal_local_pref(self, decision):
        short = route("1 9")
        long = route("2 3 9")
        comparison = decision.compare(long, short)
        assert comparison.winner is short
        assert comparison.step is DecisionStep.AS_PATH_LENGTH

    def test_origin_breaks_tie(self, decision):
        igp = route("1 9", origin=Origin.IGP)
        incomplete = route("2 9", origin=Origin.INCOMPLETE)
        comparison = decision.compare(incomplete, igp)
        assert comparison.winner is igp
        assert comparison.step is DecisionStep.ORIGIN

    def test_med_only_compared_same_next_hop(self, decision):
        low_med = route("1 9", med=10)
        high_med = route("1 9", med=50, router_id=2)
        comparison = decision.compare(high_med, low_med)
        assert comparison.winner is low_med
        assert comparison.step is DecisionStep.MED

    def test_med_ignored_across_different_next_hops(self, decision):
        from_as1 = route("1 9", med=50)
        from_as2 = route("2 9", med=10)
        comparison = decision.compare(from_as1, from_as2)
        assert comparison.step is not DecisionStep.MED

    def test_always_compare_med_option(self):
        decision = DecisionProcess(compare_med_only_same_neighbor=False)
        from_as1 = route("1 9", med=50)
        from_as2 = route("2 9", med=10)
        comparison = decision.compare(from_as1, from_as2)
        assert comparison.winner is from_as2
        assert comparison.step is DecisionStep.MED

    def test_ebgp_preferred_over_ibgp(self, decision):
        ebgp = route("1 9", source=RouteSource.EBGP)
        ibgp = route("2 9", source=RouteSource.IBGP)
        comparison = decision.compare(ibgp, ebgp)
        assert comparison.winner is ebgp
        assert comparison.step is DecisionStep.EBGP_OVER_IBGP

    def test_igp_metric_tiebreak(self, decision):
        near = route("1 9", igp_metric=5)
        far = route("2 9", igp_metric=50)
        comparison = decision.compare(far, near)
        assert comparison.winner is near
        assert comparison.step is DecisionStep.IGP_METRIC

    def test_router_id_last_resort(self, decision):
        a = route("1 9", router_id=1)
        b = route("2 9", router_id=2)
        comparison = decision.compare(b, a)
        assert comparison.winner is a
        assert comparison.step is DecisionStep.ROUTER_ID

    def test_identical_routes_tie(self, decision):
        a = route("1 9")
        b = route("1 9")
        comparison = decision.compare(a, b)
        assert comparison.winner is None
        assert comparison.step is DecisionStep.TIE

    def test_prefer_returns_left_on_tie(self, decision):
        a = route("1 9")
        b = route("1 9")
        assert decision.prefer(a, b) is a

    def test_rejects_different_prefixes(self, decision):
        a = route("1 9")
        b = Route(prefix=Prefix.parse("10.2.0.0/16"), as_path=ASPath.parse("1 9"))
        with pytest.raises(PolicyError):
            decision.compare(a, b)


class TestSelection:
    def test_select_best_empty(self, decision):
        assert decision.select_best([]) is None

    def test_select_best_single(self, decision):
        only = route("1 9")
        assert decision.select_best([only]) is only

    def test_select_best_prefers_highest_local_pref(self, decision):
        candidates = [
            route("1 9", local_pref=80),
            route("2 3 9", local_pref=110),
            route("4 9", local_pref=90),
        ]
        assert decision.select_best(candidates) is candidates[1]

    def test_selection_is_order_independent_when_strict(self, decision):
        a = route("1 9", local_pref=80)
        b = route("2 9", local_pref=110)
        assert decision.select_best([a, b]) is b
        assert decision.select_best([b, a]) is b

    def test_deciding_step_reports_local_pref(self, decision):
        candidates = [route("1 2 3 9", local_pref=110), route("4 9", local_pref=90)]
        assert decision.deciding_step(candidates) is DecisionStep.LOCAL_PREF

    def test_deciding_step_reports_as_path(self, decision):
        candidates = [route("1 9"), route("4 5 9")]
        assert decision.deciding_step(candidates) is DecisionStep.AS_PATH_LENGTH

    def test_deciding_step_single_route_is_none(self, decision):
        assert decision.deciding_step([route("1 9")]) is None
