"""The fast propagation core: compiled topology + interned flat-graph engine.

The legacy :class:`~repro.simulation.propagation.PropagationEngine` resolves
policies, relationships and export rules per message, reallocating a
:class:`~repro.bgp.route.Route` dataclass per edge.  This subpackage splits
that work into two phases:

* :mod:`repro.simulation.fastpath.compile` — compile the annotated AS graph
  plus the policy assignment into a :class:`CompiledTopology` of dense
  integer AS ids, flat CSR-style adjacency arrays, per-edge import decisions
  (LOCAL_PREF, community tag) and pre-sorted per-relationship export target
  tuples.
* :mod:`repro.simulation.fastpath.engine` — the
  :class:`FastPropagationEngine`, which replays the exact message schedule of
  the legacy engine over the compiled arrays with interned AS paths and
  community sets, an O(1) challenge-the-incumbent best-route update, and an
  optional per-prefix process-pool fan-out (prefixes are independent).
* :mod:`repro.simulation.fastpath.shm` — the zero-copy parallel path:
  publishes the compiled topology into a ``multiprocessing.shared_memory``
  segment (or attaches a cached ``compiled-topology`` store artifact via
  mmap) and reconstructs a read-only :class:`SharedTopologyView` over the
  shared buffer, so pool workers attach by name instead of unpickling.

The fast engine is a drop-in replacement: for the same inputs it produces a
:class:`~repro.simulation.propagation.SimulationResult` with identical
observed tables, message counts and truncated prefixes (asserted by
``tests/simulation/test_fastpath_equivalence.py`` across every registered
scenario and worker counts {1, 2, 4}).
"""

from repro.simulation.fastpath.compile import CompiledTopology, compile_topology
from repro.simulation.fastpath.engine import FastPropagationEngine
from repro.simulation.fastpath.shm import (
    SharedTopologyHandle,
    SharedTopologyView,
    attach,
    publish,
)

__all__ = [
    "CompiledTopology",
    "FastPropagationEngine",
    "SharedTopologyHandle",
    "SharedTopologyView",
    "attach",
    "compile_topology",
    "publish",
]
