"""The committed lint baseline: known findings with rationales, ratcheted.

A baseline entry acknowledges one finding (matched by its line-insensitive
:attr:`~repro.devtools.model.Finding.key`) and records *why* it is
acceptable.  ``python -m repro lint --baseline`` then enforces a ratchet:

* findings not in the baseline fail the run (new debt is rejected);
* baseline entries matching no finding fail the run (the debt was paid —
  delete the entry, the baseline only shrinks);
* entries with an empty rationale fail the run (an acknowledgement without
  a reason is not an acknowledgement).

The file format is deliberately boring JSON so diffs review well::

    {"version": 1, "entries": [
        {"rule": "POOL002", "path": "src/...", "message": "...",
         "rationale": "initializer-owned; set once per worker"}
    ]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.model import Finding

#: The only baseline file format version this reader understands.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged finding with its rationale.

    Attributes:
        rule: the acknowledged rule id.
        path: repo-relative posix path of the finding.
        message: the finding's message (line-insensitive identity part).
        rationale: why this finding is acceptable; must be non-empty.
    """

    rule: str
    path: str
    message: str
    rationale: str

    @property
    def key(self) -> str:
        """The matching key, mirroring :attr:`Finding.key`."""
        return f"{self.rule}:{self.path}:{self.message}"

    def to_dict(self) -> dict:
        """A JSON-ready dict with a stable key order."""
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "rationale": self.rationale,
        }


@dataclass
class Baseline:
    """A set of acknowledged findings loaded from (or written to) disk.

    Attributes:
        entries: the acknowledged findings, in file order.
    """

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file.

        Args:
            path: the baseline JSON file.

        Returns:
            The parsed baseline; an empty one when the file is absent.

        Raises:
            ValueError: when the file is malformed or has a foreign version.
        """
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"baseline {path} is not valid JSON: {error}") from error
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} must be a JSON object with version {BASELINE_VERSION}"
            )
        raw_entries = payload.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ValueError(f"baseline {path}: 'entries' must be a list")
        entries = []
        for index, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise ValueError(f"baseline {path}: entry {index} is not an object")
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        message=str(raw["message"]),
                        rationale=str(raw.get("rationale", "")),
                    )
                )
            except KeyError as error:
                raise ValueError(
                    f"baseline {path}: entry {index} misses key {error}"
                ) from error
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], list[str]]:
        """Split findings into unacknowledged ones plus baseline errors.

        Matching is by key with multiplicity: two identical findings need
        two identical entries — otherwise a duplicated hazard could hide
        behind a single acknowledgement.

        Args:
            findings: the run's findings.

        Returns:
            ``(remaining findings, baseline errors)`` where errors cover
            stale entries (the ratchet) and empty rationales.
        """
        budget: dict[str, int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + 1
        remaining: list[Finding] = []
        for finding in findings:
            if budget.get(finding.key, 0) > 0:
                budget[finding.key] -= 1
            else:
                remaining.append(finding)
        errors: list[str] = []
        for entry in self.entries:
            if not entry.rationale.strip():
                errors.append(
                    f"entry for {entry.key} has no rationale; explain why it is acceptable"
                )
        seen_stale: dict[str, int] = {}
        for entry in self.entries:
            leftover = budget.get(entry.key, 0)
            reported = seen_stale.get(entry.key, 0)
            if reported < leftover:
                seen_stale[entry.key] = reported + 1
                errors.append(
                    f"stale entry {entry.key} matches no current finding; "
                    "remove it (the baseline only shrinks)"
                )
        return remaining, errors

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """A baseline acknowledging the given findings.

        Rationales of entries surviving from ``previous`` are preserved;
        new entries get an empty rationale the author must fill in before
        ``--baseline`` mode accepts the file.

        Args:
            findings: the findings to acknowledge.
            previous: an existing baseline whose rationales carry over.

        Returns:
            The new baseline, sorted by key for stable diffs.
        """
        rationales: dict[str, list[str]] = {}
        if previous is not None:
            for entry in previous.entries:
                rationales.setdefault(entry.key, []).append(entry.rationale)
        entries = []
        for finding in sorted(findings, key=lambda f: f.key):
            pool = rationales.get(finding.key, [])
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    rationale=pool.pop(0) if pool else "",
                )
            )
        return cls(entries=entries)
