"""Persistence of SA prefixes over time (paper Section 5.1.4, Figs. 6 and 7).

Given a chronological sequence of snapshots (daily over a month, or 2-hourly
over a day), the analysis tracks, for one provider:

* the number of prefixes and of SA prefixes in each snapshot (Fig. 6), and
* per prefix, its *uptime* (number of snapshots in which it appears) and its
  *SA uptime* (number of snapshots in which it is an SA prefix); prefixes
  whose SA uptime is lower than their uptime have shifted from SA to non-SA
  at some point (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.export_policy import ExportPolicyAnalyzer
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.simulation.timeline import Snapshot
from repro.topology.graph import AnnotatedASGraph


@dataclass
class PersistenceSeries:
    """Fig. 6 style series for one provider.

    Attributes:
        provider: the provider analysed.
        snapshot_indices: the snapshot numbers.
        all_prefix_counts: prefixes in the provider's table per snapshot.
        sa_prefix_counts: SA prefixes per snapshot.
    """

    provider: ASN
    snapshot_indices: list[int] = field(default_factory=list)
    all_prefix_counts: list[int] = field(default_factory=list)
    sa_prefix_counts: list[int] = field(default_factory=list)

    def as_rows(self) -> list[tuple[int, int, int]]:
        """(snapshot, all prefixes, SA prefixes) rows."""
        return list(
            zip(self.snapshot_indices, self.all_prefix_counts, self.sa_prefix_counts)
        )


@dataclass
class UptimeDistribution:
    """Fig. 7 style distribution for one provider.

    Attributes:
        provider: the provider analysed.
        snapshot_count: number of snapshots examined.
        uptime: per prefix, the number of snapshots it appears in.
        sa_uptime: per prefix, the number of snapshots it is an SA prefix in.
    """

    provider: ASN
    snapshot_count: int = 0
    uptime: dict[Prefix, int] = field(default_factory=dict)
    sa_uptime: dict[Prefix, int] = field(default_factory=dict)

    def ever_sa_prefixes(self) -> set[Prefix]:
        """Prefixes that were an SA prefix in at least one snapshot."""
        return {prefix for prefix, count in self.sa_uptime.items() if count > 0}

    def remaining_sa_prefixes(self) -> set[Prefix]:
        """Prefixes that were SA in *every* snapshot they appeared in."""
        return {
            prefix
            for prefix in self.ever_sa_prefixes()
            if self.sa_uptime[prefix] == self.uptime.get(prefix, 0)
        }

    def shifting_prefixes(self) -> set[Prefix]:
        """Prefixes that shifted from SA to non-SA during the period."""
        return self.ever_sa_prefixes() - self.remaining_sa_prefixes()

    def histogram(self) -> list[tuple[int, int, int]]:
        """Fig. 7 histogram rows: (uptime, remaining-as-SA count, shifting count)."""
        remaining = self.remaining_sa_prefixes()
        shifting = self.shifting_prefixes()
        rows: list[tuple[int, int, int]] = []
        for uptime_value in range(1, self.snapshot_count + 1):
            remaining_count = sum(
                1 for prefix in remaining if self.uptime.get(prefix) == uptime_value
            )
            shifting_count = sum(
                1 for prefix in shifting if self.uptime.get(prefix) == uptime_value
            )
            rows.append((uptime_value, remaining_count, shifting_count))
        return rows

    @property
    def percent_shifting(self) -> float:
        """Fraction of ever-SA prefixes that shifted to non-SA at some point."""
        ever = self.ever_sa_prefixes()
        if not ever:
            return 0.0
        return 100.0 * len(self.shifting_prefixes()) / len(ever)


class PersistenceAnalyzer:
    """Computes the Fig. 6 series and Fig. 7 distributions from snapshots."""

    def __init__(self, relationships: AnnotatedASGraph) -> None:
        self.relationships = relationships
        self._export_analyzer = ExportPolicyAnalyzer(relationships)

    def series_for_provider(
        self, snapshots: list[Snapshot], provider: ASN
    ) -> PersistenceSeries:
        """Fig. 6: per-snapshot totals for one provider."""
        series = PersistenceSeries(provider=provider)
        for snapshot in snapshots:
            table = snapshot.result.table_of(provider)
            report = self._export_analyzer.find_sa_prefixes(provider, table)
            series.snapshot_indices.append(snapshot.index)
            series.all_prefix_counts.append(len(table))
            series.sa_prefix_counts.append(report.sa_prefix_count)
        return series

    def uptime_distribution(
        self, snapshots: list[Snapshot], provider: ASN
    ) -> UptimeDistribution:
        """Fig. 7: uptime and SA-uptime of every prefix seen at the provider."""
        distribution = UptimeDistribution(provider=provider, snapshot_count=len(snapshots))
        for snapshot in snapshots:
            table = snapshot.result.table_of(provider)
            report = self._export_analyzer.find_sa_prefixes(provider, table)
            sa_set = report.sa_prefix_set()
            for prefix in table.prefixes():
                distribution.uptime[prefix] = distribution.uptime.get(prefix, 0) + 1
                if prefix in sa_set:
                    distribution.sa_uptime[prefix] = distribution.sa_uptime.get(prefix, 0) + 1
        return distribution
