"""Tests for the content-addressed stage cache."""

from repro.session import StageCache, fingerprint
from repro.topology.generator import GeneratorParameters


class TestFingerprint:
    def test_deterministic(self):
        params = GeneratorParameters(seed=1)
        assert fingerprint("topology", params) == fingerprint("topology", params)

    def test_distinguishes_parameters(self):
        assert fingerprint("topology", GeneratorParameters(seed=1)) != fingerprint(
            "topology", GeneratorParameters(seed=2)
        )

    def test_distinguishes_stage_names(self):
        params = GeneratorParameters()
        assert fingerprint("topology", params) != fingerprint("policies", params)


class TestStageCache:
    def test_miss_then_hit(self):
        cache = StageCache()
        built = []

        def builder():
            built.append(1)
            return "artifact"

        assert cache.get_or_build("topology", "k1", builder) == "artifact"
        assert cache.get_or_build("topology", "k1", builder) == "artifact"
        assert built == [1]
        stats = cache.stats_for("topology")
        assert (stats.misses, stats.hits, stats.builds) == (1, 1, 1)

    def test_distinct_keys_build_separately(self):
        cache = StageCache()
        assert cache.get_or_build("s", "a", lambda: 1) == 1
        assert cache.get_or_build("s", "b", lambda: 2) == 2
        assert len(cache) == 2
        assert cache.stats_for("s").misses == 2

    def test_per_stage_stats(self):
        cache = StageCache()
        cache.get_or_build("topology", "k", lambda: 1)
        cache.get_or_build("policies", "k2", lambda: 2)
        assert cache.stats_for("topology").misses == 1
        assert cache.stats_for("policies").misses == 1
        assert cache.stats_for("never-touched").misses == 0

    def test_concurrent_same_key_builds_once(self):
        import threading

        cache = StageCache()
        built = []
        release = threading.Event()

        def slow_builder():
            release.wait(timeout=5)
            built.append(1)
            return "artifact"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_build("s", "k", slow_builder)
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=10)

        assert results == ["artifact"] * 4
        assert built == [1]
        stats = cache.stats_for("s")
        assert (stats.misses, stats.hits) == (1, 3)

    def test_failed_build_retried_by_waiters(self):
        cache = StageCache()
        attempts = []

        def flaky_builder():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first build fails")
            return "artifact"

        import pytest as _pytest

        with _pytest.raises(RuntimeError):
            cache.get_or_build("s", "k", flaky_builder)
        assert cache.get_or_build("s", "k", flaky_builder) == "artifact"
        assert len(attempts) == 2

    def test_clear_resets_everything(self):
        cache = StageCache()
        cache.get_or_build("s", "k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats_for("s").misses == 0
