"""Unit tests for repro.net.allocator."""

import pytest

from repro.exceptions import PrefixError
from repro.net.allocator import AddressAllocator
from repro.net.prefix import Prefix


class TestDirectAllocation:
    def test_first_allocation_starts_at_base(self):
        allocator = AddressAllocator(base="10.0.0.0")
        block = allocator.allocate(owner=7018, length=16)
        assert block.prefix == Prefix.parse("10.0.0.0/16")
        assert block.owner == 7018
        assert not block.is_provider_assigned

    def test_allocations_do_not_overlap(self):
        allocator = AddressAllocator()
        blocks = [allocator.allocate(owner=asn, length=20) for asn in range(1, 40)]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.prefix.contains(b.prefix)
                assert not b.prefix.contains(a.prefix)

    def test_mixed_lengths_stay_canonical_and_disjoint(self):
        allocator = AddressAllocator()
        a = allocator.allocate(owner=1, length=24)
        b = allocator.allocate(owner=2, length=16)
        c = allocator.allocate(owner=3, length=24)
        for x, y in [(a, b), (b, c), (a, c)]:
            assert not x.prefix.contains(y.prefix)
            assert not y.prefix.contains(x.prefix)

    def test_allocate_many(self):
        allocator = AddressAllocator()
        blocks = allocator.allocate_many(owner=701, length=22, count=5)
        assert len(blocks) == 5
        assert all(block.owner == 701 for block in blocks)

    def test_rejects_unreasonable_length(self):
        allocator = AddressAllocator()
        with pytest.raises(PrefixError):
            allocator.allocate(owner=1, length=4)
        with pytest.raises(PrefixError):
            allocator.allocate(owner=1, length=32)


class TestSuballocation:
    def test_suballocation_is_inside_parent(self):
        allocator = AddressAllocator()
        parent = allocator.allocate(owner=7018, length=16)
        child = allocator.suballocate(parent, owner=6280, length=24)
        assert parent.prefix.contains(child.prefix)
        assert child.parent_owner == 7018
        assert child.is_provider_assigned

    def test_suballocations_do_not_overlap(self):
        allocator = AddressAllocator()
        parent = allocator.allocate(owner=1, length=20)
        children = [allocator.suballocate(parent, owner=100 + i, length=24) for i in range(4)]
        for i, a in enumerate(children):
            for b in children[i + 1:]:
                assert a.prefix != b.prefix
                assert not a.prefix.contains(b.prefix)

    def test_suballocate_rejects_shorter_length(self):
        allocator = AddressAllocator()
        parent = allocator.allocate(owner=1, length=20)
        with pytest.raises(PrefixError):
            allocator.suballocate(parent, owner=2, length=20)

    def test_suballocate_exhaustion(self):
        allocator = AddressAllocator()
        parent = allocator.allocate(owner=1, length=23)
        allocator.suballocate(parent, owner=2, length=24)
        allocator.suballocate(parent, owner=3, length=24)
        with pytest.raises(PrefixError):
            allocator.suballocate(parent, owner=4, length=24)


class TestQueries:
    def test_blocks_and_prefixes_of(self):
        allocator = AddressAllocator()
        allocator.allocate(owner=1, length=20)
        allocator.allocate(owner=2, length=20)
        allocator.allocate(owner=1, length=22)
        assert len(allocator.blocks_of(1)) == 2
        assert len(allocator.prefixes_of(2)) == 1

    def test_owner_of_most_specific(self):
        allocator = AddressAllocator()
        parent = allocator.allocate(owner=1, length=16)
        child = allocator.suballocate(parent, owner=2, length=24)
        assert allocator.owner_of(child.prefix) == 2
        assert allocator.owner_of(parent.prefix) == 1

    def test_owner_of_unknown(self):
        allocator = AddressAllocator()
        assert allocator.owner_of(Prefix.parse("200.0.0.0/24")) is None

    def test_provider_assigned_blocks(self):
        allocator = AddressAllocator()
        parent = allocator.allocate(owner=1, length=16)
        allocator.suballocate(parent, owner=2, length=24)
        assigned = list(allocator.provider_assigned_blocks())
        assert len(assigned) == 1
        assert assigned[0].owner == 2

    def test_len(self):
        allocator = AddressAllocator()
        allocator.allocate(owner=1, length=24)
        assert len(allocator) == 1
