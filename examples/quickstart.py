#!/usr/bin/env python3
"""Quickstart: detect a selectively announced (SA) prefix.

Recreates the paper's Fig. 5 situation end to end with the public API:

1. build a five-AS annotated Internet where AS6280 is multihomed to AS852
   (a customer of AS1) and AS13768 (a customer of AS3549),
2. configure AS6280 to announce its prefix only toward AS13768,
3. propagate routes, and
4. run the Fig. 4 algorithm from AS1's viewpoint — AS1 reaches its indirect
   customer's prefix via its *peer* AS3549, so the prefix is reported as an
   SA prefix.

Run with::

    python examples/quickstart.py
"""

from repro.core.export_policy import ExportPolicyAnalyzer
from repro.reporting.tables import ascii_table
from repro.simulation.scenario import figure5_scenario


def main() -> None:
    scenario = figure5_scenario()
    result = scenario.run()

    provider = scenario.focus_provider
    table = result.table_of(provider)

    print(f"Routing table observed at AS{provider}:")
    rows = []
    for route in table.best_routes():
        rows.append(
            [str(route.prefix), str(route.as_path), str(route.neighbor_kind), route.local_pref]
        )
    print(ascii_table(["prefix", "AS path", "learned from", "LOCAL_PREF"], rows))
    print()

    analyzer = ExportPolicyAnalyzer(scenario.internet.graph)
    report = analyzer.find_sa_prefixes(provider, table)
    print(
        f"AS{provider} has {report.customer_prefix_count} customer-originated "
        f"prefix(es), of which {report.sa_prefix_count} are selectively announced:"
    )
    for item in report.sa_prefixes:
        customer_path = " -> ".join(f"AS{asn}" for asn in item.customer_path)
        print(
            f"  {item.prefix}: originated by AS{item.origin_as}, best route via "
            f"{item.next_hop_relationship} AS{item.next_hop_as} "
            f"although the customer path {customer_path} exists"
        )


if __name__ == "__main__":
    main()
