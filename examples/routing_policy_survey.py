#!/usr/bin/env python3
"""Survey the routing policies of a synthetic Internet (the paper in miniature).

Builds the small study dataset and walks through the paper's questions:

* import policies — how typical is LOCAL_PREF assignment, and how consistent
  is it with the next-hop AS (Tables 2/3, Fig. 2)?
* export policies toward providers — how prevalent are SA prefixes at the
  Tier-1s, and what causes them (Tables 5, 8, 9)?
* export policies toward peers — do peers announce everything (Table 10)?

Run with::

    python examples/routing_policy_survey.py
"""

from repro.core.causes import CauseAnalyzer
from repro.core.consistency import ConsistencyAnalyzer
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.core.import_policy import ImportPolicyAnalyzer
from repro.core.peer_export import PeerExportAnalyzer
from repro.reporting.tables import ascii_table, format_percent
from repro.session import get_scenario


def main() -> None:
    dataset = get_scenario("small").study().dataset()
    graph = dataset.ground_truth_graph
    glasses = [dataset.looking_glass_of(asn) for asn in dataset.looking_glass_ases]

    # -- import policies -----------------------------------------------------
    import_analyzer = ImportPolicyAnalyzer(graph)
    consistency_analyzer = ConsistencyAnalyzer()
    rows = []
    for glass in glasses:
        typicality = import_analyzer.analyze_looking_glass(glass)
        consistency = consistency_analyzer.analyze_looking_glass(glass)
        rows.append(
            [
                f"AS{glass.asn}",
                typicality.comparable_prefixes,
                format_percent(typicality.percent_typical),
                format_percent(consistency.percent_consistent),
            ]
        )
    print("Import policies (LOCAL_PREF) at the Looking Glass ASes:")
    print(ascii_table(
        ["AS", "comparable prefixes", "% typical", "% next-hop-consistent"], rows
    ))
    print()

    # -- export policies toward providers -----------------------------------------
    export_analyzer = ExportPolicyAnalyzer(graph)
    cause_analyzer = CauseAnalyzer(graph)
    providers = dataset.providers_under_study(3)
    rows = []
    for provider in providers:
        table = dataset.result.table_of(provider)
        report = export_analyzer.find_sa_prefixes(provider, table)
        causes = cause_analyzer.cause_breakdown(report, table)
        homing = cause_analyzer.homing_breakdown(report)
        rows.append(
            [
                f"AS{provider}",
                report.customer_prefix_count,
                report.sa_prefix_count,
                format_percent(report.percent_sa),
                causes.selective_count,
                format_percent(homing.percent_multihomed, 0),
            ]
        )
    print("Export policies toward providers (SA prefixes at the largest Tier-1s):")
    print(ascii_table(
        ["provider", "customer prefixes", "SA prefixes", "% SA",
         "selective announcing", "% multihomed origins"],
        rows,
    ))
    print()

    # -- export policies toward peers ---------------------------------------------------
    peer_analyzer = PeerExportAnalyzer(graph)
    rows = []
    for provider in providers:
        report = peer_analyzer.analyze(
            provider,
            dataset.result.table_of(provider),
            originated=dataset.internet.originated,
        )
        rows.append(
            [f"AS{provider}", report.peer_count, format_percent(report.percent_announcing, 0)]
        )
    print("Export policies toward peers:")
    print(ascii_table(["AS", "# peers", "% peers announcing all their prefixes"], rows))


if __name__ == "__main__":
    main()
