"""Persistence paths (Timeline, Figs. 6/7) on sampled non-preset scenarios.

The golden persistence test runs on one fixed small Internet; here the
timeline and the snapshot-sharing ``analysis.persistence`` fast path are
exercised on scenario-family samples — topologies nobody hand-picked —
under *both* propagation engines, asserting (a) the engines produce
identical snapshot series and (b) the snapshot-sharing analysis equals the
legacy :class:`~repro.core.persistence.PersistenceAnalyzer` on every one.
"""

from collections import Counter

import pytest

from repro.analysis.persistence import SnapshotSACore, persistence_series, uptime_distribution
from repro.core.persistence import PersistenceAnalyzer
from repro.session.scenarios import get_family
from repro.simulation.policies import PolicyGenerator
from repro.simulation.timeline import Timeline, TimelineParameters
from repro.topology.generator import InternetGenerator

#: Two sampled (family, seed) scenarios — deliberately not presets.
SAMPLES = (("multihoming", 3), ("peering-density", 5))

SNAPSHOT_COUNT = 4

_CACHE: dict[tuple[str, int], dict] = {}


def _timeline_case(family: str, seed: int) -> dict:
    """Internet, provider and both engines' snapshot runs for one sample."""
    case = _CACHE.get((family, seed))
    if case is None:
        config = get_family(family).sample(seed)
        internet = InternetGenerator(config.topology).generate()
        assignment = PolicyGenerator(config.policy).generate(internet)
        provider = max(internet.tier1, key=internet.graph.degree)
        parameters = TimelineParameters(
            snapshot_count=SNAPSHOT_COUNT,
            churn_probability=0.2,
            appear_probability=0.05,
            disappear_probability=0.05,
            seed=seed,
        )
        snapshots = {
            engine: Timeline(
                internet,
                assignment,
                observed_ases=[provider],
                parameters=parameters,
                engine=engine,
            ).run()
            for engine in ("fast", "legacy")
        }
        case = _CACHE[(family, seed)] = {
            "internet": internet,
            "provider": provider,
            "snapshots": snapshots,
        }
    return case


def _snapshot_content(snapshot, provider):
    table = snapshot.result.table_of(provider)
    return {
        entry.prefix: (Counter(entry.routes), entry.best) for entry in table.entries()
    }


@pytest.mark.parametrize("family,seed", SAMPLES)
def test_fast_and_legacy_timelines_agree(family, seed):
    case = _timeline_case(family, seed)
    fast, legacy = case["snapshots"]["fast"], case["snapshots"]["legacy"]
    assert len(fast) == len(legacy) == SNAPSHOT_COUNT
    for fast_snapshot, legacy_snapshot in zip(fast, legacy):
        assert fast_snapshot.index == legacy_snapshot.index
        assert fast_snapshot.changed_origins == legacy_snapshot.changed_origins
        assert _snapshot_content(fast_snapshot, case["provider"]) == _snapshot_content(
            legacy_snapshot, case["provider"]
        )


@pytest.mark.parametrize("family,seed", SAMPLES)
def test_fig6_series_matches_legacy_analyzer(family, seed):
    case = _timeline_case(family, seed)
    graph = case["internet"].graph
    snapshots = case["snapshots"]["fast"]
    provider = case["provider"]
    legacy = PersistenceAnalyzer(graph).series_for_provider(snapshots, provider)
    assert persistence_series(snapshots, provider, graph) == legacy
    assert legacy.snapshot_indices == list(range(SNAPSHOT_COUNT))


@pytest.mark.parametrize("family,seed", SAMPLES)
def test_fig7_uptime_matches_legacy_analyzer(family, seed):
    case = _timeline_case(family, seed)
    graph = case["internet"].graph
    snapshots = case["snapshots"]["fast"]
    provider = case["provider"]
    legacy = PersistenceAnalyzer(graph).uptime_distribution(snapshots, provider)
    distribution = uptime_distribution(snapshots, provider, graph)
    assert distribution == legacy
    assert all(1 <= count <= SNAPSHOT_COUNT for count in distribution.uptime.values())
    assert all(
        distribution.sa_uptime[prefix] <= distribution.uptime[prefix]
        for prefix in distribution.sa_uptime
    )


@pytest.mark.parametrize("family,seed", SAMPLES)
def test_snapshot_sharing_core_is_equivalent_to_fresh_analyzers(family, seed):
    """One shared SnapshotSACore across Figs. 6 and 7 changes nothing."""
    case = _timeline_case(family, seed)
    graph = case["internet"].graph
    snapshots = case["snapshots"]["fast"]
    provider = case["provider"]
    core = SnapshotSACore(graph)
    assert persistence_series(snapshots, provider, graph, core=core) == (
        persistence_series(snapshots, provider, graph)
    )
    assert uptime_distribution(snapshots, provider, graph, core=core) == (
        uptime_distribution(snapshots, provider, graph)
    )
