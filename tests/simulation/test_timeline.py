"""Tests for the persistence timeline and the Looking Glass views."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.collector import LookingGlass
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.propagation import PropagationEngine
from repro.simulation.timeline import Timeline, TimelineParameters
from repro.topology.generator import GeneratorParameters, InternetGenerator


@pytest.fixture(scope="module")
def tiny_internet():
    return InternetGenerator(
        GeneratorParameters(seed=13, tier1_count=3, tier2_count=6, tier3_count=10, stub_count=40)
    ).generate()


@pytest.fixture(scope="module")
def assignment(tiny_internet):
    return PolicyGenerator(PolicyParameters(seed=21)).generate(tiny_internet)


@pytest.fixture(scope="module")
def result(tiny_internet, assignment):
    return PropagationEngine(
        tiny_internet, assignment, observed_ases=tiny_internet.tier1
    ).run()


class TestTimeline:
    def test_snapshot_count(self, tiny_internet, assignment):
        timeline = Timeline(
            tiny_internet,
            assignment,
            observed_ases=tiny_internet.tier1[:1],
            parameters=TimelineParameters(snapshot_count=4, seed=2),
        )
        snapshots = timeline.run()
        assert len(snapshots) == 4
        assert [s.index for s in snapshots] == [0, 1, 2, 3]

    def test_first_snapshot_has_no_changes(self, tiny_internet, assignment):
        timeline = Timeline(
            tiny_internet,
            assignment,
            observed_ases=tiny_internet.tier1[:1],
            parameters=TimelineParameters(snapshot_count=2, seed=2),
        )
        snapshots = timeline.run()
        assert snapshots[0].changed_origins == set()

    def test_churn_changes_announcements_over_time(self, tiny_internet, assignment):
        timeline = Timeline(
            tiny_internet,
            assignment,
            observed_ases=tiny_internet.tier1[:1],
            parameters=TimelineParameters(
                snapshot_count=6, churn_probability=0.9, appear_probability=0.2, seed=3
            ),
        )
        snapshots = timeline.run()
        assert any(s.changed_origins for s in snapshots[1:])

    def test_base_assignment_not_mutated(self, tiny_internet, assignment):
        before = {
            origin: set(prefixes)
            for origin, prefixes in assignment.selective_origins.items()
        }
        Timeline(
            tiny_internet,
            assignment,
            observed_ases=tiny_internet.tier1[:1],
            parameters=TimelineParameters(snapshot_count=3, churn_probability=1.0, seed=4),
        ).run()
        after = {
            origin: set(prefixes)
            for origin, prefixes in assignment.selective_origins.items()
        }
        assert before == after

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            TimelineParameters(snapshot_count=0).validate()
        with pytest.raises(SimulationError):
            TimelineParameters(churn_probability=1.5).validate()

    def test_no_truncated_prefixes_under_generated_policies(self, result):
        assert result.truncated_prefixes == []


class TestLookingGlass:
    def test_best_routes_and_neighbors(self, tiny_internet, result):
        glass = LookingGlass.from_result(result, tiny_internet.tier1[0])
        assert glass.best_routes()
        assert glass.neighbors()

    def test_routes_for_prefix_best_first(self, tiny_internet, result):
        glass = LookingGlass.from_result(result, tiny_internet.tier1[0])
        prefix = glass.best_routes()[0].prefix
        routes = glass.routes_for(prefix)
        assert routes
        assert routes[0] == glass.table.best_route(prefix)
        assert glass.show_ip_bgp(prefix) == routes

    def test_routes_for_unknown_prefix_empty(self, tiny_internet, result):
        from repro.net.prefix import Prefix

        glass = LookingGlass.from_result(result, tiny_internet.tier1[0])
        assert glass.routes_for(Prefix.parse("203.0.113.0/24")) == []

    def test_prefix_count_by_neighbor(self, tiny_internet, result):
        glass = LookingGlass.from_result(result, tiny_internet.tier1[0])
        counts = glass.prefix_count_by_neighbor()
        assert counts
        assert all(count > 0 for count in counts.values())
        assert tiny_internet.tier1[0] not in counts

    def test_router_views_mostly_match_as_table(self, tiny_internet, result):
        glass = LookingGlass.from_result(result, tiny_internet.tier1[0])
        views = glass.router_views(router_count=3, per_prefix_override_fraction=0.1, seed=1)
        assert len(views) == 3
        base_prefs = {
            route.prefix: route.local_pref for route in glass.best_routes()
        }
        for view in views:
            same = sum(
                1
                for route in view.best_routes()
                if base_prefs.get(route.prefix) == route.local_pref
            )
            assert same / len(base_prefs) > 0.75

    def test_router_views_validation(self, tiny_internet, result):
        glass = LookingGlass.from_result(result, tiny_internet.tier1[0])
        with pytest.raises(SimulationError):
            glass.router_views(router_count=0)
        with pytest.raises(SimulationError):
            glass.router_views(router_count=2, per_prefix_override_fraction=2.0)
