"""Tests for the experiment registry, base classes and shared caches."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import provider_tables, sa_reports
from repro.experiments.registry import (
    all_experiments,
    experiment_class,
    get_experiment,
    register,
)
from repro.data.dataset import small_dataset
from repro.session import ALL_STAGES, StageView


class TestExperimentResult:
    def test_render_includes_notes_and_reference(self):
        result = ExperimentResult(
            experiment_id="tableX",
            title="A title",
            paper_reference="Table X, Section Y",
            headers=["a", "b"],
            rows=[[1, 2]],
            notes=["something to remember"],
        )
        rendered = result.render()
        assert "tableX: A title" in rendered
        assert "Table X, Section Y" in rendered
        assert "note: something to remember" in rendered


class TestRegistry:
    def test_register_requires_identifier(self):
        class Nameless(Experiment):
            experiment_id = ""
            title = "nameless"
            paper_reference = "-"

            def run(self, dataset):  # pragma: no cover - never invoked
                return self._result()

        with pytest.raises(ExperimentError):
            register(Nameless)

    def test_register_rejects_duplicates(self):
        class Duplicate(Experiment):
            experiment_id = "table5"
            title = "duplicate"
            paper_reference = "-"

            def run(self, dataset):  # pragma: no cover - never invoked
                return self._result()

        with pytest.raises(ExperimentError):
            register(Duplicate)

    def test_all_experiments_sorted_by_id(self):
        identifiers = [experiment.experiment_id for experiment in all_experiments()]
        assert identifiers == sorted(identifiers)

    def test_registry_stores_classes_not_instances(self):
        cls = experiment_class("table5")
        assert isinstance(cls, type) and issubclass(cls, Experiment)

    def test_get_experiment_instantiates_per_call(self):
        assert get_experiment("table5") is not get_experiment("table5")

    def test_every_experiment_declares_requires(self):
        for experiment in all_experiments():
            assert isinstance(experiment.requires, frozenset)
            assert experiment.requires <= ALL_STAGES


class TestCommonCaches:
    def test_provider_tables_cached_per_dataset(self):
        dataset = small_dataset()
        first = provider_tables(dataset)
        second = provider_tables(dataset)
        assert first is second
        assert len(first) == 3

    def test_sa_reports_cached_and_consistent(self):
        dataset = small_dataset()
        first = sa_reports(dataset)
        second = sa_reports(dataset)
        assert first is second
        assert set(first) == set(provider_tables(dataset))

    def test_stage_views_share_the_dataset_cache(self):
        dataset = small_dataset()
        one = provider_tables(StageView(dataset, ALL_STAGES))
        other = provider_tables(StageView(dataset, ALL_STAGES))
        assert one is other
        assert one is provider_tables(dataset)
