"""Deterministic binary packing of codec primitive trees.

Stage codecs (:mod:`repro.storage.codecs`) lower every pipeline artifact
into a *primitive tree* — a nesting of ``None``, booleans, integers,
floats, strings, bytes, tuples, lists and :class:`array.array` columns —
and this module turns such a tree into bytes and back.

The encoding is deterministic **by construction**: containers are written
in the order the codec built them, integers and lengths use a canonical
varint form, and no hash-ordered container (``dict``, ``set``) is
representable at all — codecs must lower those to explicitly ordered
pairs/tuples first.  That is what makes the golden byte-identity guarantee
(two fresh interpreters under different ``PYTHONHASHSEED`` values produce
identical artifact files) checkable rather than accidental.

The format is a compact tag-length-value stream:

====  =========  ============================================
tag   type       payload
====  =========  ============================================
0x00  ``None``   —
0x01  ``True``   —
0x02  ``False``  —
0x03  ``int``    zigzag varint
0x04  ``float``  8 bytes, IEEE-754 big-endian
0x05  ``str``    varint byte length + UTF-8 bytes
0x06  ``bytes``  varint length + raw bytes
0x07  ``tuple``  varint item count + packed items
0x08  ``list``   varint item count + packed items
0x09  ``array``  typecode byte + varint byte length + machine
                 bytes (:meth:`array.array.tobytes`)
====  =========  ============================================

Array columns use the machine byte order for speed (they are the bulk of
an artifact); :class:`repro.storage.store.DiskStore` records the byte
order in the file header and refuses cross-endian reads.

:func:`unpack` copies every node out of the input buffer.  :func:`unpack_view`
is the zero-copy variant: array and bytes nodes come back as
:class:`memoryview` slices *over the caller's buffer* (cast to the stored
typecode), which is what lets a shared-memory segment or an mmap'ed artifact
file back live array views without duplicating the bulk columns.  The caller
owns the buffer's lifetime: the views are only valid while it stays mapped.
"""

from __future__ import annotations

import struct
from array import array

from repro.exceptions import StorageError

_FLOAT = struct.Struct(">d")

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_ARRAY = 0x09


def _write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_varint(out: bytearray, value: int) -> None:
    """Append a signed (zigzag) varint to ``out``.

    Non-negative values map to even numbers, negatives to odd ones, so
    small magnitudes stay small regardless of sign.
    """
    _write_uvarint(out, (value << 1) ^ (-1 if value < 0 else 0))


def _pack_into(out: bytearray, obj: object) -> None:
    """Append the packed form of one primitive-tree node to ``out``."""
    if obj is None:
        out.append(_TAG_NONE)
    elif obj is True:
        out.append(_TAG_TRUE)
    elif obj is False:
        out.append(_TAG_FALSE)
    elif type(obj) is int:
        out.append(_TAG_INT)
        _write_varint(out, obj)
    elif isinstance(obj, float):
        out.append(_TAG_FLOAT)
        out.extend(_FLOAT.pack(obj))
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        out.append(_TAG_STR)
        _write_uvarint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        _write_uvarint(out, len(obj))
        out.extend(obj)
    elif isinstance(obj, tuple):
        out.append(_TAG_TUPLE)
        _write_uvarint(out, len(obj))
        for item in obj:
            _pack_into(out, item)
    elif isinstance(obj, list):
        out.append(_TAG_LIST)
        _write_uvarint(out, len(obj))
        for item in obj:
            _pack_into(out, item)
    elif isinstance(obj, array):
        raw = obj.tobytes()
        out.append(_TAG_ARRAY)
        out.append(ord(obj.typecode))
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(obj, int):  # int subclasses (ASN, IntEnum): store the value
        out.append(_TAG_INT)
        _write_varint(out, int(obj))
    else:
        raise StorageError(
            f"cannot pack {type(obj).__name__!r}: codecs must lower artifacts "
            "to None/bool/int/float/str/bytes/tuple/list/array trees"
        )


def pack(obj: object) -> bytes:
    """Serialize a primitive tree into deterministic bytes.

    Args:
        obj: a nesting of ``None``, ``bool``, ``int`` (any subclass),
            ``float``, ``str``, ``bytes``, ``tuple``, ``list`` and
            :class:`array.array` values.

    Returns:
        The packed byte string.  Equal trees always pack to equal bytes,
        in any interpreter, regardless of ``PYTHONHASHSEED``.

    Raises:
        StorageError: if the tree contains an unsupported type (notably
            ``dict``/``set``, which have no canonical order).
    """
    out = bytearray()
    _pack_into(out, obj)
    return bytes(out)


class _Reader:
    """Cursor over a packed byte string (or memoryview)."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes | memoryview) -> None:
        """Start a cursor at the beginning of ``data``."""
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes | memoryview:
        """Consume and return the next ``count`` bytes (a slice of ``data``)."""
        end = self.pos + count
        if end > len(self.data):
            raise StorageError("truncated packed data")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def uvarint(self) -> int:
        """Consume one unsigned varint."""
        shift = 0
        value = 0
        while True:
            if self.pos >= len(self.data):
                raise StorageError("truncated varint in packed data")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def varint(self) -> int:
        """Consume one signed (zigzag) varint."""
        raw = self.uvarint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)


def _unpack_from(reader: _Reader, zero_copy: bool = False) -> object:
    """Read one primitive-tree node from ``reader``.

    With ``zero_copy`` the reader's buffer must be a :class:`memoryview`;
    array and bytes nodes are returned as casts/slices of it instead of
    copies.
    """
    tag = reader.take(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return reader.varint()
    if tag == _TAG_FLOAT:
        return _FLOAT.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        return str(reader.take(reader.uvarint()), "utf-8")
    if tag == _TAG_BYTES:
        chunk = reader.take(reader.uvarint())
        return chunk if zero_copy else bytes(chunk)
    if tag == _TAG_TUPLE:
        return tuple(
            _unpack_from(reader, zero_copy) for _ in range(reader.uvarint())
        )
    if tag == _TAG_LIST:
        return [_unpack_from(reader, zero_copy) for _ in range(reader.uvarint())]
    if tag == _TAG_ARRAY:
        typecode = chr(reader.take(1)[0])
        raw = reader.take(reader.uvarint())
        if zero_copy:
            try:
                return raw.cast(typecode)
            except (TypeError, ValueError) as exc:
                raise StorageError(
                    f"array typecode {typecode!r} does not support zero-copy views"
                ) from exc
        column = array(typecode)
        column.frombytes(raw)
        return column
    raise StorageError(f"unknown packing tag 0x{tag:02x}")


def unpack(data: bytes) -> object:
    """Deserialize bytes produced by :func:`pack` back into a primitive tree.

    Args:
        data: the packed byte string.

    Returns:
        The primitive tree (tuples stay tuples, lists stay lists, arrays
        keep their typecode).

    Raises:
        StorageError: on truncated input, unknown tags or trailing bytes.
    """
    reader = _Reader(data)
    tree = _unpack_from(reader)
    if reader.pos != len(data):
        raise StorageError(
            f"{len(data) - reader.pos} trailing byte(s) after packed tree"
        )
    return tree


def unpack_view(data: bytes | bytearray | memoryview) -> object:
    """Deserialize packed bytes *without copying the bulk columns*.

    Args:
        data: a buffer holding bytes produced by :func:`pack` — typically a
            :class:`memoryview` over a shared-memory segment or an mmap'ed
            artifact file.

    Returns:
        The primitive tree, with two deviations from :func:`unpack`: array
        nodes are returned as read-only :class:`memoryview` objects cast to
        the stored typecode, and bytes nodes as plain memoryview slices —
        both windows into ``data`` rather than copies.  Scalars, strings and
        containers are materialized as usual.  The views are valid only as
        long as the caller keeps ``data``'s underlying buffer alive/mapped.

    Raises:
        StorageError: on truncated input, unknown tags, trailing bytes, or a
            typecode that cannot back a zero-copy view.
    """
    base = data if isinstance(data, memoryview) else memoryview(data)
    if not base.contiguous:
        raise StorageError("unpack_view needs a contiguous buffer")
    reader = _Reader(base.cast("B") if base.format != "B" else base)
    tree = _unpack_from(reader, zero_copy=True)
    if reader.pos != len(reader.data):
        raise StorageError(
            f"{len(reader.data) - reader.pos} trailing byte(s) after packed tree"
        )
    return tree
