"""Session-layer integration of the ANALYSIS stage."""

import pytest

from repro.exceptions import ExperimentError, SimulationError
from repro.session.cache import StageCache
from repro.session.scenarios import get_scenario
from repro.session.stages import (
    ALL_STAGES,
    AnalysisParameters,
    Stage,
    StageView,
    StudyConfig,
)
from repro.session.study import Study
from repro.session.suite import run_suite
from repro.topology.generator import GeneratorParameters

#: A deliberately tiny configuration so stage builds stay cheap.
TINY = StudyConfig(
    topology=GeneratorParameters(
        seed=3, tier1_count=3, tier2_count=4, tier3_count=6, stub_count=24
    )
)


@pytest.fixture()
def cache():
    return StageCache()


@pytest.fixture()
def study(cache):
    return Study(TINY, cache=cache)


class TestStageWiring:
    def test_analysis_is_a_stage(self):
        assert Stage.ANALYSIS in ALL_STAGES
        assert Stage.ANALYSIS.value == "analysis"

    def test_analysis_stage_key_depends_on_parameters(self, cache):
        base = Study(TINY, cache=cache)
        tweaked = Study(
            StudyConfig(
                topology=TINY.topology,
                analysis=AnalysisParameters(study_provider_count=2),
            ),
            cache=cache,
        )
        assert base.stage_key(Stage.ANALYSIS) != tweaked.stage_key(Stage.ANALYSIS)
        # Upstream stages are untouched by analysis parameters.
        assert base.stage_key(Stage.OBSERVATION) == tweaked.stage_key(Stage.OBSERVATION)

    def test_analysis_stage_key_depends_on_upstream(self, cache):
        base = Study(TINY, cache=cache)
        reseeded = base.seeded(99)
        assert base.stage_key(Stage.ANALYSIS) != reseeded.stage_key(Stage.ANALYSIS)

    def test_parameters_validate(self):
        with pytest.raises(SimulationError):
            AnalysisParameters(study_provider_count=0).validate()


class TestEngineCaching:
    def test_study_analysis_is_cached(self, study, cache):
        first = study.analysis()
        second = study.analysis()
        assert first is second
        stats = cache.stats_for(Stage.ANALYSIS.value)
        assert stats.builds == 1
        assert stats.hits == 1

    def test_engine_memoised_on_dataset(self, study):
        dataset = study.dataset()
        assert dataset.analysis_engine() is dataset.analysis_engine()
        assert study.analysis() is dataset.analysis_engine()

    def test_engine_honours_config_parameters(self, cache):
        study = Study(
            StudyConfig(
                topology=TINY.topology,
                analysis=AnalysisParameters(study_provider_count=2),
            ),
            cache=cache,
        )
        engine = study.analysis()
        assert engine.provider_count == 2
        assert len(engine.sa_reports()) == 2


class TestStageViewGating:
    def test_analysis_gated(self, study):
        view = StageView(study.dataset(), frozenset({Stage.TOPOLOGY}))
        with pytest.raises(ExperimentError):
            _ = view.analysis

    def test_analysis_allowed(self, study):
        view = StageView(study.dataset(), frozenset({Stage.ANALYSIS}))
        assert view.analysis is study.analysis()


class TestSuiteAmortisation:
    def test_run_suite_builds_the_index_once(self, study, cache):
        report = run_suite(study, ["table2", "table7", "atoms", "case3"], workers=4)
        assert [r.experiment_id for r in report.experiments] == [
            "atoms",
            "case3",
            "table2",
            "table7",
        ]
        assert cache.stats_for(Stage.ANALYSIS.value).builds == 1

    def test_run_suite_accepts_a_bare_dataset(self, study):
        # StudyDataset exposes `analysis` as a property; the pre-compile
        # hook must not try to call it like Study's method.
        report = run_suite(study.dataset(), ["table2", "case3"])
        assert [r.experiment_id for r in report.experiments] == ["case3", "table2"]

    def test_common_helpers_honour_study_provider_count(self, cache):
        from repro.experiments.common import provider_tables, sa_reports

        study = Study(
            StudyConfig(
                topology=TINY.topology,
                analysis=AnalysisParameters(study_provider_count=2),
            ),
            cache=cache,
        )
        dataset = study.dataset()
        assert len(sa_reports(dataset)) == 2
        assert len(provider_tables(dataset)) == 2

    def test_suite_content_identical_across_workers(self, study):
        serial = run_suite(study, ["table5", "table9", "fig2"], workers=1)
        parallel = run_suite(study, ["table5", "table9", "fig2"], workers=4)
        assert serial.to_json(include_timing=False) == parallel.to_json(
            include_timing=False
        )
