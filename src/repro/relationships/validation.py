"""Accuracy measurement of inferred relationships.

Section 4.3 of the paper bounds the error introduced by inferred AS
relationships: for nine ASes, the relationships with their neighbors are
verified (via BGP communities) and 94–99% are found correct (Table 4).  The
functions here produce the same kind of measurements against any reference —
the generator's ground truth or community-derived evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.asn import ASN
from repro.topology.graph import AnnotatedASGraph, Relationship


@dataclass
class RelationshipAccuracy:
    """Edge-level agreement between an inferred graph and a reference graph.

    Attributes:
        total_edges: number of reference edges that also exist in the
            inferred graph.
        correct_edges: how many of those carry the same annotation.
        missing_edges: reference edges absent from the inferred graph.
        extra_edges: inferred edges absent from the reference graph.
        confusion: mapping ``(reference, inferred)`` relationship pair →
            count, for error analysis.
        per_as: for each AS, ``(verified_neighbors, total_neighbors)`` —
            the Table 4 style breakdown.
    """

    total_edges: int = 0
    correct_edges: int = 0
    missing_edges: int = 0
    extra_edges: int = 0
    confusion: dict[tuple[str, str], int] = field(default_factory=dict)
    per_as: dict[ASN, tuple[int, int]] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Fraction of compared edges whose annotation matches."""
        if self.total_edges == 0:
            return 0.0
        return self.correct_edges / self.total_edges

    def per_as_percentage(self, asn: ASN) -> float:
        """Percentage of an AS's neighbor relationships that were verified."""
        verified, total = self.per_as.get(asn, (0, 0))
        if total == 0:
            return 0.0
        return 100.0 * verified / total


def _edge_key(relationship: Relationship, left: ASN, right: ASN) -> str:
    """Canonical label of an edge annotation for the confusion matrix."""
    if relationship is Relationship.CUSTOMER:
        return f"p2c:{left}>{right}"
    if relationship is Relationship.PROVIDER:
        return f"p2c:{right}>{left}"
    if relationship is Relationship.PEER:
        return "p2p"
    return "s2s"


def compare_with_ground_truth(
    inferred: AnnotatedASGraph,
    reference: AnnotatedASGraph,
    focus_ases: list[ASN] | None = None,
) -> RelationshipAccuracy:
    """Compare an inferred graph against a reference annotated graph.

    Only edges present in the reference graph are graded (extra inferred
    edges are counted separately); an edge is correct when the relationship
    between the same pair of ASes carries the same annotation, including the
    orientation of provider-to-customer edges.

    Args:
        inferred: the graph produced by an inference algorithm.
        reference: the ground-truth (or community-verified) graph.
        focus_ases: when given, the per-AS breakdown is restricted to these
            ASes (the paper reports it for 9 specific ASes in Table 4).
    """
    accuracy = RelationshipAccuracy()
    focus = set(focus_ases) if focus_ases is not None else None

    seen: set[frozenset[ASN]] = set()
    for asn in reference.ases():
        for neighbor in reference.neighbors(asn):
            pair = frozenset((asn, neighbor))
            if pair in seen:
                continue
            seen.add(pair)
            reference_rel = reference.relationship(asn, neighbor)
            inferred_rel = inferred.relationship(asn, neighbor)
            if inferred_rel is None:
                accuracy.missing_edges += 1
                continue
            accuracy.total_edges += 1
            reference_label = _edge_key(reference_rel, asn, neighbor)
            inferred_label = _edge_key(inferred_rel, asn, neighbor)
            key = (reference_label.split(":")[0], inferred_label.split(":")[0])
            matched = reference_label == inferred_label
            if matched:
                accuracy.correct_edges += 1
            accuracy.confusion[key] = accuracy.confusion.get(key, 0) + (0 if matched else 1)

    inferred_seen: set[frozenset[ASN]] = set()
    for asn in inferred.ases():
        for neighbor in inferred.neighbors(asn):
            pair = frozenset((asn, neighbor))
            if pair in inferred_seen:
                continue
            inferred_seen.add(pair)
            if reference.relationship(asn, neighbor) is None:
                accuracy.extra_edges += 1

    for asn in (focus if focus is not None else reference.ases()):
        neighbors = reference.neighbors(asn)
        if not neighbors:
            continue
        verified = 0
        for neighbor in neighbors:
            reference_rel = reference.relationship(asn, neighbor)
            inferred_rel = inferred.relationship(asn, neighbor)
            if inferred_rel is None or reference_rel is None:
                continue
            if _edge_key(reference_rel, asn, neighbor) == _edge_key(inferred_rel, asn, neighbor):
                verified += 1
        accuracy.per_as[asn] = (verified, len(neighbors))
    return accuracy
