"""Causes of SA prefixes (paper Section 5.1.5, Tables 8 and 9, Case 3).

Three candidate explanations are examined for every SA prefix observed at a
provider:

* **Prefix splitting** (Case 1) — the SA prefix and another prefix of the
  same origin AS are in a more-specific / less-specific relationship but are
  routed differently (one via a customer path, one via a peer path).
* **Prefix aggregating** (Case 2) — the SA prefix could be aggregated by a
  covering prefix present in the table (an upper bound, as in the paper).
* **Selective announcing** (Case 3) — the remaining majority: the origin (or
  an intermediate AS) announces the prefix to only a subset of providers, or
  scopes the announcement with a community.

The module also reproduces Table 8 (multihomed vs. single-homed origins of
SA prefixes) and the Case 3 narrative numbers (what fraction of customers
announce the SA prefix to the studied provider's direct customer branch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.rib import LocRib
from repro.core.export_policy import SAPrefixReport
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie
from repro.simulation.collector import CollectorTable
from repro.topology.graph import AnnotatedASGraph, Relationship


@dataclass
class HomingBreakdown:
    """Table 8 style row: SA-prefix origins by homing.

    Attributes:
        provider: the provider whose SA prefixes are analysed.
        multihomed_origins: origin ASes (of SA prefixes) with more than one
            provider.
        singlehomed_origins: origin ASes with exactly one provider.
    """

    provider: ASN
    multihomed_origins: set[ASN] = field(default_factory=set)
    singlehomed_origins: set[ASN] = field(default_factory=set)

    @property
    def multihomed_count(self) -> int:
        """Number of multihomed origins."""
        return len(self.multihomed_origins)

    @property
    def singlehomed_count(self) -> int:
        """Number of single-homed origins."""
        return len(self.singlehomed_origins)

    @property
    def percent_multihomed(self) -> float:
        """Percentage of SA-prefix origins that are multihomed."""
        total = self.multihomed_count + self.singlehomed_count
        if total == 0:
            return 0.0
        return 100.0 * self.multihomed_count / total


@dataclass
class CauseBreakdown:
    """Table 9 style row: how many SA prefixes each cause can explain.

    Attributes:
        provider: the provider whose SA prefixes are analysed.
        sa_prefix_count: total SA prefixes.
        splitting_count: SA prefixes explained by prefix splitting.
        aggregating_count: SA prefixes that could be aggregated by a covering
            prefix (upper bound).
        selective_count: the remainder, attributed to selective announcing.
    """

    provider: ASN
    sa_prefix_count: int = 0
    splitting_count: int = 0
    aggregating_count: int = 0
    selective_count: int = 0


@dataclass
class Case3Result:
    """The Section 5.1.5 Case 3 numbers for one provider.

    Attributes:
        provider: the provider analysed.
        sa_prefix_count: SA prefixes considered.
        identified_count: SA prefixes for which the collector has enough
            paths to decide.
        exported_to_direct_provider: identified prefixes that the customer
            *does* announce to its direct provider on the provider's customer
            branch (so the curving is caused further upstream).
        not_exported_to_direct_provider: identified prefixes the customer
            does not announce on that branch at all.
    """

    provider: ASN
    sa_prefix_count: int = 0
    identified_count: int = 0
    exported_to_direct_provider: int = 0
    not_exported_to_direct_provider: int = 0

    @property
    def percent_identified(self) -> float:
        """Fraction of SA prefixes the method could classify."""
        if self.sa_prefix_count == 0:
            return 0.0
        return 100.0 * self.identified_count / self.sa_prefix_count

    @property
    def percent_exported(self) -> float:
        """Among identified prefixes, fraction announced to the direct provider."""
        if self.identified_count == 0:
            return 0.0
        return 100.0 * self.exported_to_direct_provider / self.identified_count

    @property
    def percent_not_exported(self) -> float:
        """Among identified prefixes, fraction not announced to the direct provider."""
        if self.identified_count == 0:
            return 0.0
        return 100.0 * self.not_exported_to_direct_provider / self.identified_count


class CauseAnalyzer:
    """Attributes SA prefixes to splitting, aggregating or selective announcing."""

    def __init__(self, relationships: AnnotatedASGraph) -> None:
        self.relationships = relationships

    # -- Table 8 -------------------------------------------------------------------

    def homing_breakdown(self, report: SAPrefixReport) -> HomingBreakdown:
        """Classify the origins of a provider's SA prefixes by homing."""
        breakdown = HomingBreakdown(provider=report.provider)
        for origin in report.origins_with_sa_prefixes():
            if self.relationships.is_multihomed(origin):
                breakdown.multihomed_origins.add(origin)
            else:
                breakdown.singlehomed_origins.add(origin)
        return breakdown

    # -- Table 9 ----------------------------------------------------------------------

    def cause_breakdown(self, report: SAPrefixReport, table: LocRib) -> CauseBreakdown:
        """Count SA prefixes explained by splitting / aggregating / selective announcing."""
        breakdown = CauseBreakdown(
            provider=report.provider, sa_prefix_count=report.sa_prefix_count
        )
        # Index every best route by prefix for covering/covered queries.
        trie: PrefixTrie = PrefixTrie()
        for route in table.best_routes():
            trie.insert(route.prefix, route)
        for item in report.sa_prefixes:
            is_splitting = self._is_splitting(
                report.provider, item.prefix, item.origin_as, trie
            )
            is_aggregating = self._is_aggregating(item.prefix, trie)
            if is_splitting:
                breakdown.splitting_count += 1
            if is_aggregating:
                breakdown.aggregating_count += 1
            if not is_splitting and not is_aggregating:
                breakdown.selective_count += 1
        return breakdown

    def _is_splitting(
        self, provider: ASN, prefix: Prefix, origin: ASN, trie: PrefixTrie
    ) -> bool:
        """Splitting: a related (covering or covered) prefix of the same origin
        is reached via a customer route while this one is not."""
        related = list(trie.covering(prefix)) + list(trie.covered(prefix))
        for other_prefix, other_route in related:
            if other_prefix == prefix:
                continue
            if other_route.origin_as != origin:
                continue
            other_relationship = self.relationships.relationship(
                provider, other_route.next_hop_as
            )
            if other_relationship is Relationship.CUSTOMER:
                return True
        return False

    @staticmethod
    def _is_aggregating(prefix: Prefix, trie: PrefixTrie) -> bool:
        """Aggregating (upper bound): a strictly covering prefix exists in the table."""
        for covering_prefix, _ in trie.covering(prefix):
            if covering_prefix.length < prefix.length:
                return True
        return False

    # -- Case 3 ------------------------------------------------------------------------------

    def case3_analysis(
        self, report: SAPrefixReport, collector: CollectorTable
    ) -> Case3Result:
        """Determine whether SA-prefix origins announce to the provider's branch.

        For each SA prefix, the *direct provider of interest* is the
        penultimate AS on the provider's customer path down to the origin
        (the provider itself for direct customers).  The collector's paths
        for that prefix are then searched: if some path shows the origin
        announcing directly to that AS (the AS appears immediately left of
        the origin), the customer does export the prefix there and the
        curving is caused upstream; if no path does, the customer withholds
        the prefix from that branch.
        """
        result = Case3Result(provider=report.provider, sa_prefix_count=report.sa_prefix_count)
        for item in report.sa_prefixes:
            if not item.customer_path or len(item.customer_path) < 2:
                continue
            direct_provider = item.customer_path[-2]
            observed_paths = [
                entry.as_path.deduplicate().asns
                for entry in collector.entries_for_prefix(item.prefix)
            ]
            if not observed_paths:
                continue
            result.identified_count += 1
            exported = any(
                origin_index > 0 and path[origin_index - 1] == direct_provider
                for path in observed_paths
                for origin_index in [len(path) - 1]
                if path and path[-1] == item.origin_as
            )
            if exported:
                result.exported_to_direct_provider += 1
            else:
                result.not_exported_to_direct_provider += 1
        return result
