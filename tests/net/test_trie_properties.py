"""Property-based tests for the radix trie (hypothesis)."""

from hypothesis import given, settings, strategies as st
from strategies import prefixes

from repro.net.trie import PrefixTrie


prefix_lists = st.lists(prefixes(), max_size=60)


@given(prefix_lists)
def test_trie_matches_dict_semantics(prefix_list):
    trie = PrefixTrie()
    reference = {}
    for index, prefix in enumerate(prefix_list):
        trie.insert(prefix, index)
        reference[prefix] = index
    assert len(trie) == len(reference)
    for prefix, value in reference.items():
        assert trie[prefix] == value
    assert dict(trie.items()) == reference


@given(prefix_lists, prefixes())
def test_longest_match_agrees_with_bruteforce(prefix_list, query):
    trie = PrefixTrie()
    for index, prefix in enumerate(prefix_list):
        trie.insert(prefix, index)
    candidates = [p for p in set(prefix_list) if p.contains(query)]
    result = trie.longest_match(query)
    if not candidates:
        assert result is None
    else:
        expected_length = max(p.length for p in candidates)
        assert result is not None
        assert result[0].length == expected_length
        assert result[0].contains(query)


@given(prefix_lists, prefixes())
def test_covering_and_covered_agree_with_bruteforce(prefix_list, query):
    trie = PrefixTrie()
    for index, prefix in enumerate(prefix_list):
        trie.insert(prefix, index)
    unique = set(prefix_list)
    covering = {p for p, _ in trie.covering(query)}
    covered = {p for p, _ in trie.covered(query)}
    assert covering == {p for p in unique if p.contains(query)}
    assert covered == {p for p in unique if query.contains(p)}


@settings(max_examples=50)
@given(st.lists(prefixes(), min_size=1, max_size=40))
def test_remove_restores_previous_state(prefix_list):
    trie = PrefixTrie()
    for index, prefix in enumerate(prefix_list):
        trie.insert(prefix, index)
    unique = list(dict.fromkeys(prefix_list))
    removed = unique[len(unique) // 2]
    trie.remove(removed)
    assert removed not in trie
    assert len(trie) == len(unique) - 1
    for prefix in unique:
        if prefix != removed:
            assert prefix in trie
