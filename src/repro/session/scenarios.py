"""Named scenario presets and parameterized scenario families.

A scenario is a named, documented :class:`~repro.session.stages.StudyConfig`
factory.  The built-ins cover the configurations the repo has needed so far:

* ``standard`` — the seed repo's default dataset (what the paper's tables run on).
* ``small`` — the quick configuration used by the test suite and examples.
* ``dense-peering`` — much denser lateral peering, stressing peer-route
  selection and the Table 10 peer-export analyses.
* ``sparse-multihoming`` — few multihomed stubs, suppressing the paper's
  main cause of SA prefixes (a lower-bound scenario for Tables 5-9).
* ``large`` — the full-size synthetic Internet of
  :class:`~repro.topology.generator.GeneratorParameters`' defaults with an
  Oregon-scale collector (56 peers).

A :class:`ScenarioFamily` generalises a preset into an *unbounded* space of
scenarios: a deterministic sampler from an integer seed to a
:class:`~repro.session.stages.StudyConfig`.  The built-in families
(``peering-density``, ``multihoming``, ``hierarchy-depth``,
``community-adoption``, ``collector-size``) live in
:mod:`repro.fuzz.families` and are the substrate of the differential fuzz
harness (``python -m repro fuzz``).  A single sample is addressable
everywhere a preset name is accepted via the ``family@seed`` spelling
(:func:`resolve_scenario`), e.g. ``python -m repro run --scenario
multihoming@7``.

Register new ones with :func:`register_scenario` / :func:`register_family`;
the CLI (``python -m repro scenarios``) lists whatever is registered.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.exceptions import ExperimentError
from repro.session.cache import StageCache
from repro.session.stages import ObservationParameters, PropagationSettings, StudyConfig
from repro.session.study import Study
from repro.simulation.policies import PolicyParameters
from repro.topology.generator import GeneratorParameters


@dataclass(frozen=True)
class Scenario:
    """A named study configuration.

    Attributes:
        name: registry identifier (``"standard"``, ``"small"``, ...).
        description: one-line summary shown by ``python -m repro scenarios``.
        config_factory: builds the scenario's :class:`StudyConfig`.
    """

    name: str
    description: str
    config_factory: Callable[[], StudyConfig]

    def config(self) -> StudyConfig:
        """The scenario's study configuration."""
        return self.config_factory()

    def study(
        self,
        *,
        cache: StageCache | None = None,
        propagation: PropagationSettings | None = None,
    ) -> Study:
        """A :class:`Study` of this scenario (sharing the global cache by default).

        ``propagation`` selects the propagation engine and worker count (the
        fast engine with one worker when omitted).
        """
        return Study(self.config(), cache=cache, propagation=propagation)


_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str, config_factory: Callable[[], StudyConfig]
) -> Scenario:
    """Register a named scenario; raises on duplicates (presets or families)."""
    if name in _SCENARIOS:
        raise ExperimentError(f"duplicate scenario name: {name!r}")
    # Checked against the raw registry (not via family_names()) so the
    # built-in preset registrations below never trigger the family import.
    if name in _FAMILIES:
        raise ExperimentError(
            f"scenario {name!r} collides with a scenario family of that name"
        )
    scenario = Scenario(name=name, description=description, config_factory=config_factory)
    _SCENARIOS[name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises:
        ExperimentError: for unknown names.
    """
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        raise ExperimentError(
            f"unknown scenario {name!r}; known: {sorted(_SCENARIOS)}"
        )
    return scenario


def all_scenarios() -> list[Scenario]:
    """Every registered scenario, ordered by name."""
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]


def scenario_names() -> list[str]:
    """The registered scenario names, sorted."""
    return sorted(_SCENARIOS)


# -- scenario families -------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioFamily:
    """A parameterized, seeded family of scenarios.

    A family is a deterministic sampler ``seed -> StudyConfig``: the same
    ``(family, seed)`` pair always produces the same configuration, in any
    process (samplers must not depend on ``PYTHONHASHSEED`` or global
    state).  That makes every sample reproducible from the two values the
    fuzz harness prints on failure.

    Attributes:
        name: registry identifier (``"peering-density"``, ...).
        description: one-line summary shown by ``python -m repro scenarios``.
        parameter: human-readable description of the knob(s) the family
            varies, e.g. ``"p = lateral peering probability in [0, 0.9]"``.
        sampler: the deterministic ``seed -> StudyConfig`` function.
    """

    name: str
    description: str
    parameter: str
    sampler: Callable[[int], StudyConfig]

    def sample(self, seed: int) -> StudyConfig:
        """The (validated) study configuration sampled at ``seed``."""
        config = self.sampler(seed)
        config.validate()
        return config

    def scenario(self, seed: int) -> Scenario:
        """One sample wrapped as an ad-hoc :class:`Scenario` (``name@seed``)."""
        config = self.sample(seed)
        return Scenario(
            name=f"{self.name}@{seed}",
            description=f"sample of the {self.name!r} family at seed {seed}",
            config_factory=lambda: config,
        )

    def study(
        self,
        seed: int,
        *,
        cache: StageCache | None = None,
        propagation: PropagationSettings | None = None,
    ) -> Study:
        """A :class:`Study` of the sample at ``seed``."""
        return Study(self.sample(seed), cache=cache, propagation=propagation)


_FAMILIES: dict[str, ScenarioFamily] = {}


def _load_builtin_families() -> None:
    """Import the built-in family definitions (registered on import)."""
    import repro.fuzz.families  # noqa: F401  (imported for its registrations)


def register_family(
    name: str, description: str, parameter: str, sampler: Callable[[int], StudyConfig]
) -> ScenarioFamily:
    """Register a named scenario family; raises on duplicates."""
    if name in _FAMILIES:
        raise ExperimentError(f"duplicate scenario family name: {name!r}")
    if name in _SCENARIOS:
        raise ExperimentError(
            f"scenario family {name!r} collides with a scenario preset of that name"
        )
    family = ScenarioFamily(
        name=name, description=description, parameter=parameter, sampler=sampler
    )
    _FAMILIES[name] = family
    return family


def get_family(name: str) -> ScenarioFamily:
    """Look up a scenario family by name.

    Raises:
        ExperimentError: for unknown names.
    """
    _load_builtin_families()
    family = _FAMILIES.get(name)
    if family is None:
        raise ExperimentError(
            f"unknown scenario family {name!r}; known: {sorted(_FAMILIES)}"
        )
    return family


def all_families() -> list[ScenarioFamily]:
    """Every registered scenario family, ordered by name."""
    _load_builtin_families()
    return [_FAMILIES[name] for name in sorted(_FAMILIES)]


def family_names() -> list[str]:
    """The registered scenario family names, sorted."""
    _load_builtin_families()
    return sorted(_FAMILIES)


def resolve_scenario(spec: str) -> Scenario:
    """A scenario preset by name, or one family sample via ``family@seed``.

    ``resolve_scenario("small")`` is :func:`get_scenario`;
    ``resolve_scenario("multihoming@7")`` samples the ``multihoming`` family
    at seed 7.  Every CLI/bench entry point that accepts ``--scenario``
    resolves through here, so family samples are first-class scenarios.

    Raises:
        ExperimentError: for unknown presets/families or a malformed seed.
    """
    if "@" in spec:
        family_name, _, seed_text = spec.rpartition("@")
        try:
            seed = int(seed_text)
        except ValueError:
            raise ExperimentError(
                f"bad scenario sample {spec!r}: expected 'family@seed' with an "
                f"integer seed, e.g. 'peering-density@7'"
            ) from None
        return get_family(family_name).scenario(seed)
    if spec not in _SCENARIOS and spec in family_names():
        raise ExperimentError(
            f"{spec!r} is a scenario family, not a preset; sample it with an "
            f"explicit seed, e.g. '{spec}@7'"
        )
    return get_scenario(spec)


# -- built-in presets --------------------------------------------------------------

register_scenario(
    "standard",
    "the default study dataset the paper's tables are reproduced on (~330 ASes)",
    StudyConfig,
)

register_scenario(
    "small",
    "quick ~150-AS configuration used by the test suite and examples",
    lambda: StudyConfig(
        topology=GeneratorParameters(
            seed=7, tier1_count=5, tier2_count=10, tier3_count=20, stub_count=110
        ),
        observation=ObservationParameters(
            looking_glass_count=8,
            tier1_looking_glass_count=3,
            collector_vantage_count=12,
        ),
    ),
)

register_scenario(
    "dense-peering",
    "standard topology with much denser lateral peering (stresses peer routes)",
    lambda: StudyConfig(
        topology=replace(
            StudyConfig().topology,
            tier2_peering_probability=0.8,
            tier3_peering_probability=0.3,
            stub_peering_probability=0.05,
        ),
    ),
)

register_scenario(
    "sparse-multihoming",
    "standard topology with rare multihoming (suppresses the main SA-prefix cause)",
    lambda: StudyConfig(
        topology=replace(
            StudyConfig().topology,
            stub_multihoming_probability=0.10,
            max_stub_providers=2,
        ),
        policy=PolicyParameters(selective_announcement_probability=0.25),
    ),
)

register_scenario(
    "large",
    "full-size ~1100-AS Internet with an Oregon-scale collector (56 peers)",
    lambda: StudyConfig(
        topology=GeneratorParameters(),
        observation=ObservationParameters(collector_vantage_count=56),
    ),
)
