"""Benchmark: reproduce Table 8 (multihomed vs single-homed SA origins).

Paper shape: about three quarters of the ASes whose prefixes are SA prefixes
are multihomed.
"""


def test_bench_table8(benchmark, run_experiment):
    result = run_experiment(benchmark, "table8")
    total_multi = sum(row[1] for row in result.rows)
    total_single = sum(row[2] for row in result.rows)
    assert total_multi + total_single > 0
    assert total_multi > total_single
