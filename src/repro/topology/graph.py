"""The annotated AS graph (paper Section 2.1) and customer-path search.

An annotated AS graph is ``G = (V, E)`` where the nodes are ASes and each
edge is labelled *provider-to-customer* or *peer-to-peer*.  On top of the raw
graph this module provides the primitives the paper's algorithms need:

* neighbor classification (customers / peers / providers of an AS),
* the *customer cone* — every AS reachable by walking provider→customer
  edges downward,
* :meth:`AnnotatedASGraph.find_customer_path` / ``is_customer_of`` — the
  modified depth-first search of the Fig. 4 algorithm (Phase 2), which only
  follows provider-to-customer edges so every discovered path is a valid
  customer path under the export rules of Section 2.2.2, and
* valley-free path validation, used both by the propagation engine and by
  the verification step of Section 5.1.3.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import TopologyError
from repro.net.asn import ASN
from repro.net.aspath import ASPath


class Relationship(enum.Enum):
    """The relationship of a neighbor *from the perspective of a given AS*."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"
    SIBLING = "sibling"

    def inverse(self) -> "Relationship":
        """Return the relationship as seen from the other end of the edge."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Edge:
    """One annotated edge: ``provider`` is the upstream end for transit edges.

    For peer-to-peer (and sibling) edges the two ends are interchangeable;
    ``provider``/``customer`` then just record the insertion order.
    """

    provider: ASN
    customer: ASN
    relationship: Relationship

    def other(self, asn: ASN) -> ASN:
        """Return the AS at the other end of the edge."""
        if asn == self.provider:
            return self.customer
        if asn == self.customer:
            return self.provider
        raise TopologyError(f"AS{asn} is not an endpoint of {self}")


class AnnotatedASGraph:
    """An AS-level graph whose edges carry business relationships."""

    def __init__(self) -> None:
        self._neighbors: dict[ASN, dict[ASN, Relationship]] = {}

    # -- construction -------------------------------------------------------

    def add_as(self, asn: ASN) -> None:
        """Add an AS with no links (idempotent)."""
        self._neighbors.setdefault(asn, {})

    def add_provider_customer(self, provider: ASN, customer: ASN) -> None:
        """Add (or overwrite) a provider-to-customer edge."""
        if provider == customer:
            raise TopologyError(f"AS{provider} cannot be its own provider")
        self._set(provider, customer, Relationship.CUSTOMER)
        self._set(customer, provider, Relationship.PROVIDER)

    def add_peer_peer(self, left: ASN, right: ASN) -> None:
        """Add (or overwrite) a peer-to-peer edge."""
        if left == right:
            raise TopologyError(f"AS{left} cannot peer with itself")
        self._set(left, right, Relationship.PEER)
        self._set(right, left, Relationship.PEER)

    def add_sibling(self, left: ASN, right: ASN) -> None:
        """Add (or overwrite) a sibling-to-sibling edge."""
        if left == right:
            raise TopologyError(f"AS{left} cannot be its own sibling")
        self._set(left, right, Relationship.SIBLING)
        self._set(right, left, Relationship.SIBLING)

    def add_edge(self, provider: ASN, customer: ASN, relationship: Relationship) -> None:
        """Add an edge given the relationship of ``customer`` relative to ``provider``.

        ``relationship`` is interpreted as "what ``customer`` is to
        ``provider``": ``CUSTOMER`` adds a provider-to-customer edge,
        ``PEER`` a peer-to-peer edge, ``SIBLING`` a sibling edge and
        ``PROVIDER`` a customer-to-provider edge (i.e. the reverse).
        """
        if relationship is Relationship.CUSTOMER:
            self.add_provider_customer(provider, customer)
        elif relationship is Relationship.PROVIDER:
            self.add_provider_customer(customer, provider)
        elif relationship is Relationship.PEER:
            self.add_peer_peer(provider, customer)
        else:
            self.add_sibling(provider, customer)

    def remove_edge(self, left: ASN, right: ASN) -> None:
        """Remove the edge between two ASes (if present)."""
        self._neighbors.get(left, {}).pop(right, None)
        self._neighbors.get(right, {}).pop(left, None)

    def _set(self, asn: ASN, neighbor: ASN, relationship: Relationship) -> None:
        self._neighbors.setdefault(asn, {})[neighbor] = relationship
        self._neighbors.setdefault(neighbor, {})

    # -- basic queries ----------------------------------------------------------

    def ases(self) -> list[ASN]:
        """Every AS in the graph."""
        return list(self._neighbors)

    def __contains__(self, asn: object) -> bool:
        return asn in self._neighbors

    def __len__(self) -> int:
        return len(self._neighbors)

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._neighbors.values()) // 2

    def degree(self, asn: ASN) -> int:
        """Number of neighbors of an AS."""
        return len(self._neighbors.get(asn, {}))

    def neighbors(self, asn: ASN) -> list[ASN]:
        """Every neighbor of an AS."""
        return list(self._neighbors.get(asn, {}))

    def neighbor_items(self, asn: ASN) -> Iterator[tuple[ASN, Relationship]]:
        """Iterate ``(neighbor, relationship)`` pairs of an AS in one pass.

        The single-pass form is what bulk consumers (the propagation engines'
        neighbor classification, the fast-path topology compiler) want:
        one dictionary walk instead of one scan per relationship kind.
        """
        return iter(self._neighbors.get(asn, {}).items())

    def relationship(self, asn: ASN, neighbor: ASN) -> Relationship | None:
        """The relationship of ``neighbor`` from ``asn``'s point of view, if linked."""
        return self._neighbors.get(asn, {}).get(neighbor)

    def customers_of(self, asn: ASN) -> list[ASN]:
        """Direct customers of an AS."""
        return self._by_relationship(asn, Relationship.CUSTOMER)

    def providers_of(self, asn: ASN) -> list[ASN]:
        """Direct providers of an AS."""
        return self._by_relationship(asn, Relationship.PROVIDER)

    def peers_of(self, asn: ASN) -> list[ASN]:
        """Peers of an AS."""
        return self._by_relationship(asn, Relationship.PEER)

    def siblings_of(self, asn: ASN) -> list[ASN]:
        """Siblings of an AS."""
        return self._by_relationship(asn, Relationship.SIBLING)

    def _by_relationship(self, asn: ASN, relationship: Relationship) -> list[ASN]:
        return [
            neighbor
            for neighbor, rel in self._neighbors.get(asn, {}).items()
            if rel is relationship
        ]

    def is_provider_of(self, provider: ASN, customer: ASN) -> bool:
        """``True`` if there is a direct provider-to-customer edge."""
        return self.relationship(provider, customer) is Relationship.CUSTOMER

    def is_peer_of(self, left: ASN, right: ASN) -> bool:
        """``True`` if the two ASes share a peer-to-peer edge."""
        return self.relationship(left, right) is Relationship.PEER

    def is_multihomed(self, asn: ASN) -> bool:
        """``True`` if the AS has more than one provider (paper Section 5.1.5)."""
        return len(self.providers_of(asn)) > 1

    def is_stub(self, asn: ASN) -> bool:
        """``True`` if the AS has no customers."""
        return not self.customers_of(asn)

    def edges(self) -> Iterator[Edge]:
        """Iterate over every edge once, with transit edges oriented provider→customer."""
        seen: set[frozenset[ASN]] = set()
        for asn, neighbors in self._neighbors.items():
            for neighbor, relationship in neighbors.items():
                key = frozenset((asn, neighbor))
                if key in seen:
                    continue
                seen.add(key)
                if relationship is Relationship.CUSTOMER:
                    yield Edge(asn, neighbor, Relationship.CUSTOMER)
                elif relationship is Relationship.PROVIDER:
                    yield Edge(neighbor, asn, Relationship.CUSTOMER)
                else:
                    yield Edge(asn, neighbor, relationship)

    # -- customer cone and customer paths (paper Fig. 4, Phase 2) ------------------

    def customer_cone(self, asn: ASN) -> set[ASN]:
        """Every direct or indirect customer of an AS (the AS itself excluded)."""
        if asn not in self._neighbors:
            raise TopologyError(f"AS{asn} is not in the graph")
        cone: set[ASN] = set()
        stack = list(self.customers_of(asn))
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(
                customer for customer in self.customers_of(current) if customer not in cone
            )
        return cone

    def is_customer_of(self, asn: ASN, provider: ASN) -> bool:
        """``True`` if ``asn`` is a direct or indirect customer of ``provider``.

        Implements Phase 2 of the Fig. 4 algorithm: starting from the
        provider, repeatedly expand the selected set with direct customers
        until the target AS is found or the set stops growing.
        """
        if provider not in self._neighbors or asn not in self._neighbors:
            return False
        selected: set[ASN] = {provider}
        frontier = deque(self.customers_of(provider))
        while frontier:
            current = frontier.popleft()
            if current == asn:
                return True
            if current in selected:
                continue
            selected.add(current)
            frontier.extend(
                customer for customer in self.customers_of(current) if customer not in selected
            )
        return False

    def find_customer_path(self, provider: ASN, customer: ASN) -> list[ASN] | None:
        """Return one customer path from ``provider`` down to ``customer``.

        The path follows only provider-to-customer edges (so every
        consecutive pair obeys the export rules of Section 2.2.2) and is
        found with a depth-first search.  Returns ``None`` when the target is
        not in the provider's customer cone.
        """
        if provider not in self._neighbors or customer not in self._neighbors:
            return None
        stack: list[tuple[ASN, list[ASN]]] = [(provider, [provider])]
        visited: set[ASN] = set()
        while stack:
            current, path = stack.pop()
            if current == customer:
                return path
            if current in visited:
                continue
            visited.add(current)
            for next_customer in self.customers_of(current):
                if next_customer not in visited:
                    stack.append((next_customer, path + [next_customer]))
        return None

    def all_customer_paths(
        self, provider: ASN, customer: ASN, limit: int = 1000
    ) -> list[list[ASN]]:
        """Return every simple customer path from ``provider`` to ``customer``.

        ``limit`` bounds the number of paths returned to keep worst-case
        behaviour sane on dense graphs.
        """
        paths: list[list[ASN]] = []
        stack: list[tuple[ASN, list[ASN]]] = [(provider, [provider])]
        while stack and len(paths) < limit:
            current, path = stack.pop()
            if current == customer:
                paths.append(path)
                continue
            for next_customer in self.customers_of(current):
                if next_customer not in path:
                    stack.append((next_customer, path + [next_customer]))
        return paths

    # -- path validation ---------------------------------------------------------

    def classify_path_step(self, from_as: ASN, to_as: ASN) -> Relationship | None:
        """The relationship of ``to_as`` from ``from_as``'s point of view."""
        return self.relationship(from_as, to_as)

    def is_valley_free(self, path: Sequence[ASN] | ASPath) -> bool:
        """Check the Gao valley-free property of an AS path.

        Walking from the first AS (nearest the receiver) toward the origin, a
        valid path consists of zero or more customer→provider (uphill) steps,
        at most one peer-peer step, then zero or more provider→customer
        (downhill) steps.  Sibling steps are transparent.  Paths containing
        ASes or edges missing from the graph are rejected.
        """
        asns = list(path.deduplicate()) if isinstance(path, ASPath) else list(path)
        if len(asns) <= 1:
            return True
        # Walk from the origin toward the receiver so "uphill" comes first.
        ordered = list(reversed(asns))
        phase = "up"
        for left, right in zip(ordered, ordered[1:]):
            relationship = self.relationship(left, right)
            if relationship is None:
                return False
            if relationship is Relationship.SIBLING:
                continue
            if relationship is Relationship.PROVIDER:
                # left -> its provider: uphill step.
                if phase != "up":
                    return False
            elif relationship is Relationship.PEER:
                if phase != "up":
                    return False
                phase = "down"
            else:  # CUSTOMER: downhill step.
                phase = "down"
        return True

    def path_is_active_customer_path(self, path: Sequence[ASN]) -> bool:
        """``True`` if every consecutive pair on the path is provider→customer."""
        return all(
            self.relationship(left, right) is Relationship.CUSTOMER
            for left, right in zip(path, path[1:])
        )

    # -- conversion ---------------------------------------------------------------

    def adjacency_rows(self) -> list[tuple[ASN, tuple[tuple[ASN, Relationship], ...]]]:
        """Dump the adjacency structure in exact iteration order.

        Returns one ``(asn, ((neighbor, relationship), ...))`` row per AS,
        preserving the insertion order of both the AS map and each
        neighbor map.  :meth:`from_adjacency_rows` rebuilds a graph whose
        iteration orders (``ases()``, ``neighbor_items()``, ...) are
        identical to this one's — the property the storage codecs rely on
        so that artifacts loaded from disk behave exactly like freshly
        generated ones.
        """
        return [
            (asn, tuple(neighbors.items()))
            for asn, neighbors in self._neighbors.items()
        ]

    @classmethod
    def from_adjacency_rows(
        cls, rows: Iterable[tuple[ASN, Iterable[tuple[ASN, Relationship]]]]
    ) -> "AnnotatedASGraph":
        """Rebuild a graph from :meth:`adjacency_rows` output, order included."""
        graph = cls()
        neighbors = graph._neighbors
        for asn, row in rows:
            neighbors[asn] = dict(row)
        return graph

    def to_networkx(self):
        """Export the graph as a :class:`networkx.DiGraph` for ad-hoc analysis.

        Transit edges become directed provider→customer edges with
        ``relationship='p2c'``; peer and sibling edges become a pair of
        directed edges labelled ``'p2p'`` / ``'s2s'``.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.ases())
        for edge in self.edges():
            if edge.relationship is Relationship.CUSTOMER:
                graph.add_edge(edge.provider, edge.customer, relationship="p2c")
            elif edge.relationship is Relationship.PEER:
                graph.add_edge(edge.provider, edge.customer, relationship="p2p")
                graph.add_edge(edge.customer, edge.provider, relationship="p2p")
            else:
                graph.add_edge(edge.provider, edge.customer, relationship="s2s")
                graph.add_edge(edge.customer, edge.provider, relationship="s2s")
        return graph

    @classmethod
    def from_edges(
        cls,
        provider_customer: Iterable[tuple[ASN, ASN]] = (),
        peer_peer: Iterable[tuple[ASN, ASN]] = (),
        sibling: Iterable[tuple[ASN, ASN]] = (),
    ) -> "AnnotatedASGraph":
        """Build a graph from edge lists (convenient in tests and examples)."""
        graph = cls()
        for provider, customer in provider_customer:
            graph.add_provider_customer(provider, customer)
        for left, right in peer_peer:
            graph.add_peer_peer(left, right)
        for left, right in sibling:
            graph.add_sibling(left, right)
        return graph

    def __repr__(self) -> str:
        return f"AnnotatedASGraph(ases={len(self)}, edges={self.edge_count()})"
