"""One-pass analyzer engine over the compiled measurement index.

:class:`AnalysisEngine` exposes every :mod:`repro.core` analysis — policy
atoms, import-policy typicality (tables and IRR), LOCAL_PREF consistency,
SA-prefix inference and verification, SA causes, peer export behaviour and
community semantics — as queries over one shared
:class:`~repro.analysis.index.MeasurementIndex`.

The engine's contract is *result identity* with the legacy analyzers: for
the same dataset, every query returns objects equal to what the
corresponding :mod:`repro.core` class produces (the golden suite in
``tests/analysis/test_engine_equivalence.py`` asserts this on all five
registered scenarios).  The speed comes from three properties the legacy
analyzers lack:

* **Precomputed groupings** — collector rows grouped by prefix and by path
  member AS turn the per-SA-prefix table scans of the Case-3 and Table-7
  analyses (``entries_for_prefix``, ``paths_containing``) into list hops.
* **Shared intermediates** — customer cones, customer paths, per-glass
  sweeps, Gao-inferred graphs and SA reports are computed once and reused
  by every downstream query instead of once per analyzer.
* **Columnar loops** — the hot loops run over interned integer arrays, not
  ``Route``/``ASPath`` object graphs.

Queries are thread-safe (``run_suite`` workers share one engine); all
memoisation happens under a single lock, while result objects are built
outside it.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from itertools import combinations
from typing import TYPE_CHECKING, Iterable

from repro.core.atoms import AtomStatistics, PolicyAtom, PolicyAtomAnalyzer
from repro.core.causes import Case3Result, CauseAnalyzer, CauseBreakdown, HomingBreakdown
from repro.core.community import (
    CommunitySemantics,
    CommunityVerificationResult,
    NeighborSignature,
    bucket_of,
)
from repro.core.consistency import ConsistencyResult
from repro.core.export_policy import (
    CustomerSAReport,
    SAPrefix,
    SAPrefixReport,
)
from repro.core.import_policy import (
    IrrTypicalityResult,
    TypicalityResult,
    _TYPICAL_RANK,
    _conforms,
)
from repro.core.peer_export import PeerBehaviour, PeerExportReport
from repro.core.verification import SAVerificationResult
from repro.data.rpsl import rpsl_pref_to_local_pref
from repro.exceptions import InferenceError, SimulationError
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie
from repro.topology.graph import AnnotatedASGraph, Relationship

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.index import MeasurementIndex
    from repro.bgp.rib import LocRib
    from repro.session.stages import AnalysisParameters
    from repro.simulation.policies import CommunityPlan


#: Sentinel default distinguishing "use the ground-truth prefix ownership"
#: from an explicit ``None`` (which selects observed origins, like the
#: legacy analyzer's ``originated=None`` branch).
_GROUND_TRUTH_ORIGINATED: dict = {}


class _GlassScan:
    """Everything one sweep over a Looking Glass view's route rows yields.

    Attributes:
        neighbor_counts: per next-hop AS, the number of candidate routes it
            announces, in first-seen order (Fig. 9's quantity).
        community_votes: per next-hop AS, a vote counter over the glass AS's
            own community tags on its routes.
        consistency: per next-hop AS, a counter of LOCAL_PREF values over
            its candidate routes (the Fig. 2 modal computation).
        entry_observations: per RIB entry, the non-local ``(next hop,
            LOCAL_PREF)`` pairs in route order (Table 2's raw material).
    """

    __slots__ = (
        "neighbor_counts",
        "community_votes",
        "consistency",
        "entry_observations",
    )

    def __init__(self) -> None:
        """Start with empty accumulators; one sweep fills all of them."""
        self.neighbor_counts: dict[ASN, int] = {}
        self.community_votes: dict[ASN, Counter] = {}
        self.consistency: dict[ASN, Counter] = {}
        self.entry_observations: list[list[tuple[ASN, int]]] = []


class AnalysisEngine:
    """Runs the paper's analyses as one-pass queries over a measurement index.

    Args:
        index: the compiled :class:`~repro.analysis.index.MeasurementIndex`.
        parameters: session-level analysis knobs; only
            ``study_provider_count`` (how many Tier-1 providers the
            SA-prefix studies cover) is consulted here.
    """

    #: Default number of studied providers (the paper's AS1/AS3549/AS7018).
    DEFAULT_PROVIDER_COUNT = 3

    def __init__(
        self, index: "MeasurementIndex", parameters: "AnalysisParameters | None" = None
    ) -> None:
        """Wrap a compiled index; every memo table starts empty."""
        self.index = index
        self.graph: AnnotatedASGraph = index.graph
        self.provider_count = (
            parameters.study_provider_count
            if parameters is not None
            else self.DEFAULT_PROVIDER_COUNT
        )
        self._lock = threading.RLock()
        self._cones: dict[ASN, set[ASN]] = {}
        self._customer_paths: dict[tuple[ASN, ASN], tuple[ASN, ...] | None] = {}
        self._sa_reports: dict[tuple[ASN, bool], SAPrefixReport] = {}
        self._sa_report_maps: dict[int, dict[ASN, SAPrefixReport]] = {}
        self._provider_tables: dict[int, dict[ASN, "LocRib"]] = {}
        self._glass_scans: dict[ASN, _GlassScan] = {}
        self._semantics: dict[ASN, CommunitySemantics] = {}
        self._candidate_next_hops: dict[ASN, dict[Prefix, set[ASN]]] = {}
        self._best_tries: dict[ASN, PrefixTrie] = {}
        self._active_paths: dict[tuple[ASN, ...], bool] = {}
        self._inferred_graph: AnnotatedASGraph | None = None
        self._atoms: list[PolicyAtom] | None = None

    # -- shared intermediates ----------------------------------------------------

    def _cone(self, provider: ASN) -> set[ASN]:
        """The provider's customer cone, computed once."""
        with self._lock:
            cone = self._cones.get(provider)
        if cone is None:
            cone = self.graph.customer_cone(provider)
            with self._lock:
                self._cones[provider] = cone
        return cone

    def _customer_path(self, provider: ASN, origin: ASN) -> tuple[ASN, ...] | None:
        """One provider→customer path down to ``origin``, memoised."""
        key = (provider, origin)
        with self._lock:
            if key in self._customer_paths:
                return self._customer_paths[key]
        path = self.graph.find_customer_path(provider, origin)
        value = tuple(path) if path is not None else None
        with self._lock:
            self._customer_paths[key] = value
        return value

    def inferred_graph(self) -> AnnotatedASGraph:
        """The Gao-inferred relationship graph over the collector's AS paths.

        Computed once and shared by every verification/ablation query (the
        legacy pipeline re-ran the inference per experiment).
        """
        with self._lock:
            graph = self._inferred_graph
        if graph is None:
            from collections import Counter

            from repro.relationships.gao import GaoInference

            # Columnar fast path: the index interns paths, so the table is a
            # column of path ids.  Feed each distinct collapsed path once with
            # its row multiplicity — Gao's votes are linear in multiplicity
            # and its degrees/adjacency are set-valued, so this is exactly the
            # per-row inference without the per-row re-collapse.
            idx = self.index
            multiplicity = Counter(idx.col_path)
            graph = (
                GaoInference()
                .infer_weighted(
                    (idx.collapsed[pid], count)
                    for pid, count in multiplicity.items()
                )
                .graph
            )
            with self._lock:
                self._inferred_graph = graph
        return graph

    def providers_under_study(self, count: int | None = None) -> list[ASN]:
        """The studied (largest Tier-1) providers."""
        return self.index.providers_under_study(count or self.provider_count)

    def provider_tables(self, count: int | None = None) -> dict[ASN, "LocRib"]:
        """The studied providers' routing tables (legacy ``LocRib`` objects)."""
        key = count or self.provider_count
        with self._lock:
            tables = self._provider_tables.get(key)
        if tables is None:
            tables = {
                provider: self.index.result.table_of(provider)
                for provider in self.providers_under_study(key)
            }
            with self._lock:
                tables = self._provider_tables.setdefault(key, tables)
        return tables

    def tagging_asns(self) -> list[ASN]:
        """Looking Glass ASes that tag routes with relationship communities."""
        return self.index.tagging_asns()

    # -- policy atoms (extension experiment) ---------------------------------------

    def atoms(self) -> list[PolicyAtom]:
        """Policy atoms of the collector table, largest first."""
        with self._lock:
            if self._atoms is not None:
                return self._atoms
        idx = self.index
        vectors: dict[int, dict[ASN, int]] = {}
        col_prefix, col_vantage, col_path = idx.col_prefix, idx.col_vantage, idx.col_path
        for row in range(len(col_prefix)):
            vectors.setdefault(col_prefix[row], {})[col_vantage[row]] = col_path[row]
        atoms: dict[tuple[tuple[ASN, int], ...], PolicyAtom] = {}
        for pid, by_vantage in vectors.items():
            signature_ids = tuple(sorted(by_vantage.items()))
            atom = atoms.get(signature_ids)
            if atom is None:
                atom = PolicyAtom(
                    signature=tuple(
                        (vantage, idx.paths[path_id])
                        for vantage, path_id in signature_ids
                    )
                )
                atoms[signature_ids] = atom
            atom.prefixes.append(idx.prefixes[pid])
            if by_vantage:
                atom.origin_ases.add(idx.path_origin[next(iter(by_vantage.values()))])
        result = list(atoms.values())
        result.sort(key=lambda atom: atom.size, reverse=True)
        with self._lock:
            self._atoms = result
        return result

    def atom_statistics(
        self, atoms: list[PolicyAtom] | None = None, sa_prefixes: set[Prefix] | None = None
    ) -> AtomStatistics:
        """Summary statistics of an atom decomposition."""
        return PolicyAtomAnalyzer().statistics(
            atoms if atoms is not None else self.atoms(), sa_prefixes=sa_prefixes
        )

    # -- Looking Glass sweeps ----------------------------------------------------

    def _glass_scan(self, asn: ASN) -> _GlassScan:
        """One combined sweep over a glass's route rows, cached per glass."""
        with self._lock:
            scan = self._glass_scans.get(asn)
        if scan is not None:
            return scan
        view = self.index.glasses[asn]
        scan = _GlassScan()
        next_hop = view.route_next_hop
        local_pref = view.route_local_pref
        is_local = view.route_is_local
        own = view.route_own_communities
        offsets = view.entry_offsets
        counts = scan.neighbor_counts
        votes = scan.community_votes
        consistency = scan.consistency
        for entry_index in range(view.entry_count):
            observations: list[tuple[ASN, int]] = []
            for row in range(offsets[entry_index], offsets[entry_index + 1]):
                if is_local[row]:
                    continue
                neighbor = next_hop[row]
                pref = local_pref[row]
                counts[neighbor] = counts.get(neighbor, 0) + 1
                tags = own[row]
                if tags:
                    neighbor_votes = votes.get(neighbor)
                    if neighbor_votes is None:
                        neighbor_votes = votes[neighbor] = Counter()
                    for community in tags:
                        neighbor_votes[community] += 1
                per_neighbor = consistency.get(neighbor)
                if per_neighbor is None:
                    per_neighbor = consistency[neighbor] = Counter()
                per_neighbor[pref] += 1
                observations.append((neighbor, pref))
            scan.entry_observations.append(observations)
        with self._lock:
            self._glass_scans[asn] = scan
        return scan

    # -- import policy (Tables 2 and 3) ---------------------------------------------

    def import_typicality(
        self, relationships: AnnotatedASGraph | None = None
    ) -> list[TypicalityResult]:
        """Table 2: typical-LOCAL_PREF statistics for every Looking Glass AS."""
        relationships = relationships if relationships is not None else self.graph
        return [
            self._import_typicality_one(asn, relationships)
            for asn in self.index.looking_glass_ases
        ]

    def _import_typicality_one(
        self, asn: ASN, relationships: AnnotatedASGraph
    ) -> TypicalityResult:
        """The Table 2 row of one Looking Glass AS."""
        view = self.index.glasses[asn]
        scan = self._glass_scan(asn)
        relationship_of = relationships.relationship
        result = TypicalityResult(asn=asn)
        for entry_index, raw in enumerate(scan.entry_observations):
            observations: list[tuple[Relationship, int]] = []
            for neighbor, pref in raw:
                relationship = relationship_of(asn, neighbor)
                if relationship is None:
                    continue
                observations.append((relationship, pref))
            if len({relationship for relationship, _ in observations}) < 2:
                continue
            result.comparable_prefixes += 1
            if all(
                _conforms(rel_a, pref_a, rel_b, pref_b)
                for (rel_a, pref_a), (rel_b, pref_b) in combinations(observations, 2)
            ):
                result.typical_prefixes += 1
            elif len(result.atypical_examples) < 10:
                result.atypical_examples.append(
                    self.index.prefixes[view.entry_prefix[entry_index]]
                )
        return result

    def irr_typicality(
        self,
        min_neighbors: int = 10,
        updated_during: str | None = "2002",
        relationships: AnnotatedASGraph | None = None,
    ) -> list[IrrTypicalityResult]:
        """Table 3: typical-LOCAL_PREF statistics from the IRR rows."""
        if min_neighbors < 2:
            raise InferenceError("min_neighbors must be at least 2")
        relationships = relationships if relationships is not None else self.graph
        relationship_of = relationships.relationship
        results: list[IrrTypicalityResult] = []
        for row in self.index.irr_rows:
            if updated_during is not None and not row.last_updated.startswith(
                updated_during
            ):
                continue
            observations: list[tuple[Relationship, int]] = []
            for peer, pref in row.imports:
                if pref is None:
                    continue
                relationship = relationship_of(row.asn, peer)
                if relationship is None:
                    continue
                observations.append((relationship, rpsl_pref_to_local_pref(pref)))
            if len(observations) < min_neighbors:
                continue
            result = IrrTypicalityResult(asn=row.asn, neighbor_count=len(observations))
            for (rel_a, pref_a), (rel_b, pref_b) in combinations(observations, 2):
                if _TYPICAL_RANK[rel_a] == _TYPICAL_RANK[rel_b]:
                    continue
                result.comparable_pairs += 1
                if _conforms(rel_a, pref_a, rel_b, pref_b):
                    result.typical_pairs += 1
            if result.comparable_pairs > 0:
                results.append(result)
        return results

    # -- LOCAL_PREF consistency (Fig. 2) ----------------------------------------------

    def consistency_by_as(self) -> list[ConsistencyResult]:
        """Fig. 2(a): next-hop consistency of every Looking Glass AS."""
        return [
            self._consistency_result(asn, self._glass_scan(asn).consistency, 0)
            for asn in self.index.looking_glass_ases
        ]

    @staticmethod
    def _consistency_result(
        asn: ASN, per_neighbor: dict[ASN, Counter], router_id: int
    ) -> ConsistencyResult:
        """Fold per-neighbor LOCAL_PREF counters into a consistency result."""
        result = ConsistencyResult(asn=asn, router_id=router_id)
        for neighbor, counts in per_neighbor.items():
            mode_value, mode_count = counts.most_common(1)[0]
            result.neighbor_modes[neighbor] = mode_value
            result.total_routes += sum(counts.values())
            result.consistent_routes += mode_count
        return result

    def glass_neighbors(self, asn: ASN) -> list[ASN]:
        """Every next-hop AS visible in a Looking Glass table, sorted.

        Mirrors ``LookingGlass.neighbors()`` (which excludes the owner but
        counts next hops of every candidate route, local or not).
        """
        view = self.index.glasses[asn]
        return sorted(
            {neighbor for neighbor in view.route_next_hop if neighbor != asn}
        )

    def biggest_glass_asn(self) -> ASN:
        """The Looking Glass AS with the most prefixes (Fig. 2(b)'s AT&T role)."""
        return max(
            self.index.looking_glass_ases,
            key=lambda asn: self.index.glasses[asn].entry_count,
        )

    def consistency_by_router(
        self,
        asn: ASN | None = None,
        router_count: int = 30,
        per_prefix_override_fraction: float = 0.05,
        seed: int = 7,
    ) -> list[ConsistencyResult]:
        """Fig. 2(b): per-router consistency inside one AS.

        Replays the Looking Glass's synthetic router-view construction —
        same RNG draw sequence, same per-prefix overrides — directly over
        the best-route columns, without materialising the 30 ``LocRib``
        copies the legacy path builds.
        """
        if router_count < 1:
            raise SimulationError("router_count must be at least 1")
        if not (0.0 <= per_prefix_override_fraction <= 1.0):
            raise SimulationError("per_prefix_override_fraction must be a probability")
        if asn is None:
            asn = self.biggest_glass_asn()
        view = self.index.glasses[asn]
        rng = random.Random(seed)
        override_choices = (80, 85, 95, 115, 120)
        results: list[ConsistencyResult] = []
        next_hop = view.best_next_hop
        local_pref = view.best_local_pref
        is_local = view.best_is_local
        for router_id in range(1, router_count + 1):
            per_neighbor: dict[ASN, Counter] = {}
            for row in range(len(next_hop)):
                # The RNG is consumed for every best route — local ones
                # included — exactly like LookingGlass.router_views.
                if rng.random() < per_prefix_override_fraction:
                    pref = rng.choice(override_choices)
                else:
                    pref = local_pref[row]
                if is_local[row]:
                    continue
                neighbor = next_hop[row]
                counts = per_neighbor.get(neighbor)
                if counts is None:
                    counts = per_neighbor[neighbor] = Counter()
                counts[pref] += 1
            results.append(self._consistency_result(asn, per_neighbor, router_id))
        return results

    # -- export policy: SA prefixes (Fig. 4, Tables 5 and 6) ----------------------------

    def sa_report(
        self, provider: ASN, *, with_known_prefixes: bool = True
    ) -> SAPrefixReport:
        """The Fig. 4 SA-prefix report of one provider, cached.

        Args:
            provider: the provider AS whose table is classified.
            with_known_prefixes: when true (the experiments' configuration),
                the ground-truth prefix ownership is consulted to count
                customer prefixes missing from the table entirely.
        """
        key = (provider, with_known_prefixes)
        with self._lock:
            report = self._sa_reports.get(key)
        if report is not None:
            return report
        report = self._compute_sa_report(provider, with_known_prefixes)
        with self._lock:
            self._sa_reports[key] = report
        return report

    def _compute_sa_report(
        self, provider: ASN, with_known_prefixes: bool
    ) -> SAPrefixReport:
        """Run the Fig. 4 algorithm over one provider's best-route columns."""
        if provider not in self.graph:
            raise InferenceError(f"AS{provider} is not in the relationship graph")
        idx = self.index
        view = idx.tables[provider]
        cone = self._cone(provider)
        relationship_of = self.graph.relationship
        report = SAPrefixReport(provider=provider)
        origins, next_hops = view.best_origin, view.best_next_hop
        pids, is_local = view.best_prefix, view.best_is_local
        for row in range(view.best_count):
            if is_local[row]:
                continue
            origin = origins[row]
            if origin not in cone:
                continue
            report.customer_prefix_count += 1
            pid = pids[row]
            next_hop = next_hops[row]
            relationship = relationship_of(provider, next_hop)
            if relationship is Relationship.CUSTOMER:
                report.customer_route_prefix_count += 1
                continue
            customer_path = self._customer_path(provider, origin)
            report.sa_prefixes.append(
                SAPrefix(
                    prefix=idx.prefixes[pid],
                    origin_as=origin,
                    next_hop_as=next_hop,
                    next_hop_relationship=relationship,
                    best_route=view.best_route[row],
                    customer_path=list(customer_path) if customer_path else [],
                )
            )
        if with_known_prefixes:
            # A prefix is missing when the provider's table has no best
            # route for it: either it was never observed anywhere (no
            # interned id) or it has no row in this table.  (The legacy
            # `prefix not in seen_prefixes` guard is implied: every seen
            # prefix has a best-route row.)
            for origin, prefixes in idx.internet.originated.items():
                if origin not in cone:
                    continue
                for prefix in prefixes:
                    pid = idx.prefix_ids.get(prefix)
                    if pid is None or pid not in view.row_of_prefix:
                        report.missing_prefix_count += 1
        return report

    def sa_reports(self, count: int | None = None) -> dict[ASN, SAPrefixReport]:
        """SA-prefix reports of the studied providers (Table 5's core rows)."""
        key = count or self.provider_count
        with self._lock:
            reports = self._sa_report_maps.get(key)
        if reports is None:
            reports = {
                provider: self.sa_report(provider)
                for provider in self.providers_under_study(key)
            }
            with self._lock:
                reports = self._sa_report_maps.setdefault(key, reports)
        return reports

    def all_provider_reports(self) -> dict[ASN, SAPrefixReport]:
        """SA-prefix reports for every observed AS with customers (Table 5)."""
        customers_of = self.graph.customers_of
        return {
            asn: self.sa_report(asn)
            for asn in self.index.tables
            if customers_of(asn)
        }

    def customer_sa_reports(self, min_prefixes: int = 3) -> list[CustomerSAReport]:
        """Table 6: customers shared by all studied providers, by SA count."""
        reports = self.sa_reports()
        providers = sorted(reports)
        if not providers:
            return []
        cones = [self._cone(provider) for provider in providers]
        shared_customers = set.intersection(*cones) if cones else set()

        originated: dict[ASN, set[int]] = {}
        for provider in self.providers_under_study():
            view = self.index.tables[provider]
            for row in range(view.best_count):
                if view.best_is_local[row]:
                    continue
                originated.setdefault(view.best_origin[row], set()).add(
                    view.best_prefix[row]
                )

        sa_pids: set[int] = set()
        for report in reports.values():
            for item in report.sa_prefixes:
                pid = self.index.prefix_ids.get(item.prefix)
                if pid is not None:
                    sa_pids.add(pid)

        results: list[CustomerSAReport] = []
        for customer in sorted(shared_customers):
            pids = originated.get(customer, set())
            if len(pids) < min_prefixes:
                continue
            results.append(
                CustomerSAReport(
                    customer=customer,
                    prefix_count=len(pids),
                    sa_prefix_count=sum(1 for pid in pids if pid in sa_pids),
                )
            )
        results.sort(key=lambda row: row.sa_prefix_count, reverse=True)
        return results

    # -- export policy toward peers (Table 10) ---------------------------------------

    def _candidates(self, asn: ASN) -> dict[Prefix, set[ASN]]:
        """Per prefix, the non-local candidate next hops in an AS's table."""
        with self._lock:
            cached = self._candidate_next_hops.get(asn)
        if cached is not None:
            return cached
        table = self.index.result.table_of(asn)
        candidates: dict[Prefix, set[ASN]] = {}
        for entry in table.entries():
            hops = candidates.setdefault(entry.prefix, set())
            for route in entry.routes:
                if not route.is_local:
                    hops.add(route.next_hop_as)
        with self._lock:
            self._candidate_next_hops[asn] = candidates
        return candidates

    def peer_export_report(
        self,
        asn: ASN,
        originated: dict[ASN, list[Prefix]] | None = _GROUND_TRUTH_ORIGINATED,
        full_export_threshold: float = 1.0,
    ) -> PeerExportReport:
        """Table 10: how the AS's peers announce their own prefixes to it.

        ``originated`` defaults to the ground-truth prefix ownership (what
        the experiments pass); an explicit ``None`` falls back to the origins
        observed in the table, mirroring the legacy analyzer.
        """
        idx = self.index
        if originated is _GROUND_TRUTH_ORIGINATED:
            originated = idx.internet.originated
        report = PeerExportReport(asn=asn, full_export_threshold=full_export_threshold)
        peers = [
            neighbor
            for neighbor in self.graph.neighbors(asn)
            if self.graph.relationship(asn, neighbor) is Relationship.PEER
        ]
        candidates = self._candidates(asn)
        view = idx.tables[asn]
        for peer in sorted(peers):
            if originated is not None:
                peer_prefixes = list(originated.get(peer, []))
            else:
                peer_prefixes = [
                    idx.prefixes[view.best_prefix[row]]
                    for row in range(view.best_count)
                    if view.best_origin[row] == peer
                ]
            if not peer_prefixes:
                continue
            behaviour = PeerBehaviour(peer=peer, originated_prefixes=len(peer_prefixes))
            for prefix in peer_prefixes:
                if peer in candidates.get(prefix, ()):
                    behaviour.directly_received += 1
            report.peers.append(behaviour)
        return report

    def peer_export_reports(
        self,
        originated: dict[ASN, list[Prefix]] | None = _GROUND_TRUTH_ORIGINATED,
        full_export_threshold: float = 1.0,
    ) -> dict[ASN, PeerExportReport]:
        """Table 10 for every studied provider."""
        return {
            asn: self.peer_export_report(asn, originated, full_export_threshold)
            for asn in self.providers_under_study()
        }

    # -- causes of SA prefixes (Tables 8 and 9, Case 3) -------------------------------

    def homing_breakdown(self, provider: ASN) -> HomingBreakdown:
        """Table 8: homing of the provider's SA-prefix origins."""
        return CauseAnalyzer(self.graph).homing_breakdown(self.sa_report(provider))

    def _best_trie(self, provider: ASN) -> PrefixTrie:
        """A radix trie over the provider's best routes, built once."""
        with self._lock:
            trie = self._best_tries.get(provider)
        if trie is not None:
            return trie
        trie = PrefixTrie()
        view = self.index.tables[provider]
        for row in range(view.best_count):
            trie.insert(self.index.prefixes[view.best_prefix[row]], view.best_route[row])
        with self._lock:
            self._best_tries[provider] = trie
        return trie

    def cause_breakdown(self, provider: ASN) -> CauseBreakdown:
        """Table 9: SA prefixes explained by splitting / aggregating / selective."""
        report = self.sa_report(provider)
        trie = self._best_trie(provider)
        relationship_of = self.graph.relationship
        breakdown = CauseBreakdown(
            provider=provider, sa_prefix_count=report.sa_prefix_count
        )
        for item in report.sa_prefixes:
            is_splitting = False
            for other_prefix, other_route in (
                *trie.covering(item.prefix),
                *trie.covered(item.prefix),
            ):
                if other_prefix == item.prefix:
                    continue
                if other_route.origin_as != item.origin_as:
                    continue
                if (
                    relationship_of(provider, other_route.next_hop_as)
                    is Relationship.CUSTOMER
                ):
                    is_splitting = True
                    break
            is_aggregating = any(
                covering_prefix.length < item.prefix.length
                for covering_prefix, _ in trie.covering(item.prefix)
            )
            if is_splitting:
                breakdown.splitting_count += 1
            if is_aggregating:
                breakdown.aggregating_count += 1
            if not is_splitting and not is_aggregating:
                breakdown.selective_count += 1
        return breakdown

    def case3(self, provider: ASN) -> Case3Result:
        """Section 5.1.5 Case 3 for one provider, via the by-prefix grouping."""
        idx = self.index
        report = self.sa_report(provider)
        result = Case3Result(
            provider=provider, sa_prefix_count=report.sa_prefix_count
        )
        for item in report.sa_prefixes:
            if not item.customer_path or len(item.customer_path) < 2:
                continue
            direct_provider = item.customer_path[-2]
            pid = idx.prefix_ids.get(item.prefix)
            rows = idx.rows_by_prefix.get(pid, []) if pid is not None else []
            observed_paths = [idx.collapsed[idx.col_path[row]] for row in rows]
            if not observed_paths:
                continue
            result.identified_count += 1
            exported = any(
                origin_index > 0 and path[origin_index - 1] == direct_provider
                for path in observed_paths
                for origin_index in [len(path) - 1]
                if path and path[-1] == item.origin_as
            )
            if exported:
                result.exported_to_direct_provider += 1
            else:
                result.not_exported_to_direct_provider += 1
        return result

    # -- community semantics (Appendix, Fig. 9, Tables 4 and 11) ------------------------

    def prefix_counts_by_rank(self, asn: ASN) -> list[tuple[ASN, int]]:
        """Fig. 9: (next-hop AS, prefix count) sorted by non-increasing count."""
        counts = self._glass_scan(asn).neighbor_counts
        return sorted(counts.items(), key=lambda item: item[1], reverse=True)

    def neighbor_signatures(self, asn: ASN) -> dict[ASN, NeighborSignature]:
        """Each neighbor's prefix count and dominant tagged community."""
        scan = self._glass_scan(asn)
        signatures: dict[ASN, NeighborSignature] = {}
        for neighbor, count in scan.neighbor_counts.items():
            votes = scan.community_votes.get(neighbor)
            community = votes.most_common(1)[0][0] if votes else None
            signatures[neighbor] = NeighborSignature(
                neighbor=neighbor, prefix_count=count, community=community
            )
        return signatures

    def infer_semantics(
        self,
        asn: ASN,
        published_plan: "CommunityPlan | None" = None,
        has_providers: bool | None = None,
        full_table_fraction: float = 0.8,
        customer_prefix_threshold: int = 3,
    ) -> CommunitySemantics:
        """Infer what each community value range means for one tagging AS.

        Mirrors :meth:`repro.core.community.CommunityAnalyzer.infer_semantics`
        (default parameters) over the cached per-glass sweep; the
        default-parameter result is memoised per AS.
        """
        cacheable = (
            published_plan is None
            and has_providers is None
            and full_table_fraction == 0.8
            and customer_prefix_threshold == 3
        )
        if cacheable:
            with self._lock:
                cached = self._semantics.get(asn)
            if cached is not None:
                return cached
        semantics = CommunitySemantics(asn=asn)
        semantics.signatures = self.neighbor_signatures(asn)
        if not semantics.signatures:
            return semantics
        if published_plan is not None:
            for signature in semantics.signatures.values():
                if signature.community is None:
                    continue
                relationship = published_plan.relationship_of(signature.community)
                if relationship is not None:
                    semantics.value_to_relationship[bucket_of(signature.community)] = (
                        relationship
                    )
            return semantics

        total_prefixes = self.index.glasses[asn].entry_count
        ranked = sorted(
            semantics.signatures.values(), key=lambda s: s.prefix_count, reverse=True
        )
        provider_anchors = [
            s for s in ranked if s.prefix_count >= full_table_fraction * total_prefixes
        ]
        if has_providers is None:
            has_providers = bool(provider_anchors)
        customer_anchors = [
            s for s in ranked if s.prefix_count <= customer_prefix_threshold
        ]
        peer_floor = max(customer_prefix_threshold * 4, int(0.02 * total_prefixes))
        non_provider = [s for s in ranked if s not in provider_anchors]
        peer_candidates = [s for s in non_provider if s.prefix_count >= peer_floor]
        peer_anchors = (
            peer_candidates[: max(1, len(peer_candidates) // 3)] if peer_candidates else []
        )
        for anchor_set, relationship in (
            (provider_anchors if has_providers else [], Relationship.PROVIDER),
            (peer_anchors, Relationship.PEER),
            (customer_anchors, Relationship.CUSTOMER),
        ):
            for signature in anchor_set:
                if signature.community is None:
                    continue
                bucket = bucket_of(signature.community)
                if bucket not in semantics.value_to_relationship:
                    semantics.value_to_relationship[bucket] = relationship
                    semantics.anchors[signature.neighbor] = relationship
        if cacheable:
            with self._lock:
                self._semantics[asn] = semantics
        return semantics

    def verify_relationships(
        self,
        relationships: AnnotatedASGraph | None = None,
        published_plans: dict[ASN, "CommunityPlan"] | None = None,
    ) -> list[CommunityVerificationResult]:
        """Table 4: verify each tagging AS's relationships via communities.

        Defaults to the Gao-inferred graph, like the paper (it verifies
        *inferred* relationships).
        """
        relationships = (
            relationships if relationships is not None else self.inferred_graph()
        )
        published_plans = published_plans or {}
        results: list[CommunityVerificationResult] = []
        for asn in self.tagging_asns():
            semantics = self.infer_semantics(
                asn, published_plan=published_plans.get(asn)
            )
            if not semantics.value_to_relationship:
                continue
            result = CommunityVerificationResult(asn=asn)
            for neighbor, signature in semantics.signatures.items():
                result.neighbor_count += 1
                derived = semantics.relationship_for_neighbor(neighbor)
                if derived is None:
                    continue
                graph_relationship = relationships.relationship(asn, neighbor)
                if graph_relationship is None:
                    continue
                result.verifiable_neighbors += 1
                if graph_relationship is derived or (
                    graph_relationship is Relationship.SIBLING
                    and derived is Relationship.CUSTOMER
                ):
                    result.verified_neighbors += 1
                else:
                    result.mismatches.append(neighbor)
            results.append(result)
        return results

    # -- SA-prefix verification (Table 7) ----------------------------------------------

    def _customer_path_is_active(self, path: tuple[ASN, ...]) -> bool:
        """Whether a customer path is traversed by observed routes, memoised."""
        with self._lock:
            cached = self._active_paths.get(path)
        if cached is not None:
            return cached
        idx = self.index
        needles = [path, path[1:]] if len(path) > 2 else [path]
        active = False
        for row in idx.rows_by_member.get(path[-1], ()):
            collapsed = idx.collapsed[idx.col_path[row]]
            for needle in needles:
                if not needle:
                    continue
                width = len(needle)
                for start in range(len(collapsed) - width + 1):
                    if collapsed[start : start + width] == needle:
                        active = True
                        break
                if active:
                    break
            if active:
                break
        if not active:
            pairs = (
                list(zip(path[1:], path[2:]))
                if len(path) > 2
                else list(zip(path, path[1:]))
            )
            active = bool(pairs) and all(pair in idx.adjacency for pair in pairs)
        with self._lock:
            self._active_paths[path] = active
        return active

    def verify_sa_report(
        self,
        report: SAPrefixReport,
        verified_neighbor_ases: set[ASN] | None = None,
    ) -> SAVerificationResult:
        """Table 7: verify one provider's SA prefixes against observed paths."""
        result = SAVerificationResult(provider=report.provider)
        provider = report.provider
        relationship_of = self.graph.relationship
        for item in report.sa_prefixes:
            result.sa_prefix_count += 1
            step1_ok = item.next_hop_relationship is not None
            if verified_neighbor_ases is not None:
                step1_ok = step1_ok and item.next_hop_as in verified_neighbor_ases
            if not step1_ok:
                result.step1_failures += 1
                continue
            if not item.customer_path:
                result.step2_failures += 1
                continue
            if len(item.customer_path) == 2:
                step2_ok = (
                    relationship_of(provider, item.origin_as) is Relationship.CUSTOMER
                )
                if verified_neighbor_ases is not None:
                    step2_ok = step2_ok and item.origin_as in verified_neighbor_ases
            else:
                step2_ok = self._customer_path_is_active(tuple(item.customer_path))
            if step2_ok:
                result.verified_count += 1
            else:
                result.step2_failures += 1
        return result

    def verify_sa_prefixes(
        self,
        reports: dict[ASN, SAPrefixReport] | None = None,
        verified_neighbor_ases: dict[ASN, set[ASN]] | None = None,
    ) -> dict[ASN, SAVerificationResult]:
        """Table 7 for several providers (defaults to the studied ones)."""
        reports = reports if reports is not None else self.sa_reports()
        verified_neighbor_ases = verified_neighbor_ases or {}
        return {
            provider: self.verify_sa_report(
                report, verified_neighbor_ases.get(provider)
            )
            for provider, report in reports.items()
        }

    # -- ablation support ---------------------------------------------------------

    def strict_sa_count(self, provider: ASN) -> int:
        """SA prefixes with *no* customer candidate route at all (ablation)."""
        candidates = self._candidates(provider)
        relationship_of = self.graph.relationship
        report = self.sa_report(provider)
        strict = 0
        for item in report.sa_prefixes:
            hops: Iterable[ASN] = candidates.get(item.prefix, ())
            if not any(
                relationship_of(provider, hop) is Relationship.CUSTOMER for hop in hops
            ):
                strict += 1
        return strict
