"""Unit tests for repro.net.asn."""

import pytest

from repro.exceptions import ASPathError
from repro.net.asn import (
    AS_TRANS,
    format_asn,
    is_private_asn,
    is_public_asn,
    parse_asn,
)


class TestParseAsn:
    def test_plain(self):
        assert parse_asn("7018") == 7018

    def test_int_passthrough(self):
        assert parse_asn(1239) == 1239

    def test_asdot(self):
        assert parse_asn("1.0") == 65536
        assert parse_asn("1.10") == 65546

    def test_whitespace_tolerated(self):
        assert parse_asn("  701 ") == 701

    def test_rejects_negative(self):
        with pytest.raises(ASPathError):
            parse_asn(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ASPathError):
            parse_asn(2**32)

    def test_rejects_garbage(self):
        with pytest.raises(ASPathError):
            parse_asn("AS7018x")

    def test_rejects_bad_asdot(self):
        with pytest.raises(ASPathError):
            parse_asn("70000.1")


class TestFormatAsn:
    def test_plain(self):
        assert format_asn(7018) == "7018"

    def test_dotted_only_for_4byte(self):
        assert format_asn(7018, dotted=True) == "7018"
        assert format_asn(65546, dotted=True) == "1.10"

    def test_roundtrip_dotted(self):
        assert parse_asn(format_asn(131072, dotted=True)) == 131072

    def test_rejects_out_of_range(self):
        with pytest.raises(ASPathError):
            format_asn(-5)


class TestClassification:
    def test_private_range(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(64511)
        assert not is_private_asn(65535)

    def test_public(self):
        assert is_public_asn(7018)
        assert not is_public_asn(0)
        assert not is_public_asn(64512)
        assert not is_public_asn(AS_TRANS)
