"""Table 1 — characteristics of the dataset's vantage points."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register


@register
class Table1Experiment(Experiment):
    """Inventory of the collector peers and Looking Glass ASes (Section 3)."""

    experiment_id = "table1"
    title = "Characteristics of the collector and Looking Glass vantage points"
    paper_reference = "Table 1, Section 3"
    requires = frozenset({Stage.OBSERVATION})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        result.headers = ["AS", "name", "degree", "tier", "location", "looking glass", "collector peer"]
        for asn in sorted(dataset.as_info):
            info = dataset.as_info[asn]
            result.rows.append(
                [
                    f"AS{info.asn}",
                    info.name,
                    info.degree,
                    info.tier,
                    info.location,
                    "yes" if info.is_looking_glass else "",
                    "yes" if info.is_vantage else "",
                ]
            )
        result.notes.append(
            "Paper: 68 tables (56 RouteViews peers + 15 Looking Glass ASes incl. 3 Tier-1s); "
            f"here: {len(dataset.vantage_ases)} collector peers + "
            f"{len(dataset.looking_glass_ases)} Looking Glass ASes on the synthetic Internet."
        )
        return result
