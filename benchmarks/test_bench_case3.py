"""Benchmark: reproduce the Section 5.1.5 Case 3 analysis.

Paper shape: most SA prefixes can be classified from the collector's paths,
and for the majority of them the customer does *not* announce the prefix to
the studied provider's customer branch (79% in the paper).
"""


def test_bench_case3(benchmark, run_experiment):
    result = run_experiment(benchmark, "case3")
    assert result.rows
    identified = [float(row[2].rstrip("%")) for row in result.rows]
    not_exported = [float(row[4].rstrip("%")) for row in result.rows]
    exported = [float(row[3].rstrip("%")) for row in result.rows]
    assert sum(identified) / len(identified) > 60.0
    assert sum(not_exported) > sum(exported)
