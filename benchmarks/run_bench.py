"""Propagation-engine benchmark: engine × scenario × workers → JSON.

Times the legacy and fast propagation engines over the registered scenario
presets and writes a machine-readable report (default:
``BENCH_propagation.json`` at the repository root) so perf changes are
recorded in-repo and visible per-PR via the CI smoke job.

Usage::

    python benchmarks/run_bench.py                       # small + standard
    python benchmarks/run_bench.py --scenario standard --workers 1 2 4
    python benchmarks/run_bench.py --scenario small --quick
    python benchmarks/run_bench.py --full                # adds the large scenario

The fast engine's wall time includes topology compilation (reported
separately as ``compile_seconds``) so the speedup numbers are end-to-end
honest.  Every timed run's message count is cross-checked against the
legacy engine's — a benchmark that drifts from the golden behaviour fails
loudly instead of reporting a meaningless speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.session.cache import StageCache  # noqa: E402
from repro.session.scenarios import get_scenario  # noqa: E402
from repro.simulation.fastpath import FastPropagationEngine, compile_topology  # noqa: E402
from repro.simulation.propagation import PropagationEngine  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_propagation.json"


def _time_legacy(internet, plan, repeats: int) -> tuple[float, int]:
    best = None
    messages = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = PropagationEngine(
            internet, plan.assignment, observed_ases=plan.observed_ases
        ).run()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
        messages = result.message_count
    return best, messages


def _time_fast(internet, plan, workers: int, repeats: int) -> tuple[float, float, int]:
    best = None
    best_compile = None
    messages = 0
    for _ in range(repeats):
        started = time.perf_counter()
        compiled = compile_topology(internet, plan.assignment, plan.observed_ases)
        compile_seconds = time.perf_counter() - started
        engine = FastPropagationEngine(
            internet,
            plan.assignment,
            observed_ases=plan.observed_ases,
            workers=workers,
            compiled=compiled,
        )
        result = engine.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
            best_compile = compile_seconds
        messages = result.message_count
    return best, best_compile, messages


def run_benchmarks(
    scenarios: list[str], workers: list[int], repeats: int
) -> list[dict]:
    results = []
    for name in scenarios:
        study = get_scenario(name).study(cache=StageCache())
        internet = study.topology()
        plan = study.policies()
        print(f"[{name}] timing legacy engine ...", file=sys.stderr)
        legacy_seconds, legacy_messages = _time_legacy(internet, plan, repeats)
        results.append(
            {
                "scenario": name,
                "engine": "legacy",
                "workers": 1,
                "seconds": round(legacy_seconds, 4),
                "compile_seconds": 0.0,
                "messages": legacy_messages,
                "speedup_vs_legacy": 1.0,
            }
        )
        print(
            f"[{name}] legacy: {legacy_seconds:.2f}s ({legacy_messages} messages)",
            file=sys.stderr,
        )
        for worker_count in workers:
            print(
                f"[{name}] timing fast engine (workers={worker_count}) ...",
                file=sys.stderr,
            )
            fast_seconds, compile_seconds, fast_messages = _time_fast(
                internet, plan, worker_count, repeats
            )
            if fast_messages != legacy_messages:
                raise SystemExit(
                    f"engine divergence on {name!r}: legacy processed "
                    f"{legacy_messages} messages, fast {fast_messages}"
                )
            results.append(
                {
                    "scenario": name,
                    "engine": "fast",
                    "workers": worker_count,
                    "seconds": round(fast_seconds, 4),
                    "compile_seconds": round(compile_seconds, 4),
                    "messages": fast_messages,
                    "speedup_vs_legacy": round(legacy_seconds / fast_seconds, 2),
                }
            )
            print(
                f"[{name}] fast(workers={worker_count}): {fast_seconds:.2f}s "
                f"({legacy_seconds / fast_seconds:.2f}x)",
                file=sys.stderr,
            )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="scenario preset to benchmark (repeatable; default: small, standard)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1],
        help="fast-engine worker counts to benchmark (default: 1)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="repetitions per cell, best kept"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: force a single repeat of the given scenarios",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="benchmark small, standard and large (overrides --scenario)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT.name})",
    )
    args = parser.parse_args(argv)

    scenarios = args.scenarios or ["small", "standard"]
    if args.full:
        scenarios = ["small", "standard", "large"]
    repeats = 1 if args.quick else max(1, args.repeats)

    results = run_benchmarks(scenarios, args.workers, repeats)
    report = {
        "meta": {
            "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "repeats": repeats,
            "quick": args.quick,
        },
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
