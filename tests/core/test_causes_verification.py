"""Tests for cause attribution (Tables 8, 9, Case 3) and verification (Tables 4, 7)."""

from repro.core.causes import CauseAnalyzer
from repro.core.community import CommunityAnalyzer
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.core.verification import Verifier
from repro.simulation.scenario import figure5_scenario


class TestHomingBreakdown:
    def test_dataset_mostly_multihomed(self, graph, sa_reports):
        analyzer = CauseAnalyzer(graph)
        total_multi = 0
        total_single = 0
        for report in sa_reports.values():
            breakdown = analyzer.homing_breakdown(report)
            total_multi += breakdown.multihomed_count
            total_single += breakdown.singlehomed_count
            assert breakdown.multihomed_count + breakdown.singlehomed_count == len(
                report.origins_with_sa_prefixes()
            )
        assert total_multi > total_single

    def test_multihomed_origin_in_figure5(self):
        scenario = figure5_scenario()
        result = scenario.run()
        analyzer = ExportPolicyAnalyzer(scenario.internet.graph)
        report = analyzer.find_sa_prefixes(1, result.table_of(1))
        breakdown = CauseAnalyzer(scenario.internet.graph).homing_breakdown(report)
        assert breakdown.multihomed_origins == {6280}
        assert breakdown.percent_multihomed == 100.0


class TestCauseBreakdown:
    def test_counts_partition_consistently(self, graph, sa_reports, provider_tables):
        analyzer = CauseAnalyzer(graph)
        for provider, report in sa_reports.items():
            breakdown = analyzer.cause_breakdown(report, provider_tables[provider])
            assert breakdown.sa_prefix_count == report.sa_prefix_count
            assert breakdown.selective_count <= breakdown.sa_prefix_count
            assert breakdown.splitting_count <= breakdown.sa_prefix_count
            assert breakdown.aggregating_count <= breakdown.sa_prefix_count
            # Every SA prefix not explained by splitting or aggregating is selective.
            assert breakdown.selective_count >= (
                breakdown.sa_prefix_count
                - breakdown.splitting_count
                - breakdown.aggregating_count
            )

    def test_selective_announcing_is_dominant_cause(self, graph, sa_reports, provider_tables):
        """The paper's headline finding for Table 9."""
        analyzer = CauseAnalyzer(graph)
        total_selective = 0
        total_other = 0
        for provider, report in sa_reports.items():
            breakdown = analyzer.cause_breakdown(report, provider_tables[provider])
            total_selective += breakdown.selective_count
            total_other += breakdown.splitting_count + breakdown.aggregating_count
        assert total_selective > total_other


class TestCase3:
    def test_percentages_are_consistent(self, dataset, graph, sa_reports):
        analyzer = CauseAnalyzer(graph)
        for report in sa_reports.values():
            case3 = analyzer.case3_analysis(report, dataset.collector)
            assert case3.identified_count <= case3.sa_prefix_count
            assert (
                case3.exported_to_direct_provider + case3.not_exported_to_direct_provider
                == case3.identified_count
            )
            if case3.identified_count:
                assert abs(
                    case3.percent_exported + case3.percent_not_exported - 100.0
                ) < 1e-9

    def test_majority_not_exported_to_direct_provider(self, dataset, graph, sa_reports):
        analyzer = CauseAnalyzer(graph)
        exported = 0
        not_exported = 0
        for report in sa_reports.values():
            case3 = analyzer.case3_analysis(report, dataset.collector)
            exported += case3.exported_to_direct_provider
            not_exported += case3.not_exported_to_direct_provider
        assert not_exported > exported


class TestRelationshipVerification:
    def test_table4_high_verification_rate(self, dataset, graph, glasses):
        tagging = [
            glass
            for glass in glasses
            if dataset.assignment.policies[glass.asn].community_plan is not None
        ]
        assert tagging, "expected tagging Looking Glass ASes"
        verifier = Verifier(graph, CommunityAnalyzer())
        results = verifier.verify_relationships(tagging)
        assert results
        verified = sum(r.verified_neighbors for r in results)
        verifiable = sum(r.verifiable_neighbors for r in results)
        assert verifiable > 0
        assert verified / verifiable > 0.85

    def test_published_plan_improves_or_matches(self, dataset, graph, glasses):
        tagging = [
            glass
            for glass in glasses
            if dataset.assignment.policies[glass.asn].community_plan is not None
        ]
        plans = {
            glass.asn: dataset.assignment.policies[glass.asn].community_plan
            for glass in tagging
        }
        verifier = Verifier(graph, CommunityAnalyzer())
        with_plan = verifier.verify_relationships(tagging, published_plans=plans)
        without_plan = verifier.verify_relationships(tagging)
        rate_with = sum(r.verified_neighbors for r in with_plan) / max(
            1, sum(r.verifiable_neighbors for r in with_plan)
        )
        rate_without = sum(r.verified_neighbors for r in without_plan) / max(
            1, sum(r.verifiable_neighbors for r in without_plan)
        )
        assert rate_with >= rate_without - 1e-9
        assert rate_with > 0.95


class TestSAVerification:
    def test_table7_most_sa_prefixes_verified(self, dataset, graph, sa_reports):
        verifier = Verifier(graph)
        results = verifier.verify_many(sa_reports, dataset.collector)
        total = sum(r.sa_prefix_count for r in results.values())
        verified = sum(r.verified_count for r in results.values())
        assert total > 0
        assert verified / total > 0.8

    def test_verification_counts_consistent(self, dataset, graph, sa_reports):
        verifier = Verifier(graph)
        for provider, report in sa_reports.items():
            result = verifier.verify_sa_prefixes(report, dataset.collector)
            assert result.provider == provider
            assert (
                result.verified_count + result.step1_failures + result.step2_failures
                == result.sa_prefix_count
            )

    def test_restricting_verified_neighbors_lowers_step1(self, dataset, graph, sa_reports):
        verifier = Verifier(graph)
        provider, report = next(iter(sa_reports.items()))
        unrestricted = verifier.verify_sa_prefixes(report, dataset.collector)
        restricted = verifier.verify_sa_prefixes(
            report, dataset.collector, verified_neighbor_ases=set()
        )
        if report.sa_prefix_count:
            assert restricted.step1_failures >= unrestricted.step1_failures
            assert restricted.verified_count <= unrestricted.verified_count

    def test_figure5_sa_prefix_verifies_when_customer_path_is_active(self):
        from repro.net.prefix import Prefix
        from repro.simulation.collector import RouteViewsCollector

        scenario = figure5_scenario()
        # A second prefix announced to *both* providers makes the customer
        # path AS1-AS852-AS6280 active, which is what step 2 requires.
        scenario.internet.originated[6280].append(Prefix.parse("10.62.81.0/24"))
        result = scenario.run()
        graph = scenario.internet.graph
        report = ExportPolicyAnalyzer(graph).find_sa_prefixes(1, result.table_of(1))
        collector = RouteViewsCollector(vantage_ases=[1, 3549]).collect(result)
        verification = Verifier(graph).verify_sa_prefixes(report, collector)
        assert verification.sa_prefix_count == 1
        assert verification.verified_count == 1

    def test_figure5_sa_prefix_unverified_without_active_path(self):
        """With no other prefix traversing the customer path, step 2 cannot
        confirm the indirect customer relationship — the paper's method
        correctly reports the SA prefix as unverified."""
        from repro.simulation.collector import RouteViewsCollector

        scenario = figure5_scenario()
        result = scenario.run()
        graph = scenario.internet.graph
        report = ExportPolicyAnalyzer(graph).find_sa_prefixes(1, result.table_of(1))
        collector = RouteViewsCollector(vantage_ases=[1, 3549]).collect(result)
        verification = Verifier(graph).verify_sa_prefixes(report, collector)
        assert verification.sa_prefix_count == 1
        assert verification.step2_failures == 1
