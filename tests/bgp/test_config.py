"""Unit tests for the Cisco-like configuration model."""

import pytest

from repro.bgp.config import BgpConfig, NeighborConfig, example_import_config
from repro.bgp.policy import MatchCondition, PrefixList, RouteMap, SetActions
from repro.bgp.route import Route
from repro.exceptions import ConfigError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def route(prefix="10.1.1.0/24", path="65504 9"):
    return Route(prefix=Prefix.parse(prefix), as_path=ASPath.parse(path))


class TestExampleConfig:
    def test_matches_paper_snippet(self):
        config = example_import_config()
        text = config.render()
        assert "router bgp 65503" in text
        assert "neighbor 192.1.250.23 remote-as 65504" in text
        assert "neighbor 192.1.250.23 route-map isp1 in" in text
        assert "access-list 1 permit 0.0.0.0 255.255.255.255" in text
        assert "set local-preference 90" in text

    def test_inbound_route_map_applies_local_pref(self):
        config = example_import_config()
        rmap = config.inbound_route_map("192.1.250.23")
        assert rmap is not None
        assert rmap.apply(route()).local_pref == 90

    def test_neighbor_by_as(self):
        config = example_import_config()
        assert config.neighbor_by_as(65504).address == "192.1.250.23"
        assert config.neighbor_by_as(1) is None


class TestRenderParseRoundtrip:
    def build_config(self):
        config = BgpConfig(local_as=7018)
        config.add_network("12.0.0.0/19")
        config.add_neighbor(
            NeighborConfig(
                address="192.0.2.1",
                remote_as=1239,
                route_map_in="from-sprint",
                route_map_out="to-sprint",
                description="peer Sprint",
            )
        )
        plist = PrefixList("cust-routes").permit("12.10.0.0/19", le=24)
        rmap_in = RouteMap("from-sprint").permit(
            sequence=10,
            match=MatchCondition(prefix_list=plist),
            set_actions=SetActions(local_pref=90),
        )
        rmap_in.permit(sequence=20, set_actions=SetActions(local_pref=80))
        config.add_route_map(rmap_in)
        config.add_route_map(RouteMap("to-sprint").permit())
        return config

    def test_roundtrip_preserves_semantics(self):
        original = self.build_config()
        parsed = BgpConfig.parse(original.render())
        assert parsed.local_as == 7018
        assert parsed.networks == [Prefix.parse("12.0.0.0/19")]
        neighbor = parsed.neighbors["192.0.2.1"]
        assert neighbor.remote_as == 1239
        assert neighbor.route_map_in == "from-sprint"
        assert neighbor.route_map_out == "to-sprint"
        assert neighbor.description == "peer Sprint"
        rmap = parsed.route_maps["from-sprint"]
        matched = rmap.apply(route(prefix="12.10.1.0/24", path="1239 9"))
        assert matched.local_pref == 90
        fallthrough = rmap.apply(route(prefix="100.0.0.0/16", path="1239 9"))
        assert fallthrough.local_pref == 80

    def test_roundtrip_of_paper_example(self):
        parsed = BgpConfig.parse(example_import_config().render())
        rmap = parsed.inbound_route_map("192.1.250.23")
        assert rmap.apply(route()).local_pref == 90

    def test_parse_prepend_and_community(self):
        text = "\n".join(
            [
                "router bgp 65500",
                "route-map out-pad permit 10",
                " set as-path prepend 65500 65500",
                " set community 65500:70 additive",
                " set metric 30",
            ]
        )
        config = BgpConfig.parse(text)
        clause = config.route_maps["out-pad"].clauses[0]
        assert clause.set_actions.prepend == (65500, 2)
        assert clause.set_actions.med == 30
        assert str(clause.set_actions.add_communities[0]) == "65500:70"


class TestParserErrors:
    def test_unknown_line_rejected(self):
        with pytest.raises(ConfigError):
            BgpConfig.parse("router bgp 1\nfoobar baz\n")

    def test_match_outside_clause_rejected(self):
        with pytest.raises(ConfigError):
            BgpConfig.parse("router bgp 1\n match ip address 1\n")

    def test_missing_router_stanza_rejected(self):
        with pytest.raises(ConfigError):
            BgpConfig.parse("!\n")

    def test_neighbor_before_router_rejected(self):
        with pytest.raises(ConfigError):
            BgpConfig.parse("neighbor 10.0.0.1 remote-as 5\n")

    def test_bad_route_map_direction_rejected(self):
        with pytest.raises(ConfigError):
            BgpConfig.parse(
                "router bgp 1\n neighbor 10.0.0.1 remote-as 5\n"
                " neighbor 10.0.0.1 route-map x sideways\n"
            )
