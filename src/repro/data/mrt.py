"""A binary MRT-style RIB dump format.

Oregon RouteViews publishes routing tables as MRT ``TABLE_DUMP`` files.  The
offline substitute keeps the same shape — a stream of length-prefixed binary
records, one per (prefix, peer) pair, each carrying the peer AS, the AS path,
LOCAL_PREF, MED, origin and communities — so that the analysis pipeline
exercises a real serialisation boundary: tables produced by the simulator are
written to disk and read back before any inference runs on them.

The format (all integers big-endian):

==========  =====  ====================================================
field       bytes  meaning
==========  =====  ====================================================
magic       4      ``b"RPRM"``
version     2      format version (1)
record ...         repeated records until end of stream
==========  =====  ====================================================

Each record::

    record_length   u32   total bytes that follow in this record
    view_as         u32   the AS whose table this row belongs to
    peer_as         u32   the neighbor the route was learned from
    prefix          u32   network address
    prefix_len      u8
    origin          u8    0=IGP 1=EGP 2=INCOMPLETE
    local_pref      u32
    med             u32
    flags           u8    bit0: route is the best route, bit1: local route
    path_len        u16   number of ASes in the AS path
    path            u32 × path_len
    community_len   u16   number of communities
    communities     u32 × community_len (asn<<16 | value)
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Iterator

from repro.bgp.attributes import Community, CommunitySet, Origin
from repro.bgp.rib import LocRib
from repro.bgp.route import Route, RouteSource
from repro.exceptions import DataFormatError
from repro.net.asn import ASN
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

MAGIC = b"RPRM"
VERSION = 1

_HEADER = struct.Struct(">4sH")
_RECORD_FIXED = struct.Struct(">IIIBBIIBH")

_FLAG_BEST = 0x01
_FLAG_LOCAL = 0x02


@dataclass
class RibEntryRecord:
    """One decoded MRT-style record.

    Attributes:
        view_as: the AS whose table the record belongs to.
        route: the decoded route.
        is_best: whether the route was the view AS's best route.
    """

    view_as: ASN
    route: Route
    is_best: bool = False


class MrtWriter:
    """Encodes routing tables into the binary dump format."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._wrote_header = False

    def write_table(self, table: LocRib) -> int:
        """Write every candidate route of a Loc-RIB; returns the record count."""
        count = 0
        for entry in table.entries():
            for route in entry.routes:
                self.write_route(table.owner, route, is_best=route is entry.best)
                count += 1
        return count

    def write_route(self, view_as: ASN, route: Route, is_best: bool = False) -> None:
        """Write one record."""
        if not self._wrote_header:
            self._stream.write(_HEADER.pack(MAGIC, VERSION))
            self._wrote_header = True
        path = route.as_path.asns
        communities = [c.to_int() for c in route.communities.communities]
        flags = (_FLAG_BEST if is_best else 0) | (_FLAG_LOCAL if route.is_local else 0)
        body = _RECORD_FIXED.pack(
            view_as,
            route.next_hop_as,
            route.prefix.network,
            route.prefix.length,
            int(route.origin),
            route.local_pref,
            route.med,
            flags,
            len(path),
        )
        body += struct.pack(f">{len(path)}I", *path) if path else b""
        body += struct.pack(">H", len(communities))
        if communities:
            body += struct.pack(f">{len(communities)}I", *communities)
        self._stream.write(struct.pack(">I", len(body)))
        self._stream.write(body)


class MrtReader:
    """Decodes the binary dump format back into routes."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._read_header = False

    def _ensure_header(self) -> None:
        if self._read_header:
            return
        header = self._stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise DataFormatError("truncated MRT dump: missing header")
        magic, version = _HEADER.unpack(header)
        if magic != MAGIC:
            raise DataFormatError(f"bad MRT magic: {magic!r}")
        if version != VERSION:
            raise DataFormatError(f"unsupported MRT version: {version}")
        self._read_header = True

    def records(self) -> Iterator[RibEntryRecord]:
        """Yield every record in the stream."""
        self._ensure_header()
        while True:
            length_bytes = self._stream.read(4)
            if not length_bytes:
                return
            if len(length_bytes) < 4:
                raise DataFormatError("truncated MRT dump: incomplete record length")
            (length,) = struct.unpack(">I", length_bytes)
            body = self._stream.read(length)
            if len(body) < length:
                raise DataFormatError("truncated MRT dump: incomplete record body")
            yield self._decode_record(body)

    def read_tables(self) -> dict[ASN, LocRib]:
        """Rebuild per-AS routing tables from the stream."""
        tables: dict[ASN, LocRib] = {}
        for record in self.records():
            table = tables.setdefault(record.view_as, LocRib(owner=record.view_as))
            table.add_route(record.route)
        return tables

    @staticmethod
    def _decode_record(body: bytes) -> RibEntryRecord:
        try:
            (
                view_as,
                peer_as,
                network,
                prefix_len,
                origin_value,
                local_pref,
                med,
                flags,
                path_len,
            ) = _RECORD_FIXED.unpack_from(body, 0)
            offset = _RECORD_FIXED.size
            path = struct.unpack_from(f">{path_len}I", body, offset) if path_len else ()
            offset += 4 * path_len
            (community_len,) = struct.unpack_from(">H", body, offset)
            offset += 2
            community_values = (
                struct.unpack_from(f">{community_len}I", body, offset)
                if community_len
                else ()
            )
        except struct.error as exc:
            raise DataFormatError(f"malformed MRT record: {exc}") from exc
        communities = CommunitySet(Community.from_int(value) for value in community_values)
        is_local = bool(flags & _FLAG_LOCAL)
        route = Route(
            prefix=Prefix(network, prefix_len),
            as_path=ASPath(path),
            local_pref=local_pref,
            origin=Origin(origin_value),
            med=med,
            communities=communities,
            source=RouteSource.LOCAL if is_local else RouteSource.EBGP,
            learned_from=peer_as,
        )
        return RibEntryRecord(
            view_as=view_as, route=route, is_best=bool(flags & _FLAG_BEST)
        )


def dump_tables(tables: Iterable[LocRib]) -> bytes:
    """Serialise several tables into one in-memory dump."""
    buffer = io.BytesIO()
    writer = MrtWriter(buffer)
    for table in tables:
        writer.write_table(table)
    return buffer.getvalue()


def load_tables(data: bytes) -> dict[ASN, LocRib]:
    """Parse an in-memory dump back into per-AS tables."""
    return MrtReader(io.BytesIO(data)).read_tables()
