"""Tests for the SA-prefix (export-policy) inference — the Fig. 4 algorithm."""

import pytest

from repro.core.export_policy import ExportPolicyAnalyzer
from repro.exceptions import InferenceError
from repro.simulation.scenario import (
    figure3_scenario,
    figure5_scenario,
    figure8_multihomed_scenario,
    figure8_singlehomed_scenario,
)
from repro.topology.graph import Relationship


class TestScenarioDetection:
    def test_figure3_sa_prefix_detected_at_provider_d(self):
        scenario = figure3_scenario()
        result = scenario.run()
        analyzer = ExportPolicyAnalyzer(scenario.internet.graph)
        report = analyzer.find_sa_prefixes(
            scenario.focus_provider, result.table_of(scenario.focus_provider)
        )
        assert report.sa_prefix_count == 1
        item = report.sa_prefixes[0]
        assert item.prefix == scenario.focus_prefix
        assert item.origin_as == 100
        assert item.next_hop_as == 11
        assert item.next_hop_relationship is Relationship.PEER
        assert item.customer_path[0] == scenario.focus_provider
        assert item.customer_path[-1] == 100

    def test_figure3_provider_c_has_no_sa_prefix(self):
        scenario = figure3_scenario()
        result = scenario.run()
        analyzer = ExportPolicyAnalyzer(scenario.internet.graph)
        report = analyzer.find_sa_prefixes(30, result.table_of(30))
        assert report.sa_prefix_count == 0
        assert report.customer_route_prefix_count == 1

    def test_figure5_sa_prefix_detected_at_as1(self):
        scenario = figure5_scenario()
        result = scenario.run()
        analyzer = ExportPolicyAnalyzer(scenario.internet.graph)
        report = analyzer.find_sa_prefixes(1, result.table_of(1))
        assert report.sa_prefix_count == 1
        assert report.sa_prefixes[0].next_hop_as == 3549
        assert report.percent_sa == 100.0

    def test_figure8_scenarios_detected(self):
        for scenario in (figure8_multihomed_scenario(), figure8_singlehomed_scenario()):
            result = scenario.run()
            analyzer = ExportPolicyAnalyzer(scenario.internet.graph)
            report = analyzer.find_sa_prefixes(
                scenario.focus_provider, result.table_of(scenario.focus_provider)
            )
            assert scenario.focus_prefix in report.sa_prefix_set(), scenario.name

    def test_unknown_provider_rejected(self):
        scenario = figure3_scenario()
        result = scenario.run()
        analyzer = ExportPolicyAnalyzer(scenario.internet.graph)
        with pytest.raises(InferenceError):
            analyzer.find_sa_prefixes(999, result.table_of(scenario.focus_provider))


class TestDatasetPrevalence:
    def test_reports_cover_all_providers(self, sa_reports, provider_tables):
        assert set(sa_reports) == set(provider_tables)

    def test_tier1s_have_sa_prefixes(self, sa_reports):
        total_sa = sum(report.sa_prefix_count for report in sa_reports.values())
        assert total_sa > 0

    def test_sa_prefixes_are_minority(self, sa_reports):
        for report in sa_reports.values():
            assert 0.0 <= report.percent_sa < 50.0

    def test_sa_prefix_ground_truth_overlap(self, dataset, sa_reports):
        """Most detected SA prefixes trace back to configured selective or
        scoped announcements (origin-level) or selective transits."""
        configured = dataset.assignment.all_selectively_announced()
        transit_origins = dataset.assignment.selective_transits
        graph = dataset.ground_truth_graph
        explained = 0
        total = 0
        for report in sa_reports.values():
            for item in report.sa_prefixes:
                total += 1
                if item.prefix in configured:
                    explained += 1
                    continue
                # Otherwise an intermediate selective transit must sit on a
                # provider-customer path between provider and origin.
                if any(
                    graph.is_customer_of(item.origin_as, transit)
                    or transit == item.origin_as
                    for transit in transit_origins
                ):
                    explained += 1
        assert total > 0
        assert explained / total > 0.8

    def test_without_selective_policies_no_sa_prefixes(self, dataset):
        """Ablation: re-propagate with all-announce policies; SA prefixes vanish."""
        from repro.simulation.policies import PolicyGenerator, PolicyParameters
        from repro.simulation.propagation import PropagationEngine

        plain = PolicyGenerator(
            PolicyParameters(
                seed=1,
                selective_announcement_probability=0.0,
                transit_selective_probability=0.0,
                peer_withhold_probability=0.0,
                atypical_scheme_probability=0.0,
                atypical_neighbor_probability=0.0,
                prefix_based_fraction=0.0,
            )
        ).generate(dataset.internet)
        providers = dataset.providers_under_study(2)
        result = PropagationEngine(
            dataset.internet, plain, observed_ases=providers
        ).run()
        analyzer = ExportPolicyAnalyzer(dataset.ground_truth_graph)
        for provider in providers:
            report = analyzer.find_sa_prefixes(provider, result.table_of(provider))
            assert report.sa_prefix_count == 0

    def test_customer_reports(self, dataset, graph, sa_reports, provider_tables):
        analyzer = ExportPolicyAnalyzer(graph)
        rows = analyzer.analyze_customers(sa_reports, provider_tables, min_prefixes=1)
        assert rows, "expected customers under all studied providers"
        for row in rows:
            assert 0 <= row.sa_prefix_count <= row.prefix_count
            assert 0.0 <= row.percent_sa <= 100.0
            for provider in sa_reports:
                assert graph.is_customer_of(row.customer, provider)
        # Rows are sorted by SA count, and at least one has SA prefixes.
        assert rows[0].sa_prefix_count >= rows[-1].sa_prefix_count

    def test_missing_prefix_count_with_ground_truth(self, dataset, graph, provider_tables):
        analyzer = ExportPolicyAnalyzer(graph)
        provider = next(iter(provider_tables))
        report = analyzer.find_sa_prefixes(
            provider,
            provider_tables[provider],
            known_customer_prefixes=dataset.internet.originated,
        )
        assert report.missing_prefix_count >= 0
