"""Tests of the deterministic binary packer."""

from array import array

import pytest

from repro.exceptions import StorageError
from repro.storage.packing import pack, unpack


class TestRoundTrip:
    def test_scalars(self):
        for value in (None, True, False, 0, 1, -1, 2**70, -(2**70), 3.25, -0.0,
                      "", "héllo", b"", b"\x00\xff"):
            assert unpack(pack(value)) == value

    def test_preserves_scalar_types(self):
        assert unpack(pack(True)) is True
        assert unpack(pack(1)) == 1 and unpack(pack(1)) is not True
        assert isinstance(unpack(pack(1.0)), float)

    def test_containers(self):
        tree = (1, [2, (3, "x")], b"raw", None, [[], ()])
        assert unpack(pack(tree)) == tree
        assert isinstance(unpack(pack(tree)), tuple)
        assert isinstance(unpack(pack([1]))[0], int)

    def test_arrays(self):
        column = array("q", [0, -5, 2**40])
        restored = unpack(pack((column, array("d", [1.5]))))
        assert restored[0] == column
        assert restored[0].typecode == "q"
        assert restored[1].tolist() == [1.5]

    def test_int_subclasses_lower_to_plain_ints(self):
        import enum

        class Code(enum.IntEnum):
            A = 7

        restored = unpack(pack((Code.A,)))
        assert restored == (7,)
        assert type(restored[0]) is int


class TestDeterminism:
    def test_equal_trees_pack_identically(self):
        tree = ("stage", [1, 2, 3], (4.5, b"x"), array("q", [9]))
        assert pack(tree) == pack(("stage", [1, 2, 3], (4.5, b"x"), array("q", [9])))

    def test_varint_boundaries(self):
        for value in (-(2**63), 2**63 - 1, 127, 128, -128, 16383, 16384):
            assert unpack(pack(value)) == value


class TestErrors:
    def test_rejects_hash_ordered_containers(self):
        with pytest.raises(StorageError):
            pack({"a": 1})
        with pytest.raises(StorageError):
            pack({1, 2})

    def test_truncated_data(self):
        data = pack((1, 2, 3))
        with pytest.raises(StorageError):
            unpack(data[:-1])

    def test_trailing_bytes(self):
        with pytest.raises(StorageError):
            unpack(pack(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(StorageError):
            unpack(b"\xfe")
