"""Stages of the study pipeline and the views experiments consume.

The paper's methodology is a pipeline; the session API makes each step an
explicit stage with its own frozen parameter set:

``topology -> policies -> propagation -> observation -> irr -> analysis``

* **topology** — generate the synthetic Internet
  (:class:`~repro.topology.generator.GeneratorParameters`).
* **policies** — choose the vantage/Looking Glass plan and draw the per-AS
  policy assignment (:class:`ObservationParameters` select the vantages, the
  Looking Glass list feeds the generator's prefix-based LOCAL_PREF draw).
* **propagation** — run the BGP propagation engine observed at the planned
  vantage ASes.  The compiled fast engine
  (:class:`~repro.simulation.fastpath.FastPropagationEngine`) is the
  default; :class:`PropagationSettings` selects the legacy engine or a
  per-prefix worker pool instead.
* **observation** — collect the RouteViews-style table, the Looking Glass
  views and the Table 1 inventory.
* **irr** — synthesise the IRR database (:class:`IrrParameters`).
* **analysis** — compile the observation artifacts into the columnar
  :class:`~repro.analysis.index.MeasurementIndex` and expose the one-pass
  :class:`~repro.analysis.engine.AnalysisEngine` over it
  (:class:`AnalysisParameters`).

:class:`StageView` is the object an :class:`~repro.experiments.base.Experiment`
receives: a facade over the assembled dataset that only exposes the stages
the experiment declared in ``requires``, so stage dependencies stay honest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import ExperimentError, SimulationError
from repro.simulation.policies import PolicyAssignment, PolicyParameters
from repro.simulation.propagation import SimulationResult
from repro.topology.generator import GeneratorParameters, SyntheticInternet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.engine import AnalysisEngine
    from repro.data.dataset import ASInfo, DatasetParameters, StudyDataset
    from repro.data.rpsl import IrrDatabase
    from repro.net.asn import ASN
    from repro.simulation.collector import CollectorTable, LookingGlass


class Stage(enum.Enum):
    """One step of the study pipeline."""

    TOPOLOGY = "topology"
    POLICIES = "policies"
    PROPAGATION = "propagation"
    OBSERVATION = "observation"
    IRR = "irr"
    ANALYSIS = "analysis"

    def __repr__(self) -> str:  # stable across sessions, used in cache keys
        return f"Stage.{self.name}"


#: Every stage, in pipeline order.
ALL_STAGES: frozenset[Stage] = frozenset(Stage)


@dataclass(frozen=True)
class ObservationParameters:
    """Where the synthetic measurements are taken.

    Attributes:
        looking_glass_count: number of Looking Glass ASes (the paper has 15).
        tier1_looking_glass_count: how many of them are Tier-1s (paper: 3).
        collector_vantage_count: number of ASes peering with the collector
            (the paper's Oregon server peers with 56).
        seed: seed for Looking Glass sampling and Table 1 metadata.
    """

    looking_glass_count: int = 15
    tier1_looking_glass_count: int = 3
    collector_vantage_count: int = 24
    seed: int = 1118

    def validate(self) -> None:
        """Raise :class:`SimulationError` on inconsistent settings."""
        if self.tier1_looking_glass_count > self.looking_glass_count:
            raise SimulationError(
                "tier1_looking_glass_count cannot exceed looking_glass_count"
            )
        if self.collector_vantage_count < 1:
            raise SimulationError("collector_vantage_count must be at least 1")


@dataclass(frozen=True)
class PropagationSettings:
    """*How* the propagation stage executes (not *what* it computes).

    The fast and legacy engines produce identical
    :class:`~repro.simulation.propagation.SimulationResult` artifacts
    (asserted by the fastpath equivalence suite), and the worker count never
    changes the merged result — so these settings select an execution
    strategy.  Only the engine name participates in the stage cache key
    (keeping an explicit ``--engine legacy`` run honest about what it built);
    the worker count is excluded.

    Attributes:
        engine: ``"fast"`` (the compiled-topology engine, the default) or
            ``"legacy"`` (the original message-object engine).
        workers: per-prefix fan-out width of the fast engine; ``1`` runs
            in-process, ``N > 1`` cuts the originated prefixes into
            contiguous shards over a process pool on the zero-copy path:
            the compiled topology lives in a shared-memory segment (or an
            mmap'ed ``compiled-topology`` store artifact) that workers
            attach by name — no per-task pickling — and shard results merge
            deterministically in task order, so the artifact is
            byte-identical for every worker count.
    """

    engine: str = "fast"
    workers: int = 1

    def validate(self) -> None:
        """Raise :class:`SimulationError` on unknown engines or bad workers."""
        if self.engine not in ("fast", "legacy"):
            raise SimulationError(
                f"unknown propagation engine {self.engine!r}; known: fast, legacy"
            )
        if self.workers < 1:
            raise SimulationError(f"propagation workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class AnalysisParameters:
    """How the measurement index and the analyzer engine are configured.

    Attributes:
        study_provider_count: how many of the largest Tier-1 providers the
            SA-prefix studies cover (the paper studies AS1, AS3549 and
            AS7018, i.e. three).
    """

    study_provider_count: int = 3

    def validate(self) -> None:
        """Raise :class:`SimulationError` on inconsistent settings."""
        if self.study_provider_count < 1:
            raise SimulationError("study_provider_count must be at least 1")


@dataclass(frozen=True)
class IrrParameters:
    """How the synthetic IRR is populated.

    Attributes:
        registration_probability: fraction of ASes registered in the IRR.
        stale_probability: fraction of registered objects that are stale.
        seed: seed of the registration draw.
    """

    registration_probability: float = 0.7
    stale_probability: float = 0.15
    seed: int = 1118


@dataclass(frozen=True)
class StudyConfig:
    """The full, per-stage configuration of a study.

    Every field is a frozen dataclass, so the config (and any prefix of it)
    is hashable and can content-address the stage cache.
    """

    topology: GeneratorParameters = field(
        default_factory=lambda: GeneratorParameters(
            seed=2002,
            tier1_count=6,
            tier2_count=18,
            tier3_count=45,
            stub_count=260,
        )
    )
    policy: PolicyParameters = field(default_factory=PolicyParameters)
    observation: ObservationParameters = field(default_factory=ObservationParameters)
    irr: IrrParameters = field(default_factory=IrrParameters)
    analysis: AnalysisParameters = field(default_factory=AnalysisParameters)

    def validate(self) -> None:
        """Validate every stage's parameters."""
        self.topology.validate()
        self.policy.validate()
        self.observation.validate()
        self.analysis.validate()

    # -- compatibility with the flat DatasetParameters -------------------------

    @classmethod
    def from_dataset_parameters(cls, parameters: "DatasetParameters") -> "StudyConfig":
        """Build a staged config from the legacy flat parameter object."""
        return cls(
            topology=parameters.topology,
            policy=parameters.policy,
            observation=ObservationParameters(
                looking_glass_count=parameters.looking_glass_count,
                tier1_looking_glass_count=parameters.tier1_looking_glass_count,
                collector_vantage_count=parameters.collector_vantage_count,
                seed=parameters.seed,
            ),
            irr=IrrParameters(
                registration_probability=parameters.irr_registration_probability,
                stale_probability=parameters.irr_stale_probability,
                seed=parameters.seed,
            ),
        )

    def dataset_parameters(self) -> "DatasetParameters":
        """The legacy flat view of this config (for ``StudyDataset.parameters``).

        The flat form has a single ``seed`` for both the observation plan and
        the IRR; the conversion is lossless exactly when ``irr.seed ==
        observation.seed`` (true for every built-in scenario and for
        :meth:`Study.seeded` derivations).  With diverging seeds the flat
        view records the observation seed.
        """
        from repro.data.dataset import DatasetParameters

        return DatasetParameters(
            topology=self.topology,
            policy=self.policy,
            looking_glass_count=self.observation.looking_glass_count,
            tier1_looking_glass_count=self.observation.tier1_looking_glass_count,
            collector_vantage_count=self.observation.collector_vantage_count,
            irr_registration_probability=self.irr.registration_probability,
            irr_stale_probability=self.irr.stale_probability,
            seed=self.observation.seed,
        )


# -- stage artifacts ---------------------------------------------------------------


@dataclass(frozen=True)
class PolicyStageArtifact:
    """Output of the *policies* stage: the vantage plan plus the assignment.

    Attributes:
        vantage_ases: ASes peering with the RouteViews-style collector.
        looking_glass_ases: ASes exposing a Looking Glass.
        assignment: the per-AS policies (with ground truth).
    """

    vantage_ases: tuple["ASN", ...]
    looking_glass_ases: tuple["ASN", ...]
    assignment: PolicyAssignment

    @property
    def observed_ases(self) -> list["ASN"]:
        """Every AS whose routing table the propagation must record."""
        return sorted(set(self.vantage_ases) | set(self.looking_glass_ases))


@dataclass(frozen=True)
class ObservationArtifact:
    """Output of the *observation* stage: the measurement views.

    Attributes:
        collector: the RouteViews-style collector table.
        looking_glasses: Looking Glass views keyed by AS.
        as_info: Table 1 style metadata per inventoried AS.
    """

    collector: "CollectorTable"
    looking_glasses: dict["ASN", "LookingGlass"]
    as_info: dict["ASN", "ASInfo"]


# -- the experiment-facing view ----------------------------------------------------


class StageView:
    """A stage-gated facade over a :class:`~repro.data.dataset.StudyDataset`.

    The view exposes the same attribute names experiments have always used
    (``internet``, ``result``, ``collector``, ...), but accessing an
    attribute of a stage outside ``allowed`` raises
    :class:`~repro.exceptions.ExperimentError`.  ``run_suite`` builds one
    view per experiment from its declared ``requires``, which keeps the
    declared stage dependencies honest and lets independent experiments run
    concurrently over the same read-only dataset.
    """

    __slots__ = ("_dataset", "_allowed")

    def __init__(self, dataset: "StudyDataset", allowed: frozenset[Stage] = ALL_STAGES):
        self._dataset = dataset
        self._allowed = frozenset(allowed)

    @classmethod
    def from_dataset(
        cls, dataset: "StudyDataset", requires: frozenset[Stage] = ALL_STAGES
    ) -> "StageView":
        """Wrap an assembled dataset, exposing only the required stages."""
        return cls(dataset, requires)

    # -- bookkeeping -----------------------------------------------------------

    @property
    def allowed_stages(self) -> frozenset[Stage]:
        """The stages this view exposes."""
        return self._allowed

    @property
    def parameters(self):
        """The dataset's (legacy, flat) parameter object; never gated."""
        return self._dataset.parameters

    @property
    def cache_token(self) -> int:
        """Identity of the underlying dataset, for per-dataset memo caches.

        Two views over the same dataset share the token, so shared
        intermediate products (:mod:`repro.experiments.common`) are computed
        once per dataset, not once per experiment.
        """
        return id(self._dataset)  # repro: noqa[DET002] -- per-process memo identity; never persisted or fingerprinted

    def restricted(self, requires: frozenset[Stage]) -> "StageView":
        """A narrower view over the same dataset."""
        return StageView(self._dataset, self._allowed & frozenset(requires))

    def _need(self, stage: Stage, attribute: str):
        if stage not in self._allowed:
            raise ExperimentError(
                f"stage {stage.value!r} (attribute {attribute!r}) is not in this "
                f"experiment's declared requires: "
                f"{sorted(s.value for s in self._allowed)}"
            )

    # -- topology --------------------------------------------------------------

    @property
    def internet(self) -> SyntheticInternet:
        self._need(Stage.TOPOLOGY, "internet")
        return self._dataset.internet

    @property
    def ground_truth_graph(self):
        self._need(Stage.TOPOLOGY, "ground_truth_graph")
        return self._dataset.ground_truth_graph

    @property
    def tier1_ases(self) -> list["ASN"]:
        self._need(Stage.TOPOLOGY, "tier1_ases")
        return self._dataset.tier1_ases

    def providers_under_study(self, count: int = 3) -> list["ASN"]:
        """The largest Tier-1 ASes by degree (needs the topology stage)."""
        self._need(Stage.TOPOLOGY, "providers_under_study")
        return self._dataset.providers_under_study(count)

    # -- policies --------------------------------------------------------------

    @property
    def assignment(self) -> PolicyAssignment:
        self._need(Stage.POLICIES, "assignment")
        return self._dataset.assignment

    # -- propagation -----------------------------------------------------------

    @property
    def result(self) -> SimulationResult:
        self._need(Stage.PROPAGATION, "result")
        return self._dataset.result

    # -- observation -----------------------------------------------------------

    @property
    def collector(self) -> "CollectorTable":
        self._need(Stage.OBSERVATION, "collector")
        return self._dataset.collector

    @property
    def looking_glasses(self) -> dict["ASN", "LookingGlass"]:
        self._need(Stage.OBSERVATION, "looking_glasses")
        return self._dataset.looking_glasses

    @property
    def vantage_ases(self) -> list["ASN"]:
        self._need(Stage.OBSERVATION, "vantage_ases")
        return self._dataset.vantage_ases

    @property
    def looking_glass_ases(self) -> list["ASN"]:
        self._need(Stage.OBSERVATION, "looking_glass_ases")
        return self._dataset.looking_glass_ases

    @property
    def as_info(self):
        self._need(Stage.OBSERVATION, "as_info")
        return self._dataset.as_info

    def looking_glass_of(self, asn: "ASN") -> "LookingGlass":
        """The Looking Glass view of an AS (needs the observation stage)."""
        self._need(Stage.OBSERVATION, "looking_glass_of")
        return self._dataset.looking_glass_of(asn)

    # -- irr -------------------------------------------------------------------

    @property
    def irr(self) -> "IrrDatabase":
        self._need(Stage.IRR, "irr")
        return self._dataset.irr

    # -- analysis --------------------------------------------------------------

    @property
    def analysis(self) -> "AnalysisEngine":
        """The one-pass analyzer engine over the compiled measurement index.

        Built lazily and memoised per dataset, so every experiment in a
        suite run shares one index instead of re-walking the raw tables.
        """
        self._need(Stage.ANALYSIS, "analysis")
        return self._dataset.analysis_engine()
