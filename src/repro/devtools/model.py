"""Finding and report models shared by the lint engine, CLI and baseline.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.key` deliberately excludes the line number: baselines match
findings by ``(rule, path, message)`` so routine edits that shift code
around do not invalidate a recorded rationale, while any change to *what*
is wrong (a different expression, a different field) produces a new key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: the violated rule's identifier (e.g. ``"DET001"``).
        path: repo-relative posix path of the offending file.
        line: 1-based line of the violation.
        column: 0-based column of the violation.
        message: the violation description (stable: no line numbers).
    """

    rule: str
    path: str
    line: int
    column: int
    message: str

    @property
    def key(self) -> str:
        """The line-insensitive identity used by baseline matching."""
        return f"{self.rule}:{self.path}:{self.message}"

    def render(self) -> str:
        """The finding as one ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """A JSON-ready dict with a stable key order."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The structured result of one lint run.

    Attributes:
        findings: every unsuppressed finding, in ``(path, line, rule)`` order.
        files: how many files were parsed and checked.
        rules: identifiers of the rules that ran.
        baseline_errors: baseline bookkeeping problems (stale entries,
            missing rationales) reported by ``--baseline`` mode.
    """

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)
    baseline_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when there is nothing to report."""
        return not self.findings and not self.baseline_errors

    def to_dict(self) -> dict:
        """A JSON-ready dict with a stable key order."""
        return {
            "ok": self.ok,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [finding.to_dict() for finding in self.findings],
            "baseline_errors": list(self.baseline_errors),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """A human-readable summary, one line per finding."""
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"baseline: {error}" for error in self.baseline_errors)
        if self.ok:
            lines.append(
                f"checked {self.files} file(s) against {len(self.rules)} rule(s): clean"
            )
        else:
            lines.append(
                f"{len(self.findings)} finding(s), "
                f"{len(self.baseline_errors)} baseline error(s) "
                f"in {self.files} file(s)"
            )
        return "\n".join(lines)
