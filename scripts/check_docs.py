"""Documentation reference checker (``python -m scripts.check_docs``).

Walks ``README.md`` and every Markdown file under ``docs/`` and verifies:

* every dotted ``repro.*`` reference resolves — the longest importable
  module prefix is imported and any remaining segments are resolved as
  attributes (classes, functions, methods), so renaming a module or an
  analyzer without updating the docs fails CI;
* every relative Markdown link ``[text](path)`` points at a file or
  directory that exists (anchors and absolute URLs are skipped);
* the rule catalogue in ``docs/linting.md`` matches the ``repro lint``
  registry in both directions — a registered rule id missing from the
  docs, or a documented id missing from the registry, fails.

Exits non-zero listing every broken reference.  Pure standard library.
"""

from __future__ import annotations

import importlib
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Dotted repro references, e.g. ``repro.analysis.engine.AnalysisEngine``.
_REFERENCE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Markdown inline links: ``[text](target)``.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files() -> list[pathlib.Path]:
    """README plus every Markdown file under docs/."""
    files = [ROOT / "README.md"]
    docs = ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def _resolve_reference(reference: str) -> bool:
    """``True`` if a dotted ``repro.*`` name resolves to a module/attribute."""
    segments = reference.split(".")
    for cut in range(len(segments), 0, -1):
        module_name = ".".join(segments[:cut])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        target = module
        try:
            for attribute in segments[cut:]:
                target = getattr(target, attribute)
        except AttributeError:
            return False
        return True
    return False


def _check_file(path: pathlib.Path) -> list[str]:
    """Every broken reference/link in one Markdown file, as messages."""
    problems: list[str] = []
    text = path.read_text()
    relative = path.relative_to(ROOT)
    for match in sorted(set(_REFERENCE.findall(text))):
        if not _resolve_reference(match):
            problems.append(f"{relative}: unresolvable reference {match!r}")
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{relative}: broken link {target!r}")
    return problems


#: Lint rule identifiers as they appear in docs/linting.md (`DET001`, ...).
_RULE_ID = re.compile(r"`([A-Z]{3,5}\d{3})`")


def _check_lint_catalogue() -> list[str]:
    """Mismatches between docs/linting.md and the repro lint registry."""
    from repro.devtools.engine import rule_ids

    doc_path = ROOT / "docs" / "linting.md"
    if not doc_path.is_file():
        return ["docs/linting.md: missing (the repro lint catalogue lives here)"]
    documented = set(_RULE_ID.findall(doc_path.read_text()))
    registered = set(rule_ids())
    problems = [
        f"docs/linting.md: registered rule {rule_id} is undocumented"
        for rule_id in sorted(registered - documented)
    ]
    problems.extend(
        f"docs/linting.md: documented rule {rule_id} is not registered"
        for rule_id in sorted(documented - registered)
    )
    return problems


def main() -> int:
    """Check every doc file; print problems and return an exit status."""
    problems: list[str] = []
    files = _doc_files()
    for path in files:
        problems.extend(_check_file(path))
    problems.extend(_check_lint_catalogue())
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} doc file(s): all repro.* references and "
          "relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
