"""Unit tests for repro.bgp.attributes."""

import pytest

from repro.bgp.attributes import (
    Community,
    CommunitySet,
    Origin,
    WellKnownCommunity,
)
from repro.exceptions import PolicyError


class TestOrigin:
    def test_ordering_matches_preference(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE


class TestCommunity:
    def test_parse(self):
        community = Community.parse("12859:1000")
        assert community.asn == 12859
        assert community.value == 1000

    def test_str_roundtrip(self):
        assert str(Community.parse("12859:4000")) == "12859:4000"

    def test_wire_roundtrip(self):
        community = Community(7018, 5000)
        assert Community.from_int(community.to_int()) == community

    def test_parse_rejects_missing_colon(self):
        with pytest.raises(PolicyError):
            Community.parse("128591000")

    def test_parse_rejects_garbage(self):
        with pytest.raises(PolicyError):
            Community.parse("a:b")

    def test_rejects_out_of_range_parts(self):
        with pytest.raises(PolicyError):
            Community(70000, 1)
        with pytest.raises(PolicyError):
            Community(1, 70000)

    def test_from_int_rejects_out_of_range(self):
        with pytest.raises(PolicyError):
            Community.from_int(1 << 33)

    def test_ordering(self):
        assert Community(1, 2) < Community(1, 3) < Community(2, 0)


class TestCommunitySet:
    def test_construct_from_strings(self):
        communities = CommunitySet(["12859:1000", "12859:4000"])
        assert communities.has("12859:1000")
        assert communities.has(Community(12859, 4000))
        assert not communities.has("12859:2000")

    def test_well_known_flags(self):
        communities = CommunitySet(well_known=[WellKnownCommunity.NO_EXPORT])
        assert communities.no_export
        assert not communities.no_advertise

    def test_add_and_remove_are_pure(self):
        base = CommunitySet(["1:1"])
        extended = base.add("1:2", WellKnownCommunity.NO_EXPORT)
        assert not base.has("1:2")
        assert extended.has("1:2")
        assert extended.no_export
        shrunk = extended.remove("1:1", WellKnownCommunity.NO_EXPORT)
        assert not shrunk.has("1:1")
        assert shrunk.has("1:2")
        assert not shrunk.no_export

    def test_remove_missing_is_noop(self):
        base = CommunitySet(["1:1"])
        assert base.remove("9:9") == base

    def test_from_asn(self):
        communities = CommunitySet(["12859:1000", "12859:2000", "3549:100"])
        assert communities.from_asn(12859) == frozenset(
            {Community(12859, 1000), Community(12859, 2000)}
        )

    def test_without_asn(self):
        communities = CommunitySet(["12859:1000", "3549:100"])
        cleaned = communities.without_asn(12859)
        assert not cleaned.has("12859:1000")
        assert cleaned.has("3549:100")

    def test_immutability(self):
        communities = CommunitySet(["1:1"])
        with pytest.raises(AttributeError):
            communities._communities = frozenset()

    def test_equality_and_hash(self):
        a = CommunitySet(["1:1", "2:2"])
        b = CommunitySet([Community(2, 2), Community(1, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_len_bool_iter(self):
        empty = CommunitySet()
        assert not empty
        assert len(empty) == 0
        full = CommunitySet(["1:1"], well_known=[WellKnownCommunity.NO_EXPORT])
        assert full
        assert len(full) == 2
        assert list(full) == [Community(1, 1)]

    def test_str_lists_everything(self):
        text = str(CommunitySet(["1:1"], well_known=[WellKnownCommunity.NO_EXPORT]))
        assert "1:1" in text and "NO_EXPORT" in text
