"""Shared-memory lifecycle and zero-copy attach tests of the fastpath.

Covers the contract of :mod:`repro.simulation.fastpath.shm`:

* publish/attach round-trip — the :class:`SharedTopologyView` exposes the
  same surface as the :class:`CompiledTopology` it was lowered from;
* lifecycle — segments are unlinked on normal engine exit, on engine
  failure (injected worker kills via the faults harness) and via the
  idempotent handle, and no ``resource_tracker`` noise is emitted;
* the store-backed ``("file", path)`` attach path used by the session
  layer produces results identical to the in-memory compiled topology.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.exceptions import StorageError
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.runtime import activate, reset
from repro.fuzz.oracles import check_propagation_equivalence
from repro.session.cache import StageCache
from repro.session.scenarios import get_scenario
from repro.simulation.fastpath import (
    FastPropagationEngine,
    SharedTopologyView,
    attach,
    compile_topology,
    publish,
)
from repro.simulation.fastpath.shm import (
    STAGE,
    AttachCache,
    pack_topology,
    view_over_payload,
)
from repro.storage.store import DiskStore

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_CACHE: dict[str, tuple] = {}


def _small_scenario():
    """(internet, plan, compiled, serial result) for 'small', built once."""
    cached = _CACHE.get("small")
    if cached is None:
        study = get_scenario("small").study(cache=StageCache())
        internet = study.topology()
        plan = study.policies()
        engine = FastPropagationEngine(
            internet, plan.assignment, observed_ases=plan.observed_ases
        )
        cached = _CACHE["small"] = (internet, plan, engine.compiled, engine.run())
    return cached


def _shm_names() -> set[str]:
    """Current shared-memory segment names (Linux: /dev/shm entries)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


class TestPublishAttachRoundTrip:
    def test_view_mirrors_compiled_topology(self):
        _internet, _plan, compiled, _result = _small_scenario()
        handle = publish(compiled)
        try:
            view = attach(handle.descriptor)
            assert isinstance(view, SharedTopologyView)
            assert view.descriptor == handle.descriptor
            assert view.asns == tuple(compiled.asns)
            assert view.observed == tuple(compiled.observed)
            assert view.as_count == compiled.as_count
            assert view.index_of == compiled.index_of
            assert list(view.edge_lp) == list(compiled.edge_lp)
            assert list(view.edge_tag) == list(compiled.edge_tag)
            assert list(view.edge_rel) == list(compiled.edge_rel)
            assert view.edge_overrides == compiled.edge_overrides
            assert view.tag_communities == compiled.tag_communities
            assert list(view.scoped_marker) == list(compiled.scoped_marker)
            assert list(view.honor_scoped) == [
                int(flag) for flag in compiled.honor_scoped
            ]
            assert view.comm_table == compiled.comm_table
            assert view.origin_tasks == compiled.origin_tasks
            for idx in range(compiled.as_count):
                assert view.nbr_slot[idx] == compiled.nbr_slot[idx]
                assert view.exp_local[idx] == compiled.exp_local[idx]
                assert view.exp_local_set[idx] == compiled.exp_local_set[idx]
                assert view.exp_customer[idx] == compiled.exp_customer[idx]
                assert view.exp_down[idx] == compiled.exp_down[idx]
            for key, plan_entry in compiled.seeds.items():
                assert view.seeds[key] == plan_entry
            view.close()
        finally:
            handle.unlink()

    def test_columns_are_zero_copy_views(self):
        _internet, _plan, compiled, _result = _small_scenario()
        handle = publish(compiled)
        try:
            view = attach(handle.descriptor)
            # Bulk columns are memoryview casts over the segment, not copies.
            assert isinstance(view.edge_lp, memoryview)
            assert view.edge_lp.format == "q"
            view.close()
        finally:
            handle.unlink()

    def test_shared_override_groups_stay_shared(self):
        # Edges sharing one override dict in the compiled topology must
        # share one dict in the view too (memory parity, not just equality).
        _internet, _plan, compiled, _result = _small_scenario()
        groups = {}
        for slot, overrides in compiled.edge_overrides.items():
            groups.setdefault(id(overrides), []).append(slot)
        shared = [slots for slots in groups.values() if len(slots) > 1]
        if not shared:
            pytest.skip("scenario has no shared override groups")
        handle = publish(compiled)
        try:
            view = attach(handle.descriptor)
            for slots in shared:
                first = view.edge_overrides[slots[0]]
                assert all(view.edge_overrides[s] is first for s in slots[1:])
            view.close()
        finally:
            handle.unlink()

    def test_attach_unknown_descriptor(self):
        with pytest.raises(StorageError):
            attach(("carrier-pigeon", "x"))


class TestLifecycle:
    def test_unlink_is_idempotent_and_detaches(self):
        _internet, _plan, compiled, _result = _small_scenario()
        handle = publish(compiled)
        assert handle.name
        handle.unlink()
        handle.unlink()  # second call is a no-op
        with pytest.raises(FileNotFoundError):
            attach(handle.descriptor)

    def test_normal_parallel_run_leaves_no_segment(self):
        internet, plan, compiled, serial = _small_scenario()
        before = _shm_names()
        result = FastPropagationEngine(
            internet,
            plan.assignment,
            observed_ases=plan.observed_ases,
            workers=2,
            compiled=compiled,
        ).run()
        check_propagation_equivalence(serial, result)
        assert _shm_names() - before == set()

    def test_injected_worker_kill_still_unlinks(self, tmp_path):
        # Every shard attempt dies at the propagation-shard fault point, so
        # the pool breaks -- the engine's finally must still unlink.
        internet, plan, compiled, _serial = _small_scenario()
        plan_obj = FaultPlan(
            seed=0,
            state_dir=str(tmp_path / "fault-state"),
            rules=(
                FaultRule(
                    "worker-kill", rate=1.0, times=None, match="propagation-shard:*"
                ),
            ),
        )
        before = _shm_names()
        activate(plan_obj)
        try:
            with pytest.raises(Exception):
                FastPropagationEngine(
                    internet,
                    plan.assignment,
                    observed_ases=plan.observed_ases,
                    workers=2,
                    compiled=compiled,
                ).run()
        finally:
            os.environ.pop("REPRO_FAULT_PLAN", None)
            reset()
        assert _shm_names() - before == set()

    def test_no_resource_tracker_noise(self):
        # A full parallel run in a fresh interpreter must exit silently:
        # no leak warnings, no tracker KeyError tracebacks.
        script = (
            "from repro.session.cache import StageCache\n"
            "from repro.session.scenarios import get_scenario\n"
            "from repro.simulation.fastpath import FastPropagationEngine\n"
            "study = get_scenario('small').study(cache=StageCache())\n"
            "plan = study.policies()\n"
            "result = FastPropagationEngine(study.topology(), plan.assignment,\n"
            "    observed_ases=plan.observed_ases, workers=2).run()\n"
            "print(result.message_count)\n"
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "resource_tracker" not in completed.stderr, completed.stderr
        assert "Traceback" not in completed.stderr, completed.stderr
        assert "leaked" not in completed.stderr, completed.stderr


class TestStoreBackedAttach:
    def test_file_descriptor_round_trip(self, tmp_path):
        _internet, _plan, compiled, _result = _small_scenario()
        store = DiskStore(tmp_path / "cache")
        path = store.write(STAGE, "k" * 64, pack_topology(compiled))
        assert path is not None
        view = attach(("file", str(path)))
        try:
            assert view.asns == tuple(compiled.asns)
            assert list(view.edge_lp) == list(compiled.edge_lp)
        finally:
            view.close()

    def test_engine_over_store_view_matches_serial(self, tmp_path):
        internet, plan, compiled, serial = _small_scenario()
        store = DiskStore(tmp_path / "cache")
        path = store.write(STAGE, "k" * 64, pack_topology(compiled))
        for workers in (1, 2):
            artifact = store.read_view(STAGE, "k" * 64)
            assert artifact is not None
            view = view_over_payload(
                artifact.payload, ("file", str(artifact.path)), retain=artifact
            )
            engine = FastPropagationEngine(
                internet,
                plan.assignment,
                observed_ases=plan.observed_ases,
                workers=workers,
                compiled=view,
            )
            result = engine.run()
            check_propagation_equivalence(serial, result)
            # Store-backed runs never publish a segment: workers re-attach
            # the artifact file by path.
            assert engine.last_run_phases["publish"] == 0.0
            view.close()

    def test_study_disk_tier_caches_compiled_topology(self, tmp_path):
        # Two studies over one disk store: the first writes the
        # compiled-topology artifact, the second serves propagation from
        # the store-attached view -- identical results either way.
        from repro.session.cache import fingerprint
        from repro.session.stages import Stage

        _internet, _plan, _compiled, serial = _small_scenario()
        first = get_scenario("small").study(
            cache=StageCache(disk=DiskStore(tmp_path / "cache"))
        )
        check_propagation_equivalence(serial, first.propagation())
        key = fingerprint(STAGE, first.stage_key(Stage.POLICIES))
        assert first.cache.disk.read(STAGE, key) is not None
        second = get_scenario("small").study(
            cache=StageCache(disk=DiskStore(tmp_path / "cache"))
        )
        check_propagation_equivalence(serial, second.propagation())


class TestAttachCache:
    def test_memoizes_by_key(self):
        calls = []
        cache = AttachCache(lambda key: calls.append(key) or object())
        first = cache.get(("a", 1))
        assert cache.get(("a", 1)) is first
        assert cache.get(("b", 2)) is not first
        assert calls == [("a", 1), ("b", 2)]
