"""Benchmark: reproduce Table 2 (typical LOCAL_PREF from BGP tables).

Paper shape: every Looking Glass AS assigns typical LOCAL_PREF for the vast
majority of prefixes (94.3%-100%).
"""


def test_bench_table2(benchmark, run_experiment):
    result = run_experiment(benchmark, "table2")
    percentages = [float(row[-1].rstrip("%")) for row in result.rows]
    assert percentages
    # A couple of Looking Glass ASes are configured with atypical policies by
    # design (the paper's Table 2 also bottoms out at 94.3%); the population
    # as a whole must be overwhelmingly typical.
    assert min(percentages) > 60.0
    assert sum(percentages) / len(percentages) > 90.0
    assert sorted(percentages)[len(percentages) // 2] > 93.0
