"""The docs reference checker passes on the committed tree (and can fail)."""

from scripts.check_docs import _resolve_reference, main


def test_docs_references_all_resolve():
    assert main() == 0


def test_resolver_accepts_modules_and_attributes():
    assert _resolve_reference("repro.analysis")
    assert _resolve_reference("repro.analysis.engine.AnalysisEngine")
    assert _resolve_reference("repro.core.export_policy.ExportPolicyAnalyzer.find_sa_prefixes")


def test_resolver_rejects_missing_names():
    assert not _resolve_reference("repro.no_such_module")
    assert not _resolve_reference("repro.core.atoms.NoSuchAnalyzer")
    assert not _resolve_reference("repro.analysis.engine.AnalysisEngine.no_such_method")
