"""Registry of experiments, keyed by experiment identifier."""

from __future__ import annotations

from repro.exceptions import ExperimentError
from repro.experiments.base import Experiment

_REGISTRY: dict[str, Experiment] = {}


def register(experiment_class: type[Experiment]) -> type[Experiment]:
    """Class decorator: instantiate and register an experiment."""
    instance = experiment_class()
    if not instance.experiment_id:
        raise ExperimentError(f"{experiment_class.__name__} has no experiment_id")
    if instance.experiment_id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id: {instance.experiment_id}")
    _REGISTRY[instance.experiment_id] = instance
    return experiment_class


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by identifier.

    Raises:
        ExperimentError: for unknown identifiers.
    """
    experiment = _REGISTRY.get(experiment_id)
    if experiment is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        )
    return experiment


def all_experiments() -> list[Experiment]:
    """Every registered experiment, ordered by identifier."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]
