"""One experiment per table and figure of the paper's evaluation.

Every experiment is a small class with a ``run(dataset)`` method returning an
:class:`~repro.experiments.base.ExperimentResult` (headers + rows + notes)
that can be rendered as an ASCII table next to the paper's original.  The
registry maps experiment identifiers (``"table2"``, ``"fig6"``, ...) to
experiment instances; ``python -m repro.experiments`` runs them all.
"""

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import all_experiments, get_experiment, register

# Importing the experiment modules populates the registry.
from repro.experiments import (  # noqa: F401  (imported for registration side effect)
    atoms,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    fig2,
    fig6,
    fig7,
    fig9,
    case3,
    ablations,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "register",
]
