"""Tests of the canned paper-figure scenarios (Figs. 1, 3, 5, 8)."""

from repro.bgp.route import NeighborKind
from repro.simulation.scenario import (
    figure1_scenario,
    figure3_scenario,
    figure5_scenario,
    figure8_multihomed_scenario,
    figure8_singlehomed_scenario,
)


class TestFigure1:
    def test_every_as_reaches_every_prefix(self):
        scenario = figure1_scenario()
        result = scenario.run()
        prefix_count = len(scenario.internet.all_prefixes())
        for asn in scenario.observed_ases:
            assert len(result.table_of(asn)) == prefix_count

    def test_paths_are_valley_free(self):
        scenario = figure1_scenario()
        result = scenario.run()
        graph = scenario.internet.graph
        for asn in scenario.observed_ases:
            for route in result.table_of(asn).best_routes():
                if route.is_local:
                    continue
                assert graph.is_valley_free([asn] + list(route.as_path.deduplicate()))


class TestFigure3:
    def test_provider_d_sees_prefix_via_peer(self):
        scenario = figure3_scenario()
        result = scenario.run()
        best = result.table_of(scenario.focus_provider).best_route(scenario.focus_prefix)
        assert best is not None
        assert best.is_peer_route
        assert best.next_hop_as == 11

    def test_provider_b_receives_no_customer_route(self):
        # A announces only to C, so B never sees p from its customer A; B only
        # learns it back from its own provider D (which got it via the peer E).
        scenario = figure3_scenario()
        result = scenario.run()
        best = result.table_of(20).best_route(scenario.focus_prefix)
        assert best is not None
        assert best.is_provider_route
        assert not any(
            route.is_customer_route
            for route in result.table_of(20).all_routes(scenario.focus_prefix)
        )

    def test_provider_c_sees_customer_route(self):
        scenario = figure3_scenario()
        result = scenario.run()
        best = result.table_of(30).best_route(scenario.focus_prefix)
        assert best is not None and best.is_customer_route

    def test_origin_is_in_provider_d_customer_cone(self):
        scenario = figure3_scenario()
        assert scenario.internet.graph.is_customer_of(100, scenario.focus_provider)


class TestFigure5:
    def test_as1_reaches_customer_prefix_via_peer_3549(self):
        scenario = figure5_scenario()
        result = scenario.run()
        best = result.table_of(1).best_route(scenario.focus_prefix)
        assert best is not None
        assert best.is_peer_route
        assert best.next_hop_as == 3549
        assert list(best.as_path) == [3549, 13768, 6280]

    def test_as852_has_no_customer_route(self):
        scenario = figure5_scenario()
        result = scenario.run()
        best = result.table_of(852).best_route(scenario.focus_prefix)
        # AS852 learns the prefix only from its provider AS1 (downhill), so
        # it is a provider route, not a customer route.
        assert best is None or not best.is_customer_route


class TestFigure8:
    def test_multihomed_best_and_customer_paths_are_disjoint(self):
        scenario = figure8_multihomed_scenario()
        result = scenario.run()
        best = result.table_of(10).best_route(scenario.focus_prefix)
        assert best is not None
        assert best.is_peer_route
        best_path = set(best.as_path)
        customer_path = scenario.internet.graph.find_customer_path(10, 5)
        assert customer_path is not None
        # Disjoint apart from the destination AS.
        assert set(customer_path[1:-1]).isdisjoint(best_path - {5})

    def test_singlehomed_paths_share_the_last_common_as(self):
        scenario = figure8_singlehomed_scenario()
        result = scenario.run()
        best = result.table_of(10).best_route(scenario.focus_prefix)
        assert best is not None
        assert best.is_peer_route
        assert list(best.as_path) == [2, 1, 5]
        customer_path = scenario.internet.graph.find_customer_path(10, 5)
        assert customer_path == [10, 3, 1, 5]
        # The intermediate AS u1 (=1) is on both paths.
        assert 1 in set(best.as_path) and 1 in set(customer_path)

    def test_singlehomed_origin_prefix_also_curves(self):
        scenario = figure8_singlehomed_scenario()
        result = scenario.run()
        from repro.net.prefix import Prefix

        own_prefix = Prefix.parse("10.1.0.0/16")
        best = result.table_of(10).best_route(own_prefix)
        assert best is not None
        assert best.is_peer_route
