"""Corruption fuzzing across every stage codec.

The store's read contract is *corruption is a miss, never an exception*:
whatever happened to the bytes on disk — truncation, bit rot, an empty
file, an artifact written by another schema or codec version — the reader
must fall back to the builder, and structurally invalid files must move to
quarantine so they are decoded at most once.  This suite drives that
contract over real artifacts of all six persistable stages.
"""

import pytest

from repro.session.cache import StageCache
from repro.session.stages import ObservationParameters, StudyConfig
from repro.session.study import Study
from repro.storage import versions
from repro.storage.codecs import codec_for
from repro.storage.store import DiskStore
from repro.topology.generator import GeneratorParameters

#: Every stage with a registered codec (= every stage the store persists).
STAGES = ("topology", "policies", "propagation", "observation", "irr", "analysis")

#: Tiny but complete: all six stages build in well under a second.
_CONFIG = StudyConfig(
    topology=GeneratorParameters(
        seed=3, tier1_count=3, tier2_count=4, tier3_count=6, stub_count=25
    ),
    observation=ObservationParameters(
        looking_glass_count=4, tier1_looking_glass_count=2, collector_vantage_count=6
    ),
)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One disk-backed tiny study; returns ``stage -> (key, artifact bytes)``."""
    root = tmp_path_factory.mktemp("pristine-artifacts")
    study = Study(_CONFIG, cache=StageCache(disk=DiskStore(root)))
    study.dataset()
    study.analysis()
    artifacts = {}
    for stage in STAGES:
        paths = sorted((root / stage).rglob("*.art"))
        assert paths, f"the {stage} stage persisted no artifact"
        path = paths[0]
        artifacts[stage] = (path.stem, path.read_bytes())
    return artifacts


def store_with(tmp_path, stage: str, key: str, data: bytes) -> DiskStore:
    """A fresh store whose only artifact is the given (possibly bad) bytes."""
    store = DiskStore(tmp_path / "store")
    path = store.path_for(stage, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return store


def corruptions(data: bytes) -> dict[str, bytes]:
    """The structural corruption variants of one artifact file."""
    return {
        "zero-length": b"",
        "truncated-half": data[: len(data) // 2],
        "truncated-tail": data[:-1],
        "truncated-header": data[:10],
        "garbage": b"\xde\xad\xbe\xef" * 8,
        "header-flip": bytes([data[0] ^ 0xFF]) + data[1:],
    }


class TestStructuralCorruption:
    @pytest.mark.parametrize("stage", STAGES)
    @pytest.mark.parametrize(
        "mode",
        ["zero-length", "truncated-half", "truncated-tail", "truncated-header",
         "garbage", "header-flip"],
    )
    def test_reads_as_quarantined_miss(self, pristine, tmp_path, stage, mode):
        key, data = pristine[stage]
        store = store_with(tmp_path, stage, key, corruptions(data)[mode])
        assert store.read(stage, key) is None
        # The invalid file moved aside: the re-read is a plain miss and the
        # quarantine counter does not grow again.
        assert not store.path_for(stage, key).exists()
        assert store.health()["quarantined_reads"] == 1
        assert store.health()["quarantined_files"] == 1
        assert store.read(stage, key) is None
        assert store.health()["quarantined_reads"] == 1

    @pytest.mark.parametrize("stage", STAGES)
    def test_cache_falls_back_to_the_builder(self, pristine, tmp_path, stage):
        key, data = pristine[stage]
        store = store_with(tmp_path, stage, key, corruptions(data)["truncated-half"])
        cache = StageCache(disk=store)
        sentinel = object()
        rebuilt = cache.get_or_build(
            stage, key, lambda: sentinel, decode=lambda payload: payload
        )
        assert rebuilt is sentinel
        assert cache.stats_for(stage).misses == 1
        assert cache.stats_for(stage).disk_hits == 0


class TestVersionMismatch:
    @pytest.mark.parametrize("stage", STAGES)
    def test_schema_version_bump_is_a_miss(self, pristine, tmp_path, stage, monkeypatch):
        key, data = pristine[stage]
        store = store_with(tmp_path, stage, key, data)
        monkeypatch.setattr(
            "repro.storage.store.SCHEMA_VERSION", versions.SCHEMA_VERSION + 1
        )
        assert store.read(stage, key) is None
        assert store.health()["quarantined_reads"] == 1

    @pytest.mark.parametrize("stage", STAGES)
    def test_codec_version_bump_is_a_miss(self, pristine, tmp_path, stage, monkeypatch):
        key, data = pristine[stage]
        store = store_with(tmp_path, stage, key, data)
        monkeypatch.setitem(
            versions.CODEC_VERSIONS, stage, versions.CODEC_VERSIONS.get(stage, 0) + 1
        )
        assert store.read(stage, key) is None


class TestBitFlips:
    @pytest.mark.parametrize("stage", STAGES)
    def test_single_byte_flips_never_raise(self, pristine, tiny_study, tmp_path, stage):
        # A flip anywhere in the file — header or payload — must never
        # escape the cache as an exception: either the store rejects the
        # bytes (header damage), the codec fails and the cache rebuilds, or
        # the flip was in a spot the codec tolerates.  The full end-to-end
        # "corrupted cache still reproduces byte-identical reports"
        # invariant is exercised by ``python -m repro chaos``.
        key, data = pristine[stage]
        codec = codec_for(stage)
        step = max(1, len(data) // 16)
        sentinel = object()
        for offset in range(0, len(data), step):
            flipped = bytearray(data)
            flipped[offset] ^= 0xFF
            store = store_with(tmp_path, stage, key, bytes(flipped))
            cache = StageCache(disk=store)
            cache.get_or_build(
                stage,
                key,
                lambda: sentinel,
                decode=lambda payload: codec.decode(payload, tiny_study),
            )
