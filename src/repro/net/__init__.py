"""Addressing substrate: IPv4 prefixes, AS numbers, AS paths and a radix trie.

This subpackage contains the low-level data types every other layer of the
library builds on:

* :class:`~repro.net.prefix.Prefix` — an immutable IPv4 prefix with the
  supernet/subnet algebra needed by the prefix-splitting and
  prefix-aggregation analyses of the paper (Section 5.1.5).
* :class:`~repro.net.aspath.ASPath` — the AS_PATH attribute, with loop
  detection and prepending.
* :class:`~repro.net.trie.PrefixTrie` — a binary radix trie providing
  longest-prefix match and covered/covering-prefix searches.
* :class:`~repro.net.allocator.AddressAllocator` — allocation of address
  space to the ASes of the synthetic Internet, including provider-assigned
  sub-allocations (needed to reproduce the aggregation case of Table 9).
"""

from repro.net.asn import ASN, format_asn, parse_asn
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie
from repro.net.allocator import AddressAllocator, AddressBlock

__all__ = [
    "ASN",
    "ASPath",
    "AddressAllocator",
    "AddressBlock",
    "Prefix",
    "PrefixTrie",
    "format_asn",
    "parse_asn",
]
