"""Tests for the resumable cross-process sweep orchestrator."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.session.sweep import (
    SweepInterrupted,
    expand_case_specs,
    run_sweep,
)

#: Small, fast family samples (≈50-AS topologies) used across the tests.
CASES = ["collector-size@0", "collector-size@1", "multihoming@0"]

#: A light experiment subset keeps each case well under a second.
EXPERIMENTS = ["table2", "table5"]


class TestExpandCaseSpecs:
    def test_explicit_specs_pass_through(self):
        assert expand_case_specs(["small", "multihoming@3"]) == [
            "small",
            "multihoming@3",
        ]

    def test_family_expansion(self):
        assert expand_case_specs(None, ["multihoming"], count=3, seed=5) == [
            "multihoming@5",
            "multihoming@6",
            "multihoming@7",
        ]

    def test_deduplicates_in_order(self):
        assert expand_case_specs(
            ["multihoming@0"], ["multihoming"], count=2, seed=0
        ) == ["multihoming@0", "multihoming@1"]

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            expand_case_specs([])

    def test_unknown_family_raises(self):
        with pytest.raises(ExperimentError):
            expand_case_specs(None, ["no-such-family"])


class TestRunSweep:
    def test_cold_then_resumed_then_cached(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_sweep(CASES, cache_dir=cache_dir, experiments=EXPERIMENTS)
        assert cold.ok
        assert cold.count("completed") == len(CASES)

        # Same sweep again: the manifest short-circuits every case.
        resumed = run_sweep(CASES, cache_dir=cache_dir, experiments=EXPERIMENTS)
        assert resumed.count("resumed") == len(CASES)

        # Fresh sweep dir, same artifact store: reports come from the disk
        # tier without any stage being rebuilt.
        warm = run_sweep(
            CASES,
            cache_dir=cache_dir,
            sweep_dir=tmp_path / "warm",
            experiments=EXPERIMENTS,
        )
        assert warm.count("cached") == len(CASES)
        for case in warm.cases:
            assert case.cache_stats["report"]["disk_hits"] == 1

        # Byte-identical case reports between the cold and warm sweeps.
        for cold_case, warm_case in zip(cold.cases, warm.cases):
            cold_text = open(cold_case.report_path).read()
            warm_text = open(warm_case.report_path).read()
            assert cold_text == warm_text

    def test_interrupt_and_resume(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with pytest.raises(SweepInterrupted):
            run_sweep(
                CASES, cache_dir=cache_dir, experiments=EXPERIMENTS, fail_after=1
            )
        report = run_sweep(CASES, cache_dir=cache_dir, experiments=EXPERIMENTS)
        assert report.ok
        assert report.count("resumed") == 1
        # Interrupted work is still reused: the remaining cases may be
        # completed or served from the report tier, but nothing is lost.
        assert report.count("resumed") + report.count("completed") + report.count(
            "cached"
        ) == len(CASES)
        manifest = json.loads(
            (tmp_path / "cache" / "sweeps").glob("*/manifest.json").__next__().read_text()
        )
        assert set(manifest["cases"]) == set(CASES)

    def test_failed_case_is_isolated(self, tmp_path):
        report = run_sweep(
            ["collector-size@0", "multihoming@0"],
            cache_dir=tmp_path / "cache",
            experiments=["table2", "no-such-experiment"],
        )
        assert not report.ok
        assert report.count("failed") == 2

    def test_changed_experiments_recompute(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep(CASES[:1], cache_dir=cache_dir, experiments=["table2"])
        other = run_sweep(CASES[:1], cache_dir=cache_dir, experiments=["table5"])
        # New experiment set → new sweep dir and new report keys, but the
        # stage artifacts are shared: no propagation rebuild happened.
        case = other.cases[0]
        assert case.status == "completed"
        assert case.cache_stats["propagation"]["disk_hits"] == 1
        assert case.cache_stats["propagation"]["misses"] == 0

    def test_validates_specs_before_work(self, tmp_path):
        with pytest.raises(ExperimentError):
            run_sweep(["no-such-scenario"], cache_dir=tmp_path / "cache")

    def test_bad_workers(self, tmp_path):
        with pytest.raises(ExperimentError):
            run_sweep(CASES, cache_dir=tmp_path / "cache", workers=0)

    def test_parallel_matches_serial(self, tmp_path):
        serial = run_sweep(
            CASES,
            cache_dir=tmp_path / "serial",
            experiments=EXPERIMENTS,
        )
        parallel = run_sweep(
            CASES,
            cache_dir=tmp_path / "parallel",
            experiments=EXPERIMENTS,
            workers=2,
        )
        for left, right in zip(serial.cases, parallel.cases):
            assert left.spec == right.spec
            assert open(left.report_path).read() == open(right.report_path).read()
