"""Unit tests for the annotated AS graph."""

import pytest

from repro.exceptions import TopologyError
from repro.net.aspath import ASPath
from repro.topology.graph import AnnotatedASGraph, Relationship


@pytest.fixture
def paper_figure1_graph():
    """The annotated AS graph of paper Fig. 1.

    AS2 is the provider of AS4 (and AS5); AS1 is a provider of AS2 and AS3;
    AS3 peers with AS4; AS4 is the provider of AS6.
    """
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[(1, 2), (1, 3), (2, 4), (2, 5), (4, 6)],
        peer_peer=[(3, 4)],
    )
    return graph


class TestConstruction:
    def test_relationships_are_symmetric(self, paper_figure1_graph):
        graph = paper_figure1_graph
        assert graph.relationship(2, 4) is Relationship.CUSTOMER
        assert graph.relationship(4, 2) is Relationship.PROVIDER
        assert graph.relationship(3, 4) is Relationship.PEER
        assert graph.relationship(4, 3) is Relationship.PEER

    def test_add_edge_orientation(self):
        graph = AnnotatedASGraph()
        graph.add_edge(10, 20, Relationship.PROVIDER)
        assert graph.is_provider_of(20, 10)

    def test_add_sibling(self):
        graph = AnnotatedASGraph()
        graph.add_sibling(1, 2)
        assert graph.relationship(1, 2) is Relationship.SIBLING
        assert graph.siblings_of(1) == [2]

    def test_self_loops_rejected(self):
        graph = AnnotatedASGraph()
        with pytest.raises(TopologyError):
            graph.add_provider_customer(1, 1)
        with pytest.raises(TopologyError):
            graph.add_peer_peer(2, 2)
        with pytest.raises(TopologyError):
            graph.add_sibling(3, 3)

    def test_remove_edge(self, paper_figure1_graph):
        graph = paper_figure1_graph
        graph.remove_edge(3, 4)
        assert graph.relationship(3, 4) is None
        assert graph.relationship(4, 3) is None

    def test_counts_and_degree(self, paper_figure1_graph):
        graph = paper_figure1_graph
        assert len(graph) == 6
        assert graph.edge_count() == 6
        assert graph.degree(2) == 3
        assert graph.degree(6) == 1

    def test_relationship_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER
        assert Relationship.SIBLING.inverse() is Relationship.SIBLING


class TestNeighborQueries:
    def test_customers_providers_peers(self, paper_figure1_graph):
        graph = paper_figure1_graph
        assert sorted(graph.customers_of(2)) == [4, 5]
        assert graph.providers_of(4) == [2]
        assert graph.peers_of(4) == [3]
        assert graph.providers_of(1) == []

    def test_is_provider_and_peer(self, paper_figure1_graph):
        graph = paper_figure1_graph
        assert graph.is_provider_of(2, 4)
        assert not graph.is_provider_of(4, 2)
        assert graph.is_peer_of(3, 4)
        assert not graph.is_peer_of(1, 4)

    def test_multihoming_and_stub(self):
        graph = AnnotatedASGraph.from_edges(
            provider_customer=[(1, 3), (2, 3), (1, 4)]
        )
        assert graph.is_multihomed(3)
        assert not graph.is_multihomed(4)
        assert graph.is_stub(3)
        assert not graph.is_stub(1)

    def test_edges_iteration_orients_transit(self, paper_figure1_graph):
        edges = list(paper_figure1_graph.edges())
        assert len(edges) == 6
        transit = [e for e in edges if e.relationship is Relationship.CUSTOMER]
        assert all(paper_figure1_graph.is_provider_of(e.provider, e.customer) for e in transit)
        peer_edges = [e for e in edges if e.relationship is Relationship.PEER]
        assert len(peer_edges) == 1
        assert peer_edges[0].other(3) == 4
        with pytest.raises(TopologyError):
            peer_edges[0].other(99)


class TestCustomerCone:
    def test_customer_cone(self, paper_figure1_graph):
        graph = paper_figure1_graph
        assert graph.customer_cone(1) == {2, 3, 4, 5, 6}
        assert graph.customer_cone(2) == {4, 5, 6}
        assert graph.customer_cone(6) == set()

    def test_customer_cone_unknown_as(self, paper_figure1_graph):
        with pytest.raises(TopologyError):
            paper_figure1_graph.customer_cone(99)

    def test_is_customer_of(self, paper_figure1_graph):
        graph = paper_figure1_graph
        assert graph.is_customer_of(6, 1)  # indirect
        assert graph.is_customer_of(4, 2)  # direct
        assert not graph.is_customer_of(3, 2)  # unrelated branch
        assert not graph.is_customer_of(1, 4)  # inverse direction
        assert not graph.is_customer_of(99, 1)

    def test_find_customer_path(self, paper_figure1_graph):
        graph = paper_figure1_graph
        path = graph.find_customer_path(1, 6)
        assert path is not None
        assert path[0] == 1 and path[-1] == 6
        assert graph.path_is_active_customer_path(path)
        assert graph.find_customer_path(2, 3) is None

    def test_all_customer_paths_with_multihoming(self):
        graph = AnnotatedASGraph.from_edges(
            provider_customer=[(1, 2), (1, 3), (2, 4), (3, 4)]
        )
        paths = graph.all_customer_paths(1, 4)
        assert sorted(paths) == [[1, 2, 4], [1, 3, 4]]

    def test_all_customer_paths_respects_limit(self):
        graph = AnnotatedASGraph.from_edges(
            provider_customer=[(1, 2), (1, 3), (2, 4), (3, 4)]
        )
        assert len(graph.all_customer_paths(1, 4, limit=1)) == 1


class TestValleyFree:
    def test_customer_path_is_valley_free(self, paper_figure1_graph):
        assert paper_figure1_graph.is_valley_free([1, 2, 4, 6])

    def test_uphill_then_downhill_is_valley_free(self, paper_figure1_graph):
        # 5 -> 2 (provider) then 2 -> 4 (customer): seen from receiver 5,
        # the path 5 2 4 means 5 learned it from 2... we validate receiver->origin order.
        assert paper_figure1_graph.is_valley_free([5, 2, 4])

    def test_peer_in_middle_is_valley_free(self, paper_figure1_graph):
        # Receiver 2 -> customer 4 -> peer 3? Path [2, 4, 3] from receiver to origin:
        # origin 3 announces to peer 4, 4 announces peer route to provider 2 -> valley!
        assert not paper_figure1_graph.is_valley_free([2, 4, 3])

    def test_valley_path_rejected(self, paper_figure1_graph):
        # Origin 5 announces to provider 2; 2 would have to announce a
        # provider... wait path [4, 2, 1]: origin 1, 1 announces to customer 2
        # (fine), 2 announces provider route to customer 4 (fine, downhill).
        assert paper_figure1_graph.is_valley_free([4, 2, 1])
        # Path [6, 4, 3]: origin 3 announces to peer 4, 4 announces peer route
        # down to customer 6 — that is allowed (peer then downhill).
        assert paper_figure1_graph.is_valley_free([6, 4, 3])
        # Path [3, 4, 6] read receiver-first: origin 6 announces to provider 4
        # (uphill), then 4 announces customer route to peer 3 — allowed.
        assert paper_figure1_graph.is_valley_free([3, 4, 6])
        # A genuine valley: [5, 2, 1] reversed is 1 -> 2 (downhill to customer)
        # then 2 -> 5 (downhill again) — fine.  Use two peers instead:
        graph = AnnotatedASGraph.from_edges(
            provider_customer=[(1, 3)], peer_peer=[(1, 2), (2, 4)]
        )
        # origin 4 announces to peer 2, 2 would announce peer route to peer 1: invalid.
        assert not graph.is_valley_free([1, 2, 4])

    def test_unknown_edge_rejected(self, paper_figure1_graph):
        assert not paper_figure1_graph.is_valley_free([1, 6])

    def test_single_as_and_aspath_input(self, paper_figure1_graph):
        assert paper_figure1_graph.is_valley_free([4])
        assert paper_figure1_graph.is_valley_free(ASPath.parse("1 2 4 6"))
        assert paper_figure1_graph.is_valley_free(ASPath.parse("1 1 2 2 4 6"))


class TestConversion:
    def test_to_networkx(self, paper_figure1_graph):
        nx_graph = paper_figure1_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph.has_edge(2, 4)
        assert nx_graph[2][4]["relationship"] == "p2c"
        assert nx_graph.has_edge(3, 4) and nx_graph.has_edge(4, 3)

    def test_repr(self, paper_figure1_graph):
        assert "ases=6" in repr(paper_figure1_graph)
