"""Table 9 — prefix splitting and prefix aggregating vs. selective announcing."""

from __future__ import annotations

from repro.core.causes import CauseAnalyzer
from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import provider_tables, sa_reports
from repro.experiments.registry import register


@register
class Table9Experiment(Experiment):
    """How many SA prefixes the splitting/aggregating cases can explain."""

    experiment_id = "table9"
    title = "SA prefixes attributable to prefix splitting and prefix aggregating"
    paper_reference = "Table 9, Section 5.1.5"
    requires = frozenset({Stage.TOPOLOGY, Stage.PROPAGATION})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        analyzer = CauseAnalyzer(dataset.ground_truth_graph)
        tables = provider_tables(dataset)
        result.headers = [
            "provider",
            "# SA prefixes",
            "# prefix splitting",
            "# prefix aggregating",
            "# selective announcing",
        ]
        for provider, report in sorted(sa_reports(dataset).items()):
            breakdown = analyzer.cause_breakdown(report, tables[provider])
            result.rows.append(
                [
                    f"AS{provider}",
                    breakdown.sa_prefix_count,
                    breakdown.splitting_count,
                    breakdown.aggregating_count,
                    breakdown.selective_count,
                ]
            )
        result.notes.append(
            "Paper Table 9: splitting and aggregating explain only a few percent of SA "
            "prefixes (e.g. 127 + 218 of AS1's 9120); selective announcing dominates."
        )
        return result
