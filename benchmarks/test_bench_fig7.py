"""Benchmark: reproduce Figure 7 (SA -> non-SA shifting by uptime).

Paper shape: a majority of ever-SA prefixes remain SA over the whole period
(about one sixth shift to non-SA over a month, fewer within one day), and
most prefixes have full uptime.
"""


def test_bench_fig7(benchmark, run_experiment):
    result = run_experiment(benchmark, "fig7")
    daily = [row for row in result.rows if row[0].startswith("fig7a")]
    assert daily
    total_remaining = sum(row[2] for row in daily)
    total_shifting = sum(row[3] for row in daily)
    assert total_remaining + total_shifting > 0
    assert total_remaining > total_shifting
    # The bulk of the SA population sits at the maximum uptime, as in Fig. 7.
    max_uptime = max(row[1] for row in daily)
    at_max = sum(row[2] + row[3] for row in daily if row[1] == max_uptime)
    assert at_max >= 0.5 * (total_remaining + total_shifting)
