#!/usr/bin/env python3
"""Persistence of SA prefixes under policy churn (paper Section 5.1.4).

Simulates a week of daily snapshots of a small Internet whose origin ASes
occasionally change their selective-announcement pattern, then reports, for
the largest Tier-1:

* the per-snapshot totals (the Fig. 6 series), and
* how many ever-SA prefixes remained SA in every snapshot they appeared in
  vs. shifted to non-SA at some point (the Fig. 7 split).

Run with::

    python examples/persistence_study.py
"""

from repro.core.persistence import PersistenceAnalyzer
from repro.reporting.figures import ascii_series
from repro.reporting.tables import ascii_table, format_percent
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.timeline import Timeline, TimelineParameters
from repro.topology.generator import GeneratorParameters, InternetGenerator

SNAPSHOTS = 7


def main() -> None:
    internet = InternetGenerator(
        GeneratorParameters(seed=8, tier1_count=4, tier2_count=8, tier3_count=14, stub_count=80)
    ).generate()
    assignment = PolicyGenerator(PolicyParameters(seed=23)).generate(internet)
    provider = max(internet.tier1, key=internet.graph.degree)

    timeline = Timeline(
        internet,
        assignment,
        observed_ases=[provider],
        parameters=TimelineParameters(
            snapshot_count=SNAPSHOTS,
            churn_probability=0.15,
            appear_probability=0.03,
            disappear_probability=0.05,
            seed=99,
        ),
    )
    snapshots = timeline.run()

    analyzer = PersistenceAnalyzer(internet.graph)
    series = analyzer.series_for_provider(snapshots, provider)
    print(f"Prefixes observed at AS{provider} over {SNAPSHOTS} daily snapshots:")
    print(
        ascii_series(
            [index + 1 for index in series.snapshot_indices],
            {
                "all prefixes": [float(v) for v in series.all_prefix_counts],
                "SA prefixes ": [float(v) for v in series.sa_prefix_counts],
            },
            width=40,
        )
    )
    print()

    distribution = analyzer.uptime_distribution(snapshots, provider)
    rows = [
        [uptime, remaining, shifting]
        for uptime, remaining, shifting in distribution.histogram()
        if remaining or shifting
    ]
    print("SA-prefix uptime (Fig. 7 style):")
    print(ascii_table(["uptime (days)", "remaining as SA", "shifted to non-SA"], rows))
    print(
        f"{format_percent(distribution.percent_shifting)} of ever-SA prefixes shifted "
        "to non-SA during the period."
    )


if __name__ == "__main__":
    main()
