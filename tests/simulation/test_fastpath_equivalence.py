"""Golden equivalence suite: fast engine ≡ legacy engine, every scenario.

The fast engine's contract is *semantic identity* with the legacy engine:
same observed tables (candidates, best routes, attributes), same message
counts, same truncated prefixes — for every registered scenario and for both
the in-process and the process-pool execution paths.  This suite is the
gate that keeps hot-path optimizations honest.

The comparison itself lives in :mod:`repro.fuzz.oracles`
(``check_propagation_equivalence``) and is shared with the differential
fuzz harness, so the golden suite and the fuzzer always check the same
surface.
"""

import pytest

from repro.fuzz.oracles import check_propagation_equivalence
from repro.session.cache import StageCache
from repro.session.scenarios import get_scenario, scenario_names
from repro.simulation.fastpath import FastPropagationEngine
from repro.simulation.propagation import PropagationEngine, SimulationResult

#: workers=1 exercises the in-process core; workers=2 and 4 the zero-copy
#: process pool (different shard cuts, same deterministic task-order merge).
WORKER_COUNTS = (1, 2, 4)

_CACHE: dict[str, tuple] = {}


def _scenario_runs(name: str):
    """(internet, plan, legacy result) for a scenario, built once per session."""
    cached = _CACHE.get(name)
    if cached is None:
        study = get_scenario(name).study(cache=StageCache())
        internet = study.topology()
        plan = study.policies()
        legacy = PropagationEngine(
            internet, plan.assignment, observed_ases=plan.observed_ases
        ).run()
        cached = _CACHE[name] = (internet, plan, legacy)
    return cached


def assert_equivalent(legacy: SimulationResult, fast: SimulationResult) -> None:
    # Raises OracleViolation (with the divergence named) on any mismatch.
    check_propagation_equivalence(legacy, fast)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("scenario", sorted(scenario_names()))
def test_fast_engine_matches_legacy(scenario: str, workers: int) -> None:
    internet, plan, legacy = _scenario_runs(scenario)
    fast = FastPropagationEngine(
        internet,
        plan.assignment,
        observed_ases=plan.observed_ases,
        workers=workers,
    ).run()
    assert_equivalent(legacy, fast)


def test_session_layer_engines_agree() -> None:
    """The Study propagation stage builds the same artifact under both engines."""
    from repro.session.stages import PropagationSettings

    fast_study = get_scenario("small").study(cache=StageCache())
    legacy_study = get_scenario("small").study(
        cache=StageCache(), propagation=PropagationSettings(engine="legacy")
    )
    assert fast_study.propagation_settings.engine == "fast"
    assert_equivalent(legacy_study.propagation(), fast_study.propagation())


def test_engine_choice_is_part_of_the_stage_key() -> None:
    from repro.session.stages import PropagationSettings, Stage

    cache = StageCache()
    fast_study = get_scenario("small").study(cache=cache)
    legacy_study = get_scenario("small").study(
        cache=cache, propagation=PropagationSettings(engine="legacy")
    )
    assert fast_study.stage_key(Stage.PROPAGATION) != legacy_study.stage_key(
        Stage.PROPAGATION
    )
    # Upstream stages are untouched by the execution settings.
    assert fast_study.stage_key(Stage.POLICIES) == legacy_study.stage_key(Stage.POLICIES)
