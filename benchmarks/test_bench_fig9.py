"""Benchmark: reproduce Figure 9 (prefix counts per next-hop AS).

Paper shape: for an AS with a provider, one next-hop AS announces (nearly)
the full table — a large gap above everyone else; for provider-free ASes the
curve is dominated by peers at the top and 1-2 prefix customers in the tail.
"""


def test_bench_fig9(benchmark, run_experiment):
    result = run_experiment(benchmark, "fig9")
    by_view = {}
    for view, has_providers, rank, neighbor, count in result.rows:
        by_view.setdefault((view, has_providers), []).append(count)
    assert len(by_view) >= 2
    for (view, has_providers), counts in by_view.items():
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] <= 10  # the tail announces only a handful of prefixes
        if has_providers == "yes":
            assert counts[0] >= 5 * max(1, counts[len(counts) // 2])
