"""Per-AS routing-policy configuration and the seeded policy generator.

The paper's findings are statements about the policies operators configure:

* import policies assign LOCAL_PREF by relationship, almost always in the
  *typical* order customer > peer > provider (Tables 2, 3), and almost always
  keyed on the next-hop AS rather than on the prefix (Fig. 2);
* export policies toward providers frequently announce prefixes to only a
  subset of providers — *selective announcement* — mostly for inbound
  traffic engineering (Tables 5–9), sometimes expressed as a community that
  tells the direct provider not to propagate the route further;
* export policies toward peers almost always announce everything (Table 10);
* many ASes tag routes with communities that encode the relationship with
  the neighbor the route was learned from (Appendix, Table 11).

:class:`ASPolicy` captures one AS's knobs for all of the above, and
:class:`PolicyGenerator` draws a complete policy assignment for a synthetic
Internet from a seeded random source, recording the ground truth (who
selectively announces what) so the inference pipeline can be validated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.attributes import Community
from repro.exceptions import PolicyError
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.topology.generator import SyntheticInternet
from repro.topology.graph import Relationship


@dataclass(frozen=True)
class LocalPrefScheme:
    """LOCAL_PREF values an AS assigns by neighbor relationship.

    The defaults encode the *typical* ordering the paper observes:
    customer routes above peer routes above provider routes.
    """

    customer: int = 110
    peer: int = 100
    provider: int = 90
    sibling: int = 105

    def value_for(self, relationship: Relationship) -> int:
        """Return the LOCAL_PREF for a route learned over the given relationship."""
        if relationship is Relationship.CUSTOMER:
            return self.customer
        if relationship is Relationship.PEER:
            return self.peer
        if relationship is Relationship.PROVIDER:
            return self.provider
        return self.sibling

    @property
    def is_typical(self) -> bool:
        """``True`` when customer > peer > provider (the paper's typical order)."""
        return self.customer > self.peer > self.provider


@dataclass(frozen=True)
class CommunityPlan:
    """How an AS tags received routes with relationship communities.

    Mirrors the AS12859 example of Table 11: value ranges per relationship,
    with each neighbor assigned a value from its relationship's range.

    Attributes:
        asn: the AS defining the communities.
        customer_base: first value of the customer range.
        peer_base: first value of the peer range.
        provider_base: first value of the provider range.
        range_size: how many values each range spans.
    """

    asn: ASN
    customer_base: int = 4000
    peer_base: int = 1000
    provider_base: int = 2000
    range_size: int = 1000

    def community_for(self, relationship: Relationship, neighbor_index: int = 0) -> Community:
        """Return the community tagged on routes from a neighbor of the given kind."""
        base = self.base_for(relationship)
        offset = (neighbor_index * 10) % self.range_size
        return Community(self.asn, base + offset)

    def base_for(self, relationship: Relationship) -> int:
        """Return the first value of the range used for a relationship."""
        if relationship is Relationship.CUSTOMER:
            return self.customer_base
        if relationship is Relationship.PEER:
            return self.peer_base
        if relationship is Relationship.PROVIDER:
            return self.provider_base
        return self.customer_base

    def relationship_of(self, community: Community) -> Relationship | None:
        """Map a community value back to the relationship range it falls in.

        Returns ``None`` for communities defined by other ASes or values
        outside every range — this is the ground-truth decoder the Appendix
        verification is checked against.
        """
        if community.asn != self.asn:
            return None
        value = community.value
        for relationship in (Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER):
            base = self.base_for(relationship)
            if base <= value < base + self.range_size:
                return relationship
        return None


#: Community value (per provider AS) that asks the provider not to propagate
#: the tagged route any further upward — the paper's Section 5.1.5 Case 3
#: "community tag indicating that the prefixes should not be announced
#: further".
SCOPED_ANNOUNCEMENT_VALUE = 65281


def scoped_community(provider: ASN) -> Community:
    """The community a customer attaches to scope a route to ``provider`` only."""
    return Community(provider % 65536, SCOPED_ANNOUNCEMENT_VALUE)


@dataclass
class ASPolicy:
    """The complete routing policy of one AS in the simulation.

    Attributes:
        asn: the AS this policy belongs to.
        local_pref: relationship → LOCAL_PREF scheme.
        neighbor_local_pref: per-neighbor overrides (models the atypical
            assignments of Tables 2/3).
        prefix_local_pref: per-prefix overrides (models the prefix-based
            assignments that make Fig. 2 less than 100%).
        announce_to_providers: for each originated prefix, the subset of
            direct providers it is announced to; prefixes absent from the map
            are announced to every provider.
        scoped_to_providers: originated prefixes announced to (some)
            providers with a "do not propagate further" community; maps
            prefix → set of providers that receive the scoped announcement.
        withhold_from_peers: originated prefixes *not* announced to the given
            peers (models the few peers of Table 10 that do not export
            everything).
        export_customer_prefixes_to: optional restriction applied by a
            *transit* AS: customer-learned prefixes are exported only to this
            subset of its providers (``None`` means no restriction).
        community_plan: relationship-tagging plan (``None`` when the AS does
            not tag).
        honor_scoped_communities: whether the AS, as a provider, honours the
            scoped-announcement community of its customers.
    """

    asn: ASN
    local_pref: LocalPrefScheme = field(default_factory=LocalPrefScheme)
    neighbor_local_pref: dict[ASN, int] = field(default_factory=dict)
    prefix_local_pref: dict[Prefix, int] = field(default_factory=dict)
    announce_to_providers: dict[Prefix, frozenset[ASN]] = field(default_factory=dict)
    scoped_to_providers: dict[Prefix, frozenset[ASN]] = field(default_factory=dict)
    withhold_from_peers: dict[Prefix, frozenset[ASN]] = field(default_factory=dict)
    export_customer_prefixes_to: frozenset[ASN] | None = None
    community_plan: CommunityPlan | None = None
    honor_scoped_communities: bool = True

    # -- import side ----------------------------------------------------------

    def import_local_pref(
        self, neighbor: ASN, relationship: Relationship, prefix: Prefix
    ) -> int:
        """LOCAL_PREF assigned to a route for ``prefix`` learned from ``neighbor``.

        Per-prefix overrides win over per-neighbor overrides, which win over
        the relationship scheme — matching how a route-map with a prefix-list
        clause ahead of the catch-all clause behaves.
        """
        if prefix in self.prefix_local_pref:
            return self.prefix_local_pref[prefix]
        if neighbor in self.neighbor_local_pref:
            return self.neighbor_local_pref[neighbor]
        return self.local_pref.value_for(relationship)

    # -- export side -------------------------------------------------------------

    def providers_for_prefix(self, prefix: Prefix, all_providers: list[ASN]) -> set[ASN]:
        """Providers that receive a plain announcement of an originated prefix."""
        if prefix in self.announce_to_providers:
            return set(self.announce_to_providers[prefix]) & set(all_providers)
        return set(all_providers)

    def scoped_providers_for_prefix(self, prefix: Prefix) -> set[ASN]:
        """Providers that receive a scoped (do-not-propagate) announcement."""
        return set(self.scoped_to_providers.get(prefix, frozenset()))

    def peers_for_prefix(self, prefix: Prefix, all_peers: list[ASN]) -> set[ASN]:
        """Peers that receive the announcement of an originated prefix."""
        withheld = self.withhold_from_peers.get(prefix, frozenset())
        return set(all_peers) - set(withheld)

    def selectively_announced_prefixes(self, all_providers: list[ASN]) -> set[Prefix]:
        """Originated prefixes not plainly announced to every direct provider."""
        selective: set[Prefix] = set()
        for prefix, providers in self.announce_to_providers.items():
            if set(providers) != set(all_providers):
                selective.add(prefix)
        selective.update(self.scoped_to_providers)
        return selective

    @property
    def is_typical(self) -> bool:
        """``True`` when the relationship scheme is typical and no override breaks it."""
        return self.local_pref.is_typical


@dataclass(frozen=True)
class PolicyParameters:
    """Knobs of the random policy assignment.

    Frozen (immutable and hashable) so a parameter set can key the
    :mod:`repro.session` stage cache; derive variants with
    :func:`dataclasses.replace`.

    Attributes:
        seed: seed for the policy generator's random source.
        atypical_scheme_probability: probability that an AS uses an atypical
            relationship scheme (peer or provider preferred over customer).
        atypical_neighbor_probability: probability that one of an AS's
            neighbors gets an overriding LOCAL_PREF that violates the
            typical order.
        prefix_based_fraction: fraction of prefixes (at Looking Glass ASes)
            whose LOCAL_PREF is set per prefix instead of per next-hop AS.
        selective_announcement_probability: probability that a multihomed
            origin AS selectively announces at least one prefix.
        selective_prefix_fraction: fraction of a selectively announcing AS's
            prefixes that are announced to a strict subset of providers.
        scoped_announcement_probability: probability that a selective
            announcement uses the "do not propagate further" community
            instead of simply omitting providers.
        transit_selective_probability: probability that a multihomed transit
            AS restricts the providers to which it exports customer routes.
        peer_withhold_probability: probability that an origin AS withholds
            some prefixes from one of its peers (Table 10's small minority).
        community_tagging_probability: probability that an AS tags routes
            with relationship communities (Appendix).
    """

    seed: int = 20021111
    atypical_scheme_probability: float = 0.02
    atypical_neighbor_probability: float = 0.01
    prefix_based_fraction: float = 0.03
    selective_announcement_probability: float = 0.45
    selective_prefix_fraction: float = 0.7
    scoped_announcement_probability: float = 0.15
    transit_selective_probability: float = 0.12
    peer_withhold_probability: float = 0.08
    community_tagging_probability: float = 0.6

    def validate(self) -> None:
        """Raise :class:`PolicyError` for out-of-range probabilities."""
        for name in (
            "atypical_scheme_probability",
            "atypical_neighbor_probability",
            "prefix_based_fraction",
            "selective_announcement_probability",
            "selective_prefix_fraction",
            "scoped_announcement_probability",
            "transit_selective_probability",
            "peer_withhold_probability",
            "community_tagging_probability",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise PolicyError(f"{name} must be a probability, got {value}")


#: An atypical scheme: provider routes preferred over peer routes.  Customer
#: routes stay strictly preferred so that the Gao–Rexford convergence
#: condition still holds — the simulation only generates atypical policies of
#: this convergence-safe form (documented in DESIGN.md), which still count as
#: "atypical" under the paper's definition ("the local preference of provider
#: routes is not lower than that of peer routes").
ATYPICAL_SCHEME = LocalPrefScheme(customer=110, peer=90, provider=100)


@dataclass
class PolicyAssignment:
    """The generated policies plus the ground truth needed for validation.

    Attributes:
        policies: AS → its :class:`ASPolicy`.
        selective_origins: origin ASes that selectively announce at least one
            prefix, with the affected prefixes.
        scoped_origins: origin ASes using scoped (community) announcements,
            with the affected prefixes.
        selective_transits: transit ASes restricting customer-route exports.
        atypical_ases: ASes whose scheme or overrides violate the typical
            LOCAL_PREF order.
        tagging_ases: ASes with a community plan.
    """

    policies: dict[ASN, ASPolicy] = field(default_factory=dict)
    selective_origins: dict[ASN, set[Prefix]] = field(default_factory=dict)
    scoped_origins: dict[ASN, set[Prefix]] = field(default_factory=dict)
    selective_transits: set[ASN] = field(default_factory=set)
    atypical_ases: set[ASN] = field(default_factory=set)
    tagging_ases: set[ASN] = field(default_factory=set)

    def policy_for(self, asn: ASN) -> ASPolicy:
        """Return the policy of an AS (a default-typical policy if unassigned)."""
        policy = self.policies.get(asn)
        if policy is None:
            policy = ASPolicy(asn=asn)
            self.policies[asn] = policy
        return policy

    def all_selectively_announced(self) -> set[Prefix]:
        """Every prefix affected by origin-level selective or scoped announcement."""
        prefixes: set[Prefix] = set()
        for affected in self.selective_origins.values():
            prefixes.update(affected)
        for affected in self.scoped_origins.values():
            prefixes.update(affected)
        return prefixes


class PolicyGenerator:
    """Draws a :class:`PolicyAssignment` for a synthetic Internet."""

    def __init__(self, parameters: PolicyParameters | None = None) -> None:
        self.parameters = parameters or PolicyParameters()
        self.parameters.validate()

    def generate(
        self,
        internet: SyntheticInternet,
        looking_glass_ases: list[ASN] | None = None,
    ) -> PolicyAssignment:
        """Generate policies for every AS of ``internet``.

        ``looking_glass_ases`` are the ASes whose tables will be inspected at
        fine granularity; only they receive per-prefix LOCAL_PREF overrides
        (mirroring the paper, which can only observe prefix-based assignment
        where LOCAL_PREF is visible).
        """
        params = self.parameters
        rng = random.Random(params.seed)
        graph = internet.graph
        assignment = PolicyAssignment()
        looking_glass = set(looking_glass_ases or [])

        for asn in sorted(graph.ases()):
            policy = ASPolicy(asn=asn)
            # Import side: relationship scheme, rare atypical deviations.
            if rng.random() < params.atypical_scheme_probability:
                policy.local_pref = ATYPICAL_SCHEME
                assignment.atypical_ases.add(asn)
            self._assign_neighbor_overrides(policy, graph, rng, assignment)
            if asn in looking_glass:
                self._assign_prefix_overrides(policy, internet, rng)
            # Community tagging.
            if rng.random() < params.community_tagging_probability and graph.degree(asn) >= 3:
                policy.community_plan = CommunityPlan(asn=asn)
                assignment.tagging_ases.add(asn)
            # Export side.
            self._assign_origin_export_policy(policy, internet, rng, assignment)
            self._assign_transit_export_policy(policy, graph, rng, assignment)
            self._assign_peer_export_policy(policy, internet, rng)
            assignment.policies[asn] = policy
        return assignment

    # -- pieces --------------------------------------------------------------------

    def _assign_neighbor_overrides(
        self,
        policy: ASPolicy,
        graph,
        rng: random.Random,
        assignment: PolicyAssignment,
    ) -> None:
        params = self.parameters
        for neighbor in graph.neighbors(policy.asn):
            if rng.random() >= params.atypical_neighbor_probability:
                continue
            relationship = graph.relationship(policy.asn, neighbor)
            # Atypical assignments are generated in the convergence-safe form
            # only: customer routes stay strictly preferred, but a provider
            # neighbor can be raised to (or above) the peer level, and a peer
            # neighbor can be lowered to the provider level.  Both violate
            # the paper's "typical" ordering without creating dispute wheels.
            if relationship is Relationship.PROVIDER:
                policy.neighbor_local_pref[neighbor] = policy.local_pref.peer + 2
            elif relationship is Relationship.PEER:
                policy.neighbor_local_pref[neighbor] = policy.local_pref.provider - 2
            else:
                continue
            assignment.atypical_ases.add(policy.asn)

    def _assign_prefix_overrides(
        self, policy: ASPolicy, internet: SyntheticInternet, rng: random.Random
    ) -> None:
        fraction = self.parameters.prefix_based_fraction
        if fraction <= 0:
            return
        all_prefixes = internet.all_prefixes()
        if not all_prefixes:
            return
        sample_size = max(1, int(len(all_prefixes) * fraction))
        sample_size = min(sample_size, len(all_prefixes))
        for prefix in rng.sample(all_prefixes, k=sample_size):
            policy.prefix_local_pref[prefix] = rng.choice([80, 85, 95, 115, 120])

    def _assign_origin_export_policy(
        self,
        policy: ASPolicy,
        internet: SyntheticInternet,
        rng: random.Random,
        assignment: PolicyAssignment,
    ) -> None:
        params = self.parameters
        asn = policy.asn
        providers = internet.graph.providers_of(asn)
        prefixes = internet.prefixes_of(asn)
        if len(providers) < 2 or not prefixes:
            return
        if rng.random() >= params.selective_announcement_probability:
            return
        affected_count = max(1, int(round(len(prefixes) * params.selective_prefix_fraction)))
        affected = rng.sample(prefixes, k=min(affected_count, len(prefixes)))
        for prefix in affected:
            subset_size = rng.randint(1, len(providers) - 1)
            subset = frozenset(rng.sample(providers, k=subset_size))
            if rng.random() < params.scoped_announcement_probability:
                # Announce to the subset with a "do not propagate" community
                # and to nobody else plainly.
                policy.scoped_to_providers[prefix] = subset
                policy.announce_to_providers[prefix] = frozenset()
                assignment.scoped_origins.setdefault(asn, set()).add(prefix)
            else:
                policy.announce_to_providers[prefix] = subset
            assignment.selective_origins.setdefault(asn, set()).add(prefix)

    def _assign_transit_export_policy(
        self,
        policy: ASPolicy,
        graph,
        rng: random.Random,
        assignment: PolicyAssignment,
    ) -> None:
        params = self.parameters
        asn = policy.asn
        providers = graph.providers_of(asn)
        customers = graph.customers_of(asn)
        if len(providers) < 2 or not customers:
            return
        if rng.random() >= params.transit_selective_probability:
            return
        subset_size = rng.randint(1, len(providers) - 1)
        policy.export_customer_prefixes_to = frozenset(rng.sample(providers, k=subset_size))
        assignment.selective_transits.add(asn)

    def _assign_peer_export_policy(
        self, policy: ASPolicy, internet: SyntheticInternet, rng: random.Random
    ) -> None:
        params = self.parameters
        asn = policy.asn
        peers = internet.graph.peers_of(asn)
        prefixes = internet.prefixes_of(asn)
        if not peers or not prefixes:
            return
        if rng.random() >= params.peer_withhold_probability:
            return
        withheld_peers = frozenset(rng.sample(peers, k=max(1, len(peers) // 3)))
        withheld_prefixes = rng.sample(prefixes, k=max(1, len(prefixes) // 2))
        for prefix in withheld_prefixes:
            policy.withhold_from_peers[prefix] = withheld_peers
