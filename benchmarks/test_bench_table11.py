"""Benchmark: reproduce Table 11 (relationship-tagging community plan).

Paper shape: a tagging AS uses disjoint community ranges for customers,
peers and providers; the inferred semantics recover the published meaning.
"""


def test_bench_table11(benchmark, run_experiment):
    result = run_experiment(benchmark, "table11")
    assert len(result.rows) == 3
    published = [row[1] for row in result.rows]
    assert {"route received from peer", "route received from provider",
            "route received from customer"} == set(published)
    inferred = [row[2] for row in result.rows]
    matching = sum(1 for pub, inf in zip(published, inferred) if pub == inf)
    assert matching >= 2
