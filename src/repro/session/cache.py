"""Two-tier content-addressed cache for the staged Study pipeline.

Every stage of a :class:`~repro.session.study.Study` computes a *key* from
its own parameters plus the keys of the stages it depends on, then asks the
cache for the artifact.  Two studies that share a cache and agree on a prefix
of the pipeline therefore share the artifacts of that prefix — a sensitivity
sweep that varies only the policy parameters pays topology generation once.

The cache has two tiers:

* a **bounded in-memory LRU** (``max_entries``) holding live artifact
  objects, and
* an optional **on-disk tier** (:class:`~repro.storage.store.DiskStore`)
  holding codec-encoded artifacts under a shared ``--cache-dir`` /
  ``REPRO_CACHE_DIR`` directory.  Artifacts found there are decoded instead
  of rebuilt, which is what lets a new process — a ``repro run``, a sweep
  worker, a fuzz case — reuse stages another process already computed.

Keys are salted with the ``repro`` release, the storage schema version and
every codec version (:func:`repro.storage.versions.version_salt`), so a
format change simply re-addresses the world and stale artifacts are never
deserialized.

The cache records per-stage hit / disk-hit / miss counters so tests (and
``python -m repro cache stats``) can assert the reuse actually happened.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import StorageError
from repro.storage.store import DiskStore
from repro.storage.versions import version_salt

#: Default bound of the in-memory tier (stage artifacts are large; a
#: sweep's working set per process is a handful of pipeline prefixes).
DEFAULT_MAX_ENTRIES = 128

#: Environment variable naming the shared disk tier directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable overriding the in-memory bound of the global cache.
CACHE_MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"


def fingerprint(*parts: object) -> str:
    """A stable content hash for a tuple of (reprs of) parameter objects.

    The parts are frozen dataclasses, strings or prior stage keys; their
    ``repr`` is deterministic field-by-field, which makes the digest a
    content address of the whole upstream configuration.  The digest is
    salted with :func:`repro.storage.versions.version_salt` (package
    release + storage schema + codec versions), so artifacts persisted
    under one format version are unreachable — not misread — under another.
    """
    digest = hashlib.sha256()
    digest.update(version_salt().encode("utf-8"))
    digest.update(b"\x1e")
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()[:20]


@dataclass
class StageStats:
    """Hit/miss accounting for one stage of the pipeline."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def builds(self) -> int:
        """How many times the stage artifact was actually computed."""
        return self.misses

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain JSON-ready mapping."""
        return {"hits": self.hits, "disk_hits": self.disk_hits, "misses": self.misses}


_MISSING = object()


class StageCache:
    """A two-tier keyed artifact store shared by studies derived via ``with_``.

    Thread-safe with per-key build coordination: concurrent ``get_or_build``
    calls for the same key build the artifact once (waiters count as hits),
    while builds for *different* keys proceed in parallel — the lock guards
    only the bookkeeping, never a build, a decode or disk I/O.

    Args:
        max_entries: bound of the in-memory LRU tier; ``None`` means
            unbounded (the pre-disk-tier behaviour).
        disk: optional on-disk tier shared across processes; artifacts
            round-trip through it via the stage codecs
            (:mod:`repro.storage.codecs`).
    """

    def __init__(
        self,
        max_entries: int | None = None,
        disk: DiskStore | None = None,
    ) -> None:
        self.max_entries = max_entries
        self.disk = disk
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._stats: dict[str, StageStats] = {}
        self._lock = threading.RLock()
        self._inflight: dict[str, threading.Event] = {}

    def get_or_build(
        self,
        stage: str,
        key: str,
        builder: Callable[[], Any],
        *,
        encode: Callable[[Any], bytes] | None = None,
        decode: Callable[[bytes], Any] | None = None,
    ) -> Any:
        """Return the artifact for ``key``: memory, then disk, then build.

        Args:
            stage: pipeline stage name (stats bucket and disk subdirectory).
            key: the artifact's content address.
            builder: zero-argument callable computing the artifact.
            encode: optional codec serializer; freshly built artifacts are
                persisted to the disk tier when both ``encode`` and a disk
                tier are present.
            decode: optional codec deserializer; with a disk tier present,
                stored bytes are decoded instead of building.  A decode
                failure (corrupt or incompatible file) falls back to the
                builder.

        Returns:
            The artifact (possibly shared with concurrent callers).
        """
        while True:
            with self._lock:
                stats = self._stats.setdefault(stage, StageStats())
                if key in self._entries:
                    self._entries.move_to_end(key)
                    stats.hits += 1
                    return self._entries[key]
                pending = self._inflight.get(key)
                if pending is None:
                    self._inflight[key] = threading.Event()
                    break  # this thread owns the build
            # Another thread is building this key; wait and re-check (the
            # builder may have failed, in which case the loop retries).
            pending.wait()

        value = _MISSING
        from_disk = False
        try:
            if self.disk is not None and decode is not None:
                payload = self.disk.read(stage, key)
                if payload is not None:
                    try:
                        value = decode(payload)
                        from_disk = True
                    except Exception:
                        value = _MISSING  # corrupt artifact: rebuild below
            if value is _MISSING:
                value = builder()
                if self.disk is not None and encode is not None:
                    try:
                        self.disk.write(stage, key, encode(value))
                    except (OSError, StorageError):
                        # The disk tier is best-effort: a full disk or an
                        # artifact a codec cannot round-trip must not crash
                        # a computation that already succeeded.
                        pass
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise

        with self._lock:
            if from_disk:
                stats.disk_hits += 1
            else:
                stats.misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
            self._inflight.pop(key).set()
        return value

    def stats_for(self, stage: str) -> StageStats:
        """The hit/miss counters of one stage (zeros if never touched)."""
        with self._lock:
            return self._stats.setdefault(stage, StageStats())

    @property
    def stats(self) -> dict[str, StageStats]:
        """A snapshot of every stage's counters, keyed by stage name."""
        with self._lock:
            return {
                stage: StageStats(s.hits, s.disk_hits, s.misses)
                for stage, s in sorted(self._stats.items())
            }

    def stats_dict(self) -> dict[str, dict[str, int]]:
        """Every stage's counters as a JSON-ready nested mapping."""
        return {stage: stats.as_dict() for stage, stats in self.stats.items()}

    def disk_health(self) -> dict | None:
        """The disk tier's degradation/quarantine counters, or ``None``.

        Delegates to :meth:`repro.storage.store.DiskStore.health`; a
        memory-only cache reports ``None``.  Sweep workers attach this to
        their per-case stats so a degraded disk tier is visible in the
        sweep report instead of silently turning the warm path cold.
        """
        return self.disk.health() if self.disk is not None else None

    def clear(self, *, disk: bool = False) -> None:
        """Drop every completed artifact and reset the counters.

        Args:
            disk: when ``True``, also delete the disk tier's artifact files.
        """
        with self._lock:
            self._entries.clear()
            self._stats.clear()
        if disk and self.disk is not None:
            self.disk.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def cache_from_env() -> StageCache:
    """A cache configured from the environment.

    Reads :data:`CACHE_DIR_ENV` (``REPRO_CACHE_DIR``) for the disk tier —
    unset means memory-only — and :data:`CACHE_MAX_ENTRIES_ENV` for the
    in-memory bound (default :data:`DEFAULT_MAX_ENTRIES`, ``0`` means
    unbounded).
    """
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    raw_bound = os.environ.get(CACHE_MAX_ENTRIES_ENV, "")
    try:
        max_entries: int | None = int(raw_bound) if raw_bound else DEFAULT_MAX_ENTRIES
    except ValueError:
        max_entries = DEFAULT_MAX_ENTRIES
    if max_entries == 0:
        max_entries = None
    disk = DiskStore(cache_dir) if cache_dir else None
    return StageCache(max_entries=max_entries, disk=disk)


#: Process-wide default cache.  Scenario studies and the legacy
#: ``default_dataset``/``small_dataset`` helpers share it, which replaces the
#: two ``lru_cache`` singletons the seed API used.  Set ``REPRO_CACHE_DIR``
#: before the first import to give it a disk tier.
GLOBAL_CACHE = cache_from_env()
