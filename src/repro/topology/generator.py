"""Synthetic hierarchical Internet generator.

The paper's measurements run over the real 2002 Internet (Oregon RouteViews
plus Looking Glass servers).  Offline we substitute a synthetic AS-level
Internet that reproduces the structural features the inference pipeline keys
on:

* a fully meshed **Tier-1 clique** of provider-free ASes (the paper's AS1,
  AS1239, AS3549, AS7018, ...),
* **transit tiers** below the clique, each AS buying transit from one or
  more ASes of the tier above and peering laterally with some ASes of its
  own tier,
* a large population of **stub ASes**, a configurable fraction of which are
  multihomed (the paper finds ~75% of SA-prefix origins are multihomed), and
* **address space** allocated per AS, with some stubs using
  provider-assigned blocks (enabling the aggregation cause of Table 9) and
  some splitting their blocks into more-specifics (the splitting cause).

Everything is driven by a seeded :class:`random.Random` so experiments are
reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.net.allocator import AddressAllocator, AddressBlock
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.topology.graph import AnnotatedASGraph
from repro.topology.hierarchy import TierClassification, classify_tiers


@dataclass(frozen=True)
class GeneratorParameters:
    """Knobs of the synthetic Internet.

    The defaults produce a ~1100-AS Internet that runs the full experiment
    suite in a few seconds; the benchmark harness scales some of them up.

    Instances are frozen (immutable and hashable) so they can serve as
    content-addressed stage-cache keys in :mod:`repro.session`; derive
    variants with :func:`dataclasses.replace`.

    Attributes:
        seed: seed of the pseudo-random generator.
        tier1_count: number of ASes in the fully meshed Tier-1 clique.
        tier2_count: number of large regional/national transit ASes.
        tier3_count: number of small transit ASes.
        stub_count: number of stub (customer-only) ASes.
        stub_multihoming_probability: probability that a stub has more than
            one provider.
        max_stub_providers: maximum number of providers of a multihomed stub.
        stub_tier1_probability: probability that any given provider slot of a
            stub attaches directly to a Tier-1 AS instead of a lower-tier
            transit AS.  Real Tier-1s terminate thousands of enterprise
            customers directly (AT&T's degree is 1330 in Table 1), and the
            degree-based relationship inference relies on Tier-1 degrees
            dominating, so the synthetic Internet reproduces that skew.
        tier2_peering_probability: probability that two Tier-2 ASes peer.
        tier3_peering_probability: probability that two Tier-3 ASes peer.
        stub_peering_probability: probability that two stubs sharing a
            provider establish a (rare) peer link.
        prefixes_per_stub: maximum number of prefixes originated by a stub.
        prefixes_per_transit: maximum number of prefixes originated by a
            transit AS.
        provider_assigned_probability: probability that a stub's prefix is
            carved out of one of its providers' blocks instead of being
            provider-independent.
        split_probability: probability that a stub splits one of its
            prefixes into two more-specifics (the Table 9 splitting case).
        first_asn: AS number assigned to the first generated AS.
    """

    seed: int = 2002
    tier1_count: int = 8
    tier2_count: int = 40
    tier3_count: int = 120
    stub_count: int = 900
    stub_multihoming_probability: float = 0.45
    max_stub_providers: int = 3
    stub_tier1_probability: float = 0.3
    tier2_peering_probability: float = 0.35
    tier3_peering_probability: float = 0.08
    stub_peering_probability: float = 0.01
    prefixes_per_stub: int = 4
    prefixes_per_transit: int = 3
    provider_assigned_probability: float = 0.15
    split_probability: float = 0.12
    first_asn: int = 1

    def validate(self) -> None:
        """Raise :class:`TopologyError` on nonsensical parameter combinations."""
        if self.tier1_count < 2:
            raise TopologyError("the Tier-1 clique needs at least two ASes")
        if min(self.tier2_count, self.tier3_count, self.stub_count) < 0:
            raise TopologyError("AS counts cannot be negative")
        for name in (
            "stub_multihoming_probability",
            "stub_tier1_probability",
            "tier2_peering_probability",
            "tier3_peering_probability",
            "stub_peering_probability",
            "provider_assigned_probability",
            "split_probability",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise TopologyError(f"{name} must be a probability, got {value}")
        if self.max_stub_providers < 1:
            raise TopologyError("max_stub_providers must be at least 1")


@dataclass
class SyntheticInternet:
    """A generated Internet: graph, tiers, address space and prefix ownership.

    Attributes:
        parameters: the generator parameters that produced it.
        graph: the ground-truth annotated AS graph.
        tiers: the tier classification derived from the graph.
        allocator: the address allocator with every allocated block.
        originated: mapping AS → the prefixes it originates (after any
            splitting), i.e. exactly what the AS will inject into BGP.
        split_pairs: list of ``(original, [more_specifics])`` for ASes that
            split a prefix (ground truth for the Table 9 splitting case).
        provider_assigned: blocks carved out of a provider's space (ground
            truth for the Table 9 aggregation case).
    """

    parameters: GeneratorParameters
    graph: AnnotatedASGraph
    tiers: TierClassification
    allocator: AddressAllocator
    originated: dict[ASN, list[Prefix]] = field(default_factory=dict)
    split_pairs: list[tuple[Prefix, list[Prefix]]] = field(default_factory=list)
    provider_assigned: list[AddressBlock] = field(default_factory=list)

    @property
    def tier1(self) -> list[ASN]:
        """The Tier-1 ASes, sorted by AS number."""
        return sorted(self.tiers.tier1)

    def prefixes_of(self, asn: ASN) -> list[Prefix]:
        """The prefixes originated by an AS (empty list for transit-only ASes)."""
        return list(self.originated.get(asn, []))

    def origin_of(self, prefix: Prefix) -> ASN | None:
        """Return the AS that originates ``prefix``, if any."""
        for asn, prefixes in self.originated.items():
            if prefix in prefixes:
                return asn
        return None

    def all_prefixes(self) -> list[Prefix]:
        """Every originated prefix across all ASes."""
        return [prefix for prefixes in self.originated.values() for prefix in prefixes]

    def stub_ases(self) -> list[ASN]:
        """Every stub AS (no customers), sorted."""
        return sorted(asn for asn in self.graph.ases() if self.graph.is_stub(asn))

    def __repr__(self) -> str:
        return (
            f"SyntheticInternet(ases={len(self.graph)}, edges={self.graph.edge_count()}, "
            f"prefixes={len(self.all_prefixes())})"
        )


class InternetGenerator:
    """Builds :class:`SyntheticInternet` instances from :class:`GeneratorParameters`."""

    def __init__(self, parameters: GeneratorParameters | None = None) -> None:
        self.parameters = parameters or GeneratorParameters()
        self.parameters.validate()
        self._rng = random.Random(self.parameters.seed)

    # -- public API ----------------------------------------------------------

    def generate(self) -> SyntheticInternet:
        """Generate the topology, the tiers and the address plan."""
        params = self.parameters
        graph = AnnotatedASGraph()
        next_asn = params.first_asn

        tier1 = list(range(next_asn, next_asn + params.tier1_count))
        next_asn += params.tier1_count
        tier2 = list(range(next_asn, next_asn + params.tier2_count))
        next_asn += params.tier2_count
        tier3 = list(range(next_asn, next_asn + params.tier3_count))
        next_asn += params.tier3_count
        stubs = list(range(next_asn, next_asn + params.stub_count))

        for asn in tier1 + tier2 + tier3 + stubs:
            graph.add_as(asn)

        self._build_tier1_clique(graph, tier1)
        self._attach_tier(graph, tier2, tier1, min_providers=1, max_providers=3)
        self._add_lateral_peering(graph, tier2, params.tier2_peering_probability)
        self._attach_tier(graph, tier3, tier2, min_providers=1, max_providers=2)
        self._add_lateral_peering(graph, tier3, params.tier3_peering_probability)
        self._attach_stubs(graph, stubs, tier2 + tier3, tier1)
        self._add_stub_peering(graph, stubs)

        allocator = AddressAllocator()
        internet = SyntheticInternet(
            parameters=params,
            graph=graph,
            tiers=classify_tiers(graph),
            allocator=allocator,
        )
        self._allocate_addresses(internet, tier1, tier2, tier3, stubs)
        return internet

    # -- topology construction ------------------------------------------------

    def _build_tier1_clique(self, graph: AnnotatedASGraph, tier1: list[ASN]) -> None:
        for index, left in enumerate(tier1):
            for right in tier1[index + 1:]:
                graph.add_peer_peer(left, right)

    def _attach_tier(
        self,
        graph: AnnotatedASGraph,
        members: list[ASN],
        upstream_pool: list[ASN],
        min_providers: int,
        max_providers: int,
    ) -> None:
        for asn in members:
            provider_count = self._rng.randint(min_providers, max_providers)
            providers = self._rng.sample(
                upstream_pool, k=min(provider_count, len(upstream_pool))
            )
            for provider in providers:
                graph.add_provider_customer(provider, asn)

    def _add_lateral_peering(
        self, graph: AnnotatedASGraph, members: list[ASN], probability: float
    ) -> None:
        for index, left in enumerate(members):
            for right in members[index + 1:]:
                if self._rng.random() < probability:
                    graph.add_peer_peer(left, right)

    def _attach_stubs(
        self,
        graph: AnnotatedASGraph,
        stubs: list[ASN],
        transit_pool: list[ASN],
        tier1: list[ASN],
    ) -> None:
        params = self.parameters
        for asn in stubs:
            if self._rng.random() < params.stub_multihoming_probability:
                provider_count = self._rng.randint(2, params.max_stub_providers)
            else:
                provider_count = 1
            providers: set[ASN] = set()
            while len(providers) < min(provider_count, len(transit_pool) + len(tier1)):
                if tier1 and self._rng.random() < params.stub_tier1_probability:
                    providers.add(self._rng.choice(tier1))
                elif transit_pool:
                    providers.add(self._rng.choice(transit_pool))
                else:
                    providers.add(self._rng.choice(tier1))
            for provider in sorted(providers):
                graph.add_provider_customer(provider, asn)

    def _add_stub_peering(self, graph: AnnotatedASGraph, stubs: list[ASN]) -> None:
        probability = self.parameters.stub_peering_probability
        if probability <= 0:
            return
        # Only stubs sharing a provider may peer (an IX-style shortcut).
        by_provider: dict[ASN, list[ASN]] = {}
        for stub in stubs:
            for provider in graph.providers_of(stub):
                by_provider.setdefault(provider, []).append(stub)
        for siblings in by_provider.values():
            for index, left in enumerate(siblings):
                for right in siblings[index + 1:]:
                    if self._rng.random() < probability:
                        graph.add_peer_peer(left, right)

    # -- address plan ----------------------------------------------------------------

    def _allocate_addresses(
        self,
        internet: SyntheticInternet,
        tier1: list[ASN],
        tier2: list[ASN],
        tier3: list[ASN],
        stubs: list[ASN],
    ) -> None:
        params = self.parameters
        graph = internet.graph
        allocator = internet.allocator
        provider_blocks: dict[ASN, AddressBlock] = {}

        # Transit ASes get big blocks; their first block can be carved up for
        # provider-assigned customer space later.
        for asn in tier1:
            block = allocator.allocate(asn, length=12)
            provider_blocks[asn] = block
            internet.originated[asn] = [block.prefix]
        for asn in tier2:
            block = allocator.allocate(asn, length=14)
            provider_blocks[asn] = block
            count = self._rng.randint(1, params.prefixes_per_transit)
            extra = [allocator.allocate(asn, length=19).prefix for _ in range(count - 1)]
            internet.originated[asn] = [block.prefix] + extra
        for asn in tier3:
            block = allocator.allocate(asn, length=16)
            provider_blocks[asn] = block
            internet.originated[asn] = [block.prefix]

        for asn in stubs:
            prefixes: list[Prefix] = []
            prefix_count = self._rng.randint(1, params.prefixes_per_stub)
            providers = graph.providers_of(asn)
            for _ in range(prefix_count):
                use_provider_space = (
                    providers
                    and self._rng.random() < params.provider_assigned_probability
                )
                if use_provider_space:
                    provider = self._rng.choice(providers)
                    parent = provider_blocks.get(provider)
                    if parent is not None:
                        try:
                            block = allocator.suballocate(parent, asn, length=22)
                        except Exception:
                            block = allocator.allocate(asn, length=22)
                        else:
                            internet.provider_assigned.append(block)
                    else:
                        block = allocator.allocate(asn, length=22)
                else:
                    block = allocator.allocate(asn, length=22)
                prefixes.append(block.prefix)
            # Optionally split the first prefix into two more-specifics that
            # are announced *in addition to* the covering prefix.
            if prefixes and self._rng.random() < params.split_probability:
                original = prefixes[0]
                more_specifics = original.split(2)
                internet.split_pairs.append((original, more_specifics))
                prefixes.extend(more_specifics)
            internet.originated[asn] = prefixes
