"""Table 11 — an AS's relationship-tagging community plan."""

from __future__ import annotations

from repro.core.community import CommunityAnalyzer
from repro.session.stages import Stage, StageView
from repro.exceptions import ExperimentError
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import tagging_glasses
from repro.experiments.registry import register
from repro.topology.graph import Relationship


@register
class Table11Experiment(Experiment):
    """The published community plan of one tagging AS, next to the inferred meaning."""

    experiment_id = "table11"
    title = "Tagging communities of one AS (published plan vs. inferred semantics)"
    paper_reference = "Table 11, Appendix"
    requires = frozenset({Stage.TOPOLOGY, Stage.POLICIES, Stage.OBSERVATION})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        glasses = tagging_glasses(dataset)
        if not glasses:
            raise ExperimentError("the dataset has no community-tagging Looking Glass AS")
        # Prefer a tagging AS that has providers (AS12859 in the paper is a
        # mid-size ISP), so all three ranges are exercised; break ties by the
        # number of visible neighbors.
        graph = dataset.ground_truth_graph
        glass = max(
            glasses,
            key=lambda g: (bool(graph.providers_of(g.asn)), len(g.neighbors())),
        )
        plan = dataset.assignment.policies[glass.asn].community_plan
        analyzer = CommunityAnalyzer()
        semantics = analyzer.infer_semantics(glass)
        result.headers = ["community range", "published meaning", "inferred meaning"]
        for relationship in (Relationship.PEER, Relationship.PROVIDER, Relationship.CUSTOMER):
            base = plan.base_for(relationship)
            bucket = base // 1000
            inferred = semantics.value_to_relationship.get(bucket)
            result.rows.append(
                [
                    f"{glass.asn}:{base}-{glass.asn}:{base + plan.range_size - 1}",
                    f"route received from {relationship.value}",
                    f"route received from {inferred.value}" if inferred else "(not inferred)",
                ]
            )
        result.notes.append(
            f"tagging AS under study: AS{glass.asn} "
            f"({len(glass.neighbors())} neighbors visible)"
        )
        result.notes.append(
            "Paper Table 11 lists AS12859's published values: 1000-range = peers, "
            "2000-range = transit providers, 4000 = customers."
        )
        return result
