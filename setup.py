"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel.  This shim lets both ``pip install -e .`` (via the legacy code path)
and ``python setup.py develop`` work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
