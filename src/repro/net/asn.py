"""Autonomous System number utilities.

AS numbers in this library are plain ``int`` objects (type-aliased to
:data:`ASN` for readability in signatures).  The helpers here validate and
format them; 4-byte AS numbers are supported in the ``asdot`` notation used by
operators (e.g. ``"65536"`` or ``"1.0"``).
"""

from __future__ import annotations

from repro.exceptions import ASPathError

#: Type alias used across the library for readability of signatures.
ASN = int

#: Largest 2-byte AS number.
MAX_ASN16 = 0xFFFF

#: Largest 4-byte AS number.
MAX_ASN32 = 0xFFFFFFFF

#: Reserved AS number used by BGP as a placeholder (RFC 7607).
AS_TRANS = 23456

#: Start of the 16-bit private-use range (RFC 6996).
PRIVATE_ASN16_START = 64512

#: End (inclusive) of the 16-bit private-use range.
PRIVATE_ASN16_END = 65534


def parse_asn(text: str | int) -> ASN:
    """Parse an AS number from ``asplain`` or ``asdot`` notation.

    ``asplain`` is a plain decimal integer ("7018"); ``asdot`` is the
    dotted form used for 4-byte AS numbers ("1.10" == 65546).

    Raises:
        ASPathError: if the value is not a valid AS number.
    """
    if isinstance(text, int):
        value = text
    else:
        text = text.strip()
        if "." in text:
            high_text, _, low_text = text.partition(".")
            try:
                high = int(high_text)
                low = int(low_text)
            except ValueError as exc:
                raise ASPathError(f"invalid asdot AS number: {text!r}") from exc
            if not (0 <= high <= MAX_ASN16 and 0 <= low <= MAX_ASN16):
                raise ASPathError(f"asdot components out of range: {text!r}")
            value = (high << 16) | low
        else:
            try:
                value = int(text)
            except ValueError as exc:
                raise ASPathError(f"invalid AS number: {text!r}") from exc
    if not (0 <= value <= MAX_ASN32):
        raise ASPathError(f"AS number out of range: {value}")
    return value


def format_asn(asn: ASN, dotted: bool = False) -> str:
    """Format an AS number, optionally in ``asdot`` notation.

    2-byte AS numbers are always rendered as plain integers, mirroring
    operator practice.
    """
    if asn < 0 or asn > MAX_ASN32:
        raise ASPathError(f"AS number out of range: {asn}")
    if dotted and asn > MAX_ASN16:
        return f"{asn >> 16}.{asn & MAX_ASN16}"
    return str(asn)


def is_private_asn(asn: ASN) -> bool:
    """Return ``True`` for AS numbers in the 16-bit private-use range."""
    return PRIVATE_ASN16_START <= asn <= PRIVATE_ASN16_END


def is_public_asn(asn: ASN) -> bool:
    """Return ``True`` for globally routable AS numbers (non-private, non-zero)."""
    return 0 < asn <= MAX_ASN32 and not is_private_asn(asn) and asn != AS_TRANS
