"""Benchmark: reproduce Table 4 (relationships verified via communities).

Paper shape: 94.1%-99.55% of each tagging AS's neighbor relationships are
verified against the inferred relationships.
"""


def test_bench_table4(benchmark, run_experiment):
    result = run_experiment(benchmark, "table4")
    percentages = [float(row[-1].rstrip("%")) for row in result.rows]
    assert percentages
    assert sum(percentages) / len(percentages) > 90.0
