"""Static class-schema resolution for the CODEC cross-check rules.

The CODEC rules need to know, *without importing anything*, which fields a
dataclass declares and which attribute names a class exposes.  This module
extracts that from source ASTs:

* :func:`collect_schemas` — every class defined in one parsed module,
  as :class:`ClassSchema` records;
* dataclasses contribute their annotated fields (``ClassVar`` annotations
  excluded) plus methods/properties;
* plain classes contribute ``self.X`` assignments (union over all their
  methods — factory classmethods like ``MeasurementIndex.hollow`` bypass
  ``__init__``, so restricting to ``__init__`` would miss real schema) and
  their ``__init__`` parameters as the constructor signature.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

#: Decorator names recognised as ``dataclasses.dataclass``.
_DATACLASS_NAMES = frozenset({"dataclass"})


@dataclass(frozen=True)
class ClassSchema:
    """The statically known shape of one class.

    Attributes:
        name: the class name.
        module: dotted module name (or file stem) for messages.
        is_dataclass: whether the class is ``@dataclass``-decorated.
        fields: declared dataclass fields, in declaration order (for plain
            classes: every ``self.X`` assignment target, sorted).
        init_params: constructor parameter names, in order (dataclass:
            the fields; plain class: ``__init__`` parameters minus ``self``).
        members: every attribute name an instance is known to expose —
            fields, methods, properties and class-level assignments.
    """

    name: str
    module: str
    is_dataclass: bool
    fields: tuple[str, ...]
    init_params: tuple[str, ...]
    members: frozenset[str]

    def with_extra_field(self, field_name: str) -> "ClassSchema":
        """A copy with one extra declared field (test hook for drift checks)."""
        return ClassSchema(
            name=self.name,
            module=self.module,
            is_dataclass=self.is_dataclass,
            fields=(*self.fields, field_name),
            init_params=(*self.init_params, field_name),
            members=frozenset({*self.members, field_name}),
        )


def _is_dataclass_decorator(node: ast.expr) -> bool:
    """``True`` for ``@dataclass``, ``@dataclass(...)`` and dotted forms."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr in _DATACLASS_NAMES
    return isinstance(node, ast.Name) and node.id in _DATACLASS_NAMES


def _annotation_is_classvar(annotation: ast.expr) -> bool:
    """``True`` when an annotation is a ``ClassVar[...]`` declaration."""
    return "ClassVar" in ast.unparse(annotation)


def collect_schemas(tree: ast.Module, module_name: str) -> dict[str, ClassSchema]:
    """Every class defined at the top level of one parsed module.

    Args:
        tree: the module's AST.
        module_name: dotted name used in messages.

    Returns:
        Schemas keyed by class name.
    """
    schemas: dict[str, ClassSchema] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            schemas[node.name] = _class_schema(node, module_name)
    return schemas


def _class_schema(node: ast.ClassDef, module_name: str) -> ClassSchema:
    """The schema of one class definition."""
    is_dataclass = any(_is_dataclass_decorator(d) for d in node.decorator_list)
    members: set[str] = set()
    fields: list[str] = []
    init_params: tuple[str, ...] = ()
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            members.add(statement.target.id)
            if is_dataclass and not _annotation_is_classvar(statement.annotation):
                fields.append(statement.target.id)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    members.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    members.update(
                        element.id
                        for element in target.elts
                        if isinstance(element, ast.Name)
                    )
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            members.add(statement.name)
            if statement.name == "__init__":
                init_params = _parameter_names(statement)
    self_attrs = _self_assignments(node)
    members.update(self_attrs)
    if is_dataclass:
        init_params = tuple(fields)
    else:
        fields = sorted(self_attrs)
    # ``__slots__`` declarations also name instance attributes.
    members.update(_slots_names(node))
    return ClassSchema(
        name=node.name,
        module=module_name,
        is_dataclass=is_dataclass,
        fields=tuple(fields),
        init_params=init_params,
        members=frozenset(members),
    )


def _parameter_names(function: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Positional/keyword parameter names of a function, minus ``self``."""
    arguments = function.args
    names = [arg.arg for arg in (*arguments.posonlyargs, *arguments.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(arg.arg for arg in arguments.kwonlyargs)
    return tuple(names)


def _self_assignments(node: ast.ClassDef) -> set[str]:
    """Every ``self.X = ...`` target across the class's methods."""
    attrs: set[str] = set()
    for statement in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        elif isinstance(statement, ast.AugAssign):
            targets = [statement.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


def _slots_names(node: ast.ClassDef) -> set[str]:
    """Attribute names declared via a literal ``__slots__`` tuple/list."""
    for statement in node.body:
        if (
            isinstance(statement, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in statement.targets
            )
            and isinstance(statement.value, (ast.Tuple, ast.List))
        ):
            return {
                element.value
                for element in statement.value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            }
    return set()
