"""Deterministic seeded fault schedules (:class:`FaultPlan`).

A fault plan is a list of :class:`FaultRule`\\ s, each bound to an
*injection site* (a named hook compiled into the storage and sweep layers)
plus a firing rate, an identity pattern and an optional firing bound.
Whether a rule fires for a given operation is a pure function of
``(plan seed, rule index, site, identity)`` — no clocks, no global random
state — so the same plan produces the same fault schedule in every process
and on every machine, and a chaos run can be replayed exactly from its
seed.

Firing *bounds* (``times``) are the one piece of shared state: a rule that
should kill a worker once (so the retry succeeds) records its firings as
marker files under the plan's ``state_dir``.  Markers are created with
``O_EXCL``, so concurrent workers race safely, and they survive process
death — which is exactly what makes "kill this case once, then let the
resume complete it" expressible.

Plans serialize to JSON and travel to process-pool workers through the
``REPRO_FAULT_PLAN`` environment variable (see
:mod:`repro.faults.runtime`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from fnmatch import fnmatch

from repro.exceptions import ReproError

#: Injection sites compiled into the storage/sweep layers.
SITES = (
    "worker-kill",  # die (or raise, in-process) at the start of a sweep case
    "store-write",  # raise an OSError (ENOSPC/EIO) from DiskStore.write
    "store-corrupt",  # damage the artifact file just written by DiskStore
    "latency",  # sleep before a DiskStore read/write
)

#: Corruption modes of ``store-corrupt`` rules.
CORRUPT_MODES = ("flip", "truncate", "zero")

#: Errno names accepted as the ``param`` of ``store-write`` rules.
WRITE_ERRNOS = ("ENOSPC", "EIO")


class FaultPlanError(ReproError):
    """A fault plan is malformed (bad site, rate, mode or JSON)."""


class FaultInjected(RuntimeError):
    """An injected fault fired in-process (e.g. a simulated worker kill).

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: the sweep
    orchestrator treats ``ReproError`` as a deterministic configuration
    problem (never retried) and everything else as possibly-transient
    infrastructure failure (retried with backoff) — injected faults must
    land in the second bucket.
    """


@dataclass(frozen=True)
class FaultRule:
    """One fault: where it strikes, how often, and how many times.

    Attributes:
        site: injection-site name (one of :data:`SITES`).
        rate: firing probability in ``[0, 1]``; the decision is a pure hash
            of ``(seed, rule index, site, identity)``, so the *same*
            identity always draws the same verdict under the same plan.
        match: ``fnmatch`` pattern over the operation identity (sweep case
            spec, or ``stage/key`` for store operations).
        times: maximum total firings across all processes (``None`` means
            unbounded); enforced through marker files in the plan's state
            directory.
        param: site-specific parameter — an errno name for ``store-write``
            (:data:`WRITE_ERRNOS`), a corruption mode for ``store-corrupt``
            (:data:`CORRUPT_MODES`), seconds of sleep for ``latency``.
    """

    site: str
    rate: float
    match: str = "*"
    times: int | None = 1
    param: str | float | None = None

    def validate(self) -> None:
        """Raise :class:`FaultPlanError` on an out-of-range field."""
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known sites: {', '.join(SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.times is not None and self.times < 1:
            raise FaultPlanError(f"fault times must be >= 1 or None, got {self.times!r}")
        if self.site == "store-corrupt" and self.param not in CORRUPT_MODES:
            raise FaultPlanError(
                f"store-corrupt param must be one of {CORRUPT_MODES}, got {self.param!r}"
            )
        if self.site == "store-write" and self.param not in WRITE_ERRNOS:
            raise FaultPlanError(
                f"store-write param must be one of {WRITE_ERRNOS}, got {self.param!r}"
            )
        if self.site == "latency" and (
            not isinstance(self.param, (int, float)) or self.param < 0
        ):
            raise FaultPlanError(f"latency param must be seconds >= 0, got {self.param!r}")

    def to_dict(self) -> dict:
        """A JSON-ready mapping with a stable key order."""
        return {
            "site": self.site,
            "rate": self.rate,
            "match": self.match,
            "times": self.times,
            "param": self.param,
        }


@dataclass
class FaultPlan:
    """A seeded, deterministic, cross-process fault schedule.

    Attributes:
        seed: the schedule seed; every firing decision hashes it.
        state_dir: directory holding the firing markers of bounded rules
            (created on demand; shared by every process running the plan).
        rules: the fault rules, checked in order (first match that both
            draws a firing and claims a marker wins).
    """

    seed: int
    state_dir: str
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def validate(self) -> None:
        """Raise :class:`FaultPlanError` if any rule is malformed."""
        for rule in self.rules:
            rule.validate()

    # -- firing decisions ------------------------------------------------------

    def fires(self, site: str, identity: str) -> FaultRule | None:
        """The rule that fires for this operation, or ``None``.

        Args:
            site: the injection-site name of the operation.
            identity: the operation's stable identity (case spec or
                ``stage/key``); the decision hashes it, so the same
                operation always draws the same verdict.

        Returns:
            The first matching rule that both draws a firing and (for
            bounded rules) successfully claims a marker slot.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site or not fnmatch(identity, rule.match):
                continue
            if not self._draws(index, rule, identity):
                continue
            if self._claim(index, rule, identity):
                return rule
        return None

    def _draws(self, index: int, rule: FaultRule, identity: str) -> bool:
        """The pure hash decision: does this rule target this identity?"""
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{rule.site}:{identity}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < rule.rate

    def _claim(self, index: int, rule: FaultRule, identity: str) -> bool:
        """Claim one firing slot of a bounded rule (``O_EXCL`` markers)."""
        if rule.times is None:
            return True
        stem = hashlib.sha256(f"{index}:{identity}".encode("utf-8")).hexdigest()[:24]
        root = pathlib.Path(self.state_dir)
        try:
            root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False  # no state dir, no bounded firing
        for slot in range(rule.times):
            try:
                fd = os.open(root / f"{stem}.{slot}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False  # every slot already fired

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready mapping with a stable key order."""
        return {
            "seed": self.seed,
            "state_dir": self.state_dir,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        """Compact deterministic JSON, small enough for an env var."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: object) -> FaultPlan:
        """Rebuild a validated plan from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be a JSON object, got {type(data).__name__}")
        try:
            rules = tuple(
                FaultRule(
                    site=entry["site"],
                    rate=entry["rate"],
                    match=entry.get("match", "*"),
                    times=entry.get("times", 1),
                    param=entry.get("param"),
                )
                for entry in data.get("rules", [])
            )
            plan = cls(seed=int(data["seed"]), state_dir=str(data["state_dir"]), rules=rules)
        except (KeyError, TypeError, ValueError) as error:
            raise FaultPlanError(f"malformed fault plan: {error}") from error
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        """Parse a plan from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_dict(data)

    @classmethod
    def load(cls, source: str) -> FaultPlan:
        """Parse a plan from inline JSON or a JSON file path.

        This is the decoder of both the ``--fault-plan`` CLI flag and the
        ``REPRO_FAULT_PLAN`` environment variable: a value starting with
        ``{`` is inline JSON, anything else is a file path.
        """
        text = source.strip()
        if text.startswith("{"):
            return cls.from_json(text)
        try:
            return cls.from_json(pathlib.Path(source).read_text())
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan file {source!r}: {error}") from error

    # -- seeded generation -----------------------------------------------------

    @classmethod
    def generate(cls, seed: int, state_dir: str | os.PathLike) -> FaultPlan:
        """A mixed chaos schedule derived entirely from ``seed``.

        The generated plan covers every fault class the robustness layer
        defends against — worker kills, write errors, artifact corruption
        and latency — with rates and parameters drawn from a seeded
        :class:`random.Random`, each destructive rule bounded so that a
        bounded-retry sweep can still terminate with every case completed.
        """
        import random

        rng = random.Random(seed)
        rules = (
            FaultRule("worker-kill", rate=0.3 + 0.3 * rng.random(), times=1),
            FaultRule(
                "store-write",
                rate=0.1 + 0.2 * rng.random(),
                times=2,
                param=rng.choice(list(WRITE_ERRNOS)),
            ),
            FaultRule(
                "store-corrupt",
                rate=0.1 + 0.2 * rng.random(),
                times=1,
                param=rng.choice(list(CORRUPT_MODES)),
            ),
            FaultRule("latency", rate=0.2, times=16, param=round(0.001 + 0.004 * rng.random(), 4)),
        )
        return cls(seed=seed, state_dir=str(state_dir), rules=rules)
