"""Table 6 — SA prefixes from the viewpoint of shared customers."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table6Experiment(Experiment):
    """Customers whose prefixes are SA for the studied Tier-1 providers."""

    experiment_id = "table6"
    title = "Per-customer SA prefixes for the three studied providers"
    paper_reference = "Table 6, Section 5.1.2"
    requires = frozenset({Stage.ANALYSIS})

    #: Minimum number of originated prefixes for a customer to be listed
    #: (the paper selects 8 customers "which originate a significant number
    #: of prefixes").
    min_prefixes = 3
    #: Maximum number of rows reported.
    max_rows = 8

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        rows = dataset.analysis.customer_sa_reports(min_prefixes=self.min_prefixes)
        result.headers = ["customer", "# prefixes", "# SA prefixes", "% SA"]
        for row in rows[: self.max_rows]:
            result.rows.append(
                [
                    f"AS{row.customer}",
                    row.prefix_count,
                    row.sa_prefix_count,
                    format_percent(row.percent_sa, 0),
                ]
            )
        providers = ", ".join(
            f"AS{p}" for p in sorted(dataset.analysis.sa_reports())
        )
        result.notes.append(f"studied providers: {providers}")
        result.notes.append(
            "Paper Table 6: 17%-97% of the selected customers' prefixes are SA "
            "for AS1/AS3549/AS7018."
        )
        return result
