"""Development-time static analysis for the repro codebase.

``repro.devtools`` hosts *repro lint* (``python -m repro lint``): a
visitor-based AST rule engine with three rule families guarding the
invariants the dynamic test suites can only catch after the fact:

* **DET** — determinism hazards in storage/fingerprint/stage code
  (:mod:`repro.devtools.rules_det`);
* **CODEC** — schema drift between :mod:`repro.storage.codecs` and the
  dataclasses it serializes (:mod:`repro.devtools.rules_codec`);
* **POOL** — process-pool safety around ``ProcessPoolExecutor``
  (:mod:`repro.devtools.rules_pool`).

Findings can be suppressed inline (``repro: noqa[RULE] -- rationale``
after a hash)
or recorded in a committed baseline file that CI ratchets to
zero-or-better.  See ``docs/linting.md`` for the full rule catalogue.
"""

from repro.devtools import rules_codec, rules_det, rules_pool  # noqa: F401  (rule registration)
from repro.devtools.baseline import Baseline
from repro.devtools.engine import LintContext, ModuleUnderLint, Rule, all_rules, get_rule, rule_ids
from repro.devtools.lint import lint_paths, run_lint
from repro.devtools.model import Finding, LintReport

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "LintReport",
    "ModuleUnderLint",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "rule_ids",
    "run_lint",
]
