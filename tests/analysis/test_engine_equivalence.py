"""Golden equivalence suite: AnalysisEngine ≡ legacy repro.core analyzers.

The engine's contract is result identity with the legacy analyzers for the
same dataset.  This suite runs both sides on every registered scenario and
compares the result objects with plain ``==`` — dataclass equality covers
every field, including orderings (list fields) the engine must replicate
bit for bit (atom order, atypical-example order, mismatch order, ...).

Datasets are built through the global stage cache, so they are shared with
the rest of the test session instead of rebuilt per test.
"""

import pytest

from repro.analysis.persistence import persistence_series, uptime_distribution
from repro.core.atoms import PolicyAtomAnalyzer
from repro.core.causes import CauseAnalyzer
from repro.core.community import CommunityAnalyzer
from repro.core.consistency import ConsistencyAnalyzer
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.core.import_policy import ImportPolicyAnalyzer
from repro.core.peer_export import PeerExportAnalyzer
from repro.core.persistence import PersistenceAnalyzer
from repro.core.verification import Verifier
from repro.experiments.common import persistence_snapshots
from repro.relationships.gao import GaoInference
from repro.session.scenarios import get_scenario, scenario_names

SCENARIOS = sorted(scenario_names())

_CONTEXTS: dict[str, dict] = {}


def _context(name: str) -> dict:
    """Dataset, engine and shared legacy intermediates for one scenario."""
    ctx = _CONTEXTS.get(name)
    if ctx is None:
        dataset = get_scenario(name).study().dataset()
        graph = dataset.ground_truth_graph
        providers = dataset.providers_under_study(3)
        tables = {p: dataset.result.table_of(p) for p in providers}
        reports = ExportPolicyAnalyzer(graph).analyze_providers(
            tables, known_customer_prefixes=dataset.internet.originated
        )
        glasses = [dataset.looking_glass_of(a) for a in dataset.looking_glass_ases]
        tagging = [
            dataset.looking_glass_of(a)
            for a in dataset.looking_glass_ases
            if dataset.assignment.policies[a].community_plan is not None
        ]
        ctx = _CONTEXTS[name] = {
            "dataset": dataset,
            "engine": dataset.analysis_engine(),
            "graph": graph,
            "providers": providers,
            "tables": tables,
            "reports": reports,
            "glasses": glasses,
            "tagging": tagging,
        }
    return ctx


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_atoms_equivalent(scenario):
    ctx = _context(scenario)
    legacy = PolicyAtomAnalyzer().compute_atoms(ctx["dataset"].collector)
    assert ctx["engine"].atoms() == legacy


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_import_typicality_equivalent(scenario):
    ctx = _context(scenario)
    analyzer = ImportPolicyAnalyzer(ctx["graph"])
    assert ctx["engine"].import_typicality() == analyzer.analyze_many(ctx["glasses"])


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_irr_typicality_equivalent(scenario):
    ctx = _context(scenario)
    analyzer = ImportPolicyAnalyzer(ctx["graph"])
    assert ctx["engine"].irr_typicality(min_neighbors=5) == analyzer.analyze_irr(
        ctx["dataset"].irr, min_neighbors=5
    )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_consistency_equivalent(scenario):
    ctx = _context(scenario)
    analyzer = ConsistencyAnalyzer()
    assert ctx["engine"].consistency_by_as() == analyzer.analyze_many(ctx["glasses"])
    biggest = max(ctx["glasses"], key=lambda g: len(list(g.table.prefixes())))
    assert ctx["engine"].biggest_glass_asn() == biggest.asn
    assert ctx["engine"].consistency_by_router(
        router_count=30
    ) == analyzer.analyze_routers(biggest, router_count=30)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_sa_reports_equivalent(scenario):
    ctx = _context(scenario)
    assert ctx["engine"].sa_reports() == ctx["reports"]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_all_provider_reports_equivalent(scenario):
    ctx = _context(scenario)
    graph = ctx["graph"]
    dataset = ctx["dataset"]
    legacy = ExportPolicyAnalyzer(graph).analyze_providers(
        {
            asn: dataset.result.table_of(asn)
            for asn in dataset.result.observed_ases
            if graph.customers_of(asn)
        },
        known_customer_prefixes=dataset.internet.originated,
    )
    assert ctx["engine"].all_provider_reports() == legacy


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_customer_sa_equivalent(scenario):
    ctx = _context(scenario)
    legacy = ExportPolicyAnalyzer(ctx["graph"]).analyze_customers(
        ctx["reports"], ctx["tables"]
    )
    assert ctx["engine"].customer_sa_reports() == legacy


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_peer_export_equivalent(scenario):
    ctx = _context(scenario)
    legacy = PeerExportAnalyzer(ctx["graph"]).analyze_many(
        ctx["tables"], originated=ctx["dataset"].internet.originated
    )
    assert ctx["engine"].peer_export_reports() == legacy


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_causes_equivalent(scenario):
    ctx = _context(scenario)
    analyzer = CauseAnalyzer(ctx["graph"])
    engine = ctx["engine"]
    for provider, report in ctx["reports"].items():
        assert engine.homing_breakdown(provider) == analyzer.homing_breakdown(report)
        assert engine.cause_breakdown(provider) == analyzer.cause_breakdown(
            report, ctx["tables"][provider]
        )
        assert engine.case3(provider) == analyzer.case3_analysis(
            report, ctx["dataset"].collector
        )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_community_equivalent(scenario):
    ctx = _context(scenario)
    analyzer = CommunityAnalyzer()
    engine = ctx["engine"]
    assert engine.tagging_asns() == [g.asn for g in ctx["tagging"]]
    for glass in ctx["tagging"]:
        assert engine.neighbor_signatures(glass.asn) == analyzer.neighbor_signatures(
            glass
        )
        assert engine.infer_semantics(glass.asn) == analyzer.infer_semantics(glass)
    for glass in ctx["glasses"]:
        assert engine.prefix_counts_by_rank(glass.asn) == analyzer.prefix_counts_by_rank(
            glass
        )
        assert engine.glass_neighbors(glass.asn) == glass.neighbors()


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_relationship_verification_equivalent(scenario):
    ctx = _context(scenario)
    inferred = GaoInference().infer(ctx["dataset"].collector.all_paths()).graph
    legacy = Verifier(inferred, CommunityAnalyzer()).verify_relationships(ctx["tagging"])
    assert ctx["engine"].verify_relationships() == legacy


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_sa_verification_equivalent(scenario):
    ctx = _context(scenario)
    legacy = Verifier(ctx["graph"]).verify_many(
        ctx["reports"], ctx["dataset"].collector
    )
    assert ctx["engine"].verify_sa_prefixes() == legacy


def test_fuzz_oracle_checks_the_same_surface():
    """The fuzz harness's analysis oracle passes on a golden scenario.

    The per-query tests above localise failures; this bridge test keeps the
    shared ``check_analysis_equivalence`` oracle (what ``python -m repro
    fuzz`` runs on sampled scenarios) green on the golden scenarios too, so
    the two suites cannot silently drift apart.
    """
    from repro.fuzz.oracles import check_analysis_equivalence

    ctx = _context("small")
    check_analysis_equivalence(ctx["dataset"], ctx["engine"])


def test_persistence_equivalent():
    provider, snapshots, graph = persistence_snapshots(8, 99)
    analyzer = PersistenceAnalyzer(graph)
    assert persistence_series(
        list(snapshots), provider, graph
    ) == analyzer.series_for_provider(list(snapshots), provider)
    assert uptime_distribution(
        list(snapshots), provider, graph
    ) == analyzer.uptime_distribution(list(snapshots), provider)
