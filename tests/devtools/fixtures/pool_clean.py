"""Fixture: the picklable, argument-passing way to use a process pool."""
import functools
from concurrent.futures import ProcessPoolExecutor


def _worker(scale, case):
    return scale * case


def run(cases):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(functools.partial(_worker, 2), cases))
