"""Tests of the content-addressed disk tier."""

from repro.storage import versions
from repro.storage.store import DiskStore


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "abc123", b"payload")
        assert store.read("topology", "abc123") == b"payload"

    def test_missing_is_none(self, tmp_path):
        assert DiskStore(tmp_path / "nowhere").read("topology", "k") is None

    def test_write_is_atomic_replace(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("irr", "k1", b"one")
        store.write("irr", "k1", b"two")
        assert store.read("irr", "k1") == b"two"
        stage_dir = tmp_path / "irr"
        assert not list(stage_dir.rglob("*.tmp"))

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "k", b"payload")
        path.write_bytes(b"garbage")
        assert store.read("topology", "k") is None

    def test_flipped_byte_inside_header_string_reads_as_miss(self, tmp_path):
        # Corruption may surface as a UnicodeDecodeError (invalid UTF-8 in
        # a packed string), not just a StorageError — still a miss.
        store = DiskStore(tmp_path)
        path = store.write("topology", "k", b"payload")
        data = bytearray(path.read_bytes())
        position = data.index(b"repro-artifact")
        data[position] = 0xFF
        path.write_bytes(bytes(data))
        assert store.read("topology", "k") is None

    def test_stage_mismatch_reads_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store.write("topology", "k", b"payload")
        moved = tmp_path / "policies" / "k"[:2]
        moved.mkdir(parents=True)
        (moved / path.name).write_bytes(path.read_bytes())
        assert store.read("policies", "k") is None

    def test_schema_version_mismatch_reads_as_miss(self, tmp_path, monkeypatch):
        store = DiskStore(tmp_path)
        store.write("topology", "k", b"payload")
        monkeypatch.setattr(versions, "SCHEMA_VERSION", versions.SCHEMA_VERSION + 1)
        monkeypatch.setattr(
            "repro.storage.store.SCHEMA_VERSION", versions.SCHEMA_VERSION
        )
        assert store.read("topology", "k") is None


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "aa11", b"x" * 10)
        store.write("topology", "bb22", b"y" * 20)
        store.write("irr", "cc33", b"z")
        stats = store.stats()
        assert stats["topology"]["artifacts"] == 2
        assert stats["irr"]["artifacts"] == 1
        assert stats["topology"]["bytes"] > 30
        removed = store.clear()
        assert removed == 3
        assert store.stats() == {"irr": {"artifacts": 0, "bytes": 0},
                                 "topology": {"artifacts": 0, "bytes": 0}}
        assert store.read("topology", "aa11") is None

    def test_clear_leaves_sweeps_alone(self, tmp_path):
        store = DiskStore(tmp_path)
        store.write("topology", "aa11", b"x")
        sweep_file = tmp_path / "sweeps" / "digest" / "manifest.json"
        sweep_file.parent.mkdir(parents=True)
        sweep_file.write_text("{}")
        store.clear()
        assert sweep_file.exists()
