"""Fixture: every DET rule fires at least once (see tests/devtools)."""
import os
import random
import time


def fingerprint_members(members):
    seen = set(members)
    ordered = [member for member in seen]
    for member in seen:
        ordered.append(member)
    return ordered


def stamp(value):
    return (id(value), time.time(), random.random())


def scan(root):
    return [entry for entry in os.listdir(root)]
