"""The paper's contribution: inference and characterization of routing policies.

Each module maps onto a section of the paper:

* :mod:`repro.core.import_policy` — Section 4.1: typical vs. atypical
  LOCAL_PREF assignment, from Looking Glass tables (Table 2) and from the
  IRR (Table 3).
* :mod:`repro.core.consistency` — Section 4.2: how consistently LOCAL_PREF
  is keyed on the next-hop AS (Fig. 2).
* :mod:`repro.core.export_policy` — Section 5.1.1–5.1.2: the SA-prefix
  inference algorithm (Fig. 4) and its prevalence (Tables 5 and 6).
* :mod:`repro.core.verification` — Sections 4.3 and 5.1.3: verifying
  inferred relationships and SA prefixes (Tables 4 and 7).
* :mod:`repro.core.causes` — Section 5.1.5: multihoming, prefix splitting,
  prefix aggregation and selective announcing (Tables 8 and 9, Case 3).
* :mod:`repro.core.persistence` — Section 5.1.4: persistence of SA prefixes
  over time (Figs. 6 and 7).
* :mod:`repro.core.peer_export` — Section 5.2: export policies toward peers
  (Table 10).
* :mod:`repro.core.community` — Appendix: community-semantics inference and
  community-based relationship verification (Fig. 9, Table 11).
* :mod:`repro.core.atoms` — the policy-atom extension discussed at the end
  of Section 5.1.5 (reference [21]).
"""

from repro.core.import_policy import (
    ImportPolicyAnalyzer,
    IrrTypicalityResult,
    TypicalityResult,
)
from repro.core.consistency import ConsistencyAnalyzer, ConsistencyResult
from repro.core.export_policy import ExportPolicyAnalyzer, SAPrefixReport
from repro.core.verification import SAVerificationResult, Verifier
from repro.core.causes import CauseAnalyzer, CauseBreakdown, HomingBreakdown
from repro.core.persistence import PersistenceAnalyzer, PersistenceSeries, UptimeDistribution
from repro.core.peer_export import PeerExportAnalyzer, PeerExportReport
from repro.core.community import CommunityAnalyzer, CommunitySemantics
from repro.core.atoms import PolicyAtom, PolicyAtomAnalyzer

__all__ = [
    "CauseAnalyzer",
    "CauseBreakdown",
    "CommunityAnalyzer",
    "CommunitySemantics",
    "ConsistencyAnalyzer",
    "ConsistencyResult",
    "ExportPolicyAnalyzer",
    "HomingBreakdown",
    "ImportPolicyAnalyzer",
    "IrrTypicalityResult",
    "PeerExportAnalyzer",
    "PeerExportReport",
    "PersistenceAnalyzer",
    "PersistenceSeries",
    "PolicyAtom",
    "PolicyAtomAnalyzer",
    "SAPrefixReport",
    "SAVerificationResult",
    "TypicalityResult",
    "UptimeDistribution",
    "Verifier",
]
