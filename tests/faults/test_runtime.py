"""Tests of process-local fault-plan activation and the injection hooks."""

import errno

import pytest

from repro.faults import runtime
from repro.faults.plan import FaultInjected, FaultPlan, FaultRule
from repro.faults.runtime import (
    PLAN_ENV,
    activate,
    active_plan,
    corrupt_artifact,
    deactivate,
    fault_point,
    in_worker,
    mark_worker,
)


@pytest.fixture(autouse=True)
def clean_runtime(monkeypatch):
    """Every test starts and ends with no plan and no PLAN_ENV leakage."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    runtime.reset()
    yield
    runtime.reset()


def plan_with(tmp_path, *rules) -> FaultPlan:
    return FaultPlan(seed=1, state_dir=str(tmp_path / "state"), rules=rules)


class TestActivation:
    def test_activate_exports_to_env(self, tmp_path):
        plan = plan_with(tmp_path)
        activate(plan)
        import os

        assert FaultPlan.from_json(os.environ[PLAN_ENV]) == plan
        assert active_plan() == plan
        deactivate()
        assert PLAN_ENV not in os.environ
        assert active_plan() is None

    def test_lazy_load_from_env(self, tmp_path, monkeypatch):
        plan = plan_with(tmp_path, FaultRule("latency", rate=0.1, param=0.0))
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        assert active_plan() == plan  # first call loads, later calls reuse

    def test_malformed_env_plan_warns_and_runs_fault_free(self, monkeypatch, capsys):
        monkeypatch.setenv(PLAN_ENV, "{broken json")
        assert active_plan() is None
        assert PLAN_ENV in capsys.readouterr().err
        fault_point("latency", "topology/k")  # must be a no-op, not an error

    def test_no_plan_means_no_op(self):
        fault_point("worker-kill", "case@0")
        fault_point("store-write", "topology/k")
        corrupt_artifact("/nonexistent", "topology/k")

    def test_mark_worker_sets_the_flag(self):
        assert not in_worker()
        mark_worker()
        assert in_worker()


class TestFaultPoint:
    def test_store_write_raises_the_requested_errno(self, tmp_path):
        activate(
            plan_with(
                tmp_path,
                FaultRule("store-write", rate=1.0, times=None, param="ENOSPC"),
            ),
            export=False,
        )
        with pytest.raises(OSError) as exc:
            fault_point("store-write", "topology/k")
        assert exc.value.errno == errno.ENOSPC
        assert "injected" in str(exc.value)

    def test_store_write_eio(self, tmp_path):
        activate(
            plan_with(
                tmp_path, FaultRule("store-write", rate=1.0, times=None, param="EIO")
            ),
            export=False,
        )
        with pytest.raises(OSError) as exc:
            fault_point("store-write", "topology/k")
        assert exc.value.errno == errno.EIO

    def test_worker_kill_raises_in_process(self, tmp_path):
        # Outside a marked pool worker the kill is a catchable exception —
        # and deliberately not a ReproError, so the sweep retries it.
        from repro.exceptions import ReproError

        activate(
            plan_with(tmp_path, FaultRule("worker-kill", rate=1.0, times=None)),
            export=False,
        )
        with pytest.raises(FaultInjected) as exc:
            fault_point("worker-kill", "case@0")
        assert not isinstance(exc.value, ReproError)

    def test_latency_sleeps_the_param(self, tmp_path):
        activate(
            plan_with(
                tmp_path, FaultRule("latency", rate=1.0, times=None, param=0.0)
            ),
            export=False,
        )
        fault_point("latency", "topology/k")  # zero-second sleep, no raise

    def test_bounded_rule_dries_up(self, tmp_path):
        activate(
            plan_with(tmp_path, FaultRule("worker-kill", rate=1.0, times=1)),
            export=False,
        )
        with pytest.raises(FaultInjected):
            fault_point("worker-kill", "case@0")
        fault_point("worker-kill", "case@0")  # budget spent: no-op


class TestCorruptArtifact:
    def write_target(self, tmp_path):
        path = tmp_path / "artifact.art"
        path.write_bytes(b"0123456789abcdef")
        return path

    def corrupting_plan(self, tmp_path, mode) -> FaultPlan:
        return plan_with(
            tmp_path, FaultRule("store-corrupt", rate=1.0, times=None, param=mode)
        )

    def test_flip_changes_one_byte(self, tmp_path):
        path = self.write_target(tmp_path)
        activate(self.corrupting_plan(tmp_path, "flip"), export=False)
        corrupt_artifact(path, "topology/k")
        after = path.read_bytes()
        assert len(after) == 16
        assert after != b"0123456789abcdef"

    def test_truncate_halves_the_file(self, tmp_path):
        path = self.write_target(tmp_path)
        activate(self.corrupting_plan(tmp_path, "truncate"), export=False)
        corrupt_artifact(path, "topology/k")
        assert path.read_bytes() == b"01234567"

    def test_zero_empties_the_file(self, tmp_path):
        path = self.write_target(tmp_path)
        activate(self.corrupting_plan(tmp_path, "zero"), export=False)
        corrupt_artifact(path, "topology/k")
        assert path.read_bytes() == b""

    def test_missing_file_is_tolerated(self, tmp_path):
        activate(self.corrupting_plan(tmp_path, "flip"), export=False)
        corrupt_artifact(tmp_path / "vanished.art", "topology/k")
