"""The flat study dataset (paper Section 3, Table 1) — a view over the stages.

The paper's dataset is: the Oregon RouteViews table (56 peer ASes, AS paths
only), BGP tables from 15 ASes' Looking Glass servers (LOCAL_PREF and
communities visible, 3 of them Tier-1s), and the IRR database.  A
:class:`StudyDataset` is the offline substitute: one synthetic Internet, one
policy assignment, one propagation run observed at the collector's vantage
ASes and at the Looking Glass ASes, plus a synthetic IRR.

Since the :mod:`repro.session` redesign the dataset is assembled from the
staged :class:`~repro.session.study.Study` pipeline; this module keeps the
flat view and the legacy entry points (:func:`build_dataset`,
:func:`default_dataset`, :func:`small_dataset`) as thin delegates so existing
code keeps working.  New code should prefer the session API::

    from repro.session import get_scenario
    dataset = get_scenario("standard").study().dataset()
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.rpsl import IrrDatabase
from repro.exceptions import SimulationError
from repro.net.asn import ASN
from repro.simulation.collector import CollectorTable, LookingGlass
from repro.simulation.policies import PolicyAssignment, PolicyParameters
from repro.simulation.propagation import SimulationResult
from repro.topology.generator import GeneratorParameters, SyntheticInternet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.engine import AnalysisEngine
    from repro.session.stages import AnalysisParameters


@dataclass(frozen=True)
class DatasetParameters:
    """Configuration of the study dataset (legacy flat form).

    Frozen (immutable and hashable): :func:`build_dataset` can no longer be
    affected by callers mutating the parameters after the fact, and a
    parameter set can key the :mod:`repro.session` stage cache.  The staged
    equivalent is :class:`repro.session.StudyConfig`; the two convert losslessly
    via :meth:`repro.session.StudyConfig.from_dataset_parameters` and
    :meth:`repro.session.StudyConfig.dataset_parameters`.

    Attributes:
        topology: the synthetic-Internet generator parameters.
        policy: the policy-generator parameters.
        looking_glass_count: number of Looking Glass ASes (the paper has 15).
        tier1_looking_glass_count: how many of them are Tier-1s (paper: 3).
        collector_vantage_count: number of ASes peering with the collector
            (the paper's Oregon server peers with 56).
        irr_registration_probability: fraction of ASes registered in the IRR.
        irr_stale_probability: fraction of registered objects that are stale.
        seed: seed for vantage/looking-glass sampling and Table 1 metadata.
    """

    topology: GeneratorParameters = field(
        default_factory=lambda: GeneratorParameters(
            seed=2002,
            tier1_count=6,
            tier2_count=18,
            tier3_count=45,
            stub_count=260,
        )
    )
    policy: PolicyParameters = field(default_factory=PolicyParameters)
    looking_glass_count: int = 15
    tier1_looking_glass_count: int = 3
    collector_vantage_count: int = 24
    irr_registration_probability: float = 0.7
    irr_stale_probability: float = 0.15
    seed: int = 1118

    def validate(self) -> None:
        """Raise :class:`SimulationError` on inconsistent settings."""
        if self.tier1_looking_glass_count > self.looking_glass_count:
            raise SimulationError(
                "tier1_looking_glass_count cannot exceed looking_glass_count"
            )
        if self.collector_vantage_count < 1:
            raise SimulationError("collector_vantage_count must be at least 1")


@dataclass
class ASInfo:
    """Table 1 style metadata about one AS in the dataset."""

    asn: ASN
    name: str
    degree: int
    location: str
    tier: int
    is_looking_glass: bool = False
    is_vantage: bool = False


@dataclass(eq=False)  # identity semantics: hashable + usable as a weak cache key
class StudyDataset:
    """The complete dataset every experiment consumes (flat compatibility view).

    Attributes:
        parameters: the dataset configuration.
        internet: the synthetic Internet (topology, tiers, prefixes).
        assignment: the per-AS policies (with ground truth).
        result: the propagation result observed at vantage + Looking Glass ASes.
        collector: the RouteViews-style collector table.
        looking_glasses: Looking Glass views keyed by AS.
        irr: the synthetic IRR database.
        vantage_ases: ASes peering with the collector.
        looking_glass_ases: ASes with a Looking Glass.
        as_info: Table 1 style metadata per AS in the dataset inventory.
    """

    parameters: DatasetParameters
    internet: SyntheticInternet
    assignment: PolicyAssignment
    result: SimulationResult
    collector: CollectorTable
    looking_glasses: dict[ASN, LookingGlass]
    irr: IrrDatabase
    vantage_ases: list[ASN]
    looking_glass_ases: list[ASN]
    as_info: dict[ASN, ASInfo] = field(default_factory=dict)
    #: Analysis-stage knobs the engine is built with (``None`` means the
    #: session defaults); set by the session layer's dataset assembly.
    analysis_parameters: "AnalysisParameters | None" = None
    _analysis_engine: "AnalysisEngine | None" = field(
        default=None, repr=False, init=False
    )
    _analysis_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, init=False
    )

    # -- convenience used across experiments -----------------------------------

    @property
    def tier1_ases(self) -> list[ASN]:
        """The Tier-1 clique of the synthetic Internet."""
        return self.internet.tier1

    @property
    def ground_truth_graph(self):
        """The ground-truth annotated AS graph."""
        return self.internet.graph

    @property
    def cache_token(self) -> int:
        """Identity token used by per-dataset memo caches (experiments.common)."""
        return id(self)

    def looking_glass_of(self, asn: ASN) -> LookingGlass:
        """Return the Looking Glass view of an AS.

        Raises:
            SimulationError: if the AS has no Looking Glass in this dataset.
        """
        glass = self.looking_glasses.get(asn)
        if glass is None:
            raise SimulationError(f"AS{asn} has no Looking Glass in this dataset")
        return glass

    def providers_under_study(self, count: int = 3) -> list[ASN]:
        """The largest Tier-1 ASes (by degree), mirroring AS1/AS3549/AS7018."""
        return sorted(
            self.tier1_ases,
            key=lambda asn: self.ground_truth_graph.degree(asn),
            reverse=True,
        )[:count]

    @property
    def analysis(self) -> "AnalysisEngine":
        """The analyzer engine, mirroring ``StageView.analysis`` (ungated)."""
        return self.analysis_engine()

    def analysis_engine(self) -> "AnalysisEngine":
        """The one-pass analyzer engine over this dataset's measurement index.

        Built lazily on first use and memoised on the dataset (thread-safe,
        so concurrent ``run_suite`` workers compile the index exactly once).
        The session layer's ``ANALYSIS`` stage routes through this memo, so
        a :class:`~repro.session.study.Study` and a bare dataset share the
        same engine.
        """
        with self._analysis_lock:
            engine = self._analysis_engine
            if engine is None:
                from repro.analysis.engine import AnalysisEngine
                from repro.analysis.index import MeasurementIndex

                engine = AnalysisEngine(
                    MeasurementIndex.from_dataset(self), self.analysis_parameters
                )
                self._analysis_engine = engine
        return engine

    def adopt_analysis_engine(self, engine: "AnalysisEngine") -> "AnalysisEngine":
        """Install an externally built analyzer engine into the dataset memo.

        Used by the storage layer when an analysis artifact is decoded from
        the disk tier: the restored engine becomes this dataset's memoised
        engine so that :meth:`analysis_engine` callers and the session's
        ``ANALYSIS`` stage share it.  If an engine is already memoised it
        wins (first writer), keeping the memo stable under races.
        """
        with self._analysis_lock:
            if self._analysis_engine is None:
                self._analysis_engine = engine
            return self._analysis_engine


def build_dataset(parameters: DatasetParameters | None = None) -> StudyDataset:
    """Generate the Internet, assign policies, simulate, and observe.

    Legacy one-shot entry point; delegates to a staged
    :class:`~repro.session.study.Study` with an isolated cache, so every call
    builds a fresh dataset exactly like the seed API did.
    """
    from repro.session.cache import StageCache
    from repro.session.study import study_from_dataset_parameters

    return study_from_dataset_parameters(parameters, cache=StageCache()).dataset()


def default_dataset() -> StudyDataset:
    """The standard dataset shared by experiments and benchmarks.

    Memoised through the session layer's global stage cache (the successor
    of the seed API's ``lru_cache`` singleton).
    """
    from repro.session.scenarios import get_scenario

    return get_scenario("standard").study().dataset()


def small_dataset() -> StudyDataset:
    """A smaller memoised dataset for quick runs and the test suite."""
    from repro.session.scenarios import get_scenario

    return get_scenario("small").study().dataset()
