"""Shared helpers of the repro-lint test suite."""

import pathlib

import pytest

from repro.devtools.engine import LintContext, ModuleUnderLint, get_rule, lint_module

#: The rule-fixture snippets (one offending + one clean file per family).
FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: The project root (two levels above tests/devtools/).
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture()
def lint_fixture():
    """Lint one fixture file with every rule, scopes disabled.

    Returns a callable ``(file name, rule ids or None) -> findings`` so each
    test reads as one line; scope disabling lets fixtures live under tests/
    while still exercising the path-scoped DET family.
    """

    def _lint(name: str, rules: tuple[str, ...] | None = None):
        path = FIXTURES / name
        module = ModuleUnderLint.parse(
            f"tests/devtools/fixtures/{name}", path.read_text()
        )
        context = LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))
        selected = [get_rule(rule_id) for rule_id in rules] if rules else None
        return lint_module(module, context, rules=selected, respect_scopes=False)

    return _lint


@pytest.fixture()
def lint_source():
    """Lint an inline source string under a chosen repo-relative path."""

    def _lint(source: str, path: str = "src/repro/storage/fake.py"):
        module = ModuleUnderLint.parse(path, source)
        context = LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))
        return lint_module(module, context)

    return _lint
