"""Ablations of the design choices called out in DESIGN.md.

Three cheap ablations run on the standard dataset:

* **relationships** — run the SA-prefix pipeline with Gao-inferred
  relationships instead of ground truth (the paper's Section 4.3 argument
  that inference error barely moves the results).
* **visibility** — classify SA prefixes from best routes only (the paper's
  choice) vs. from all candidate routes (a prefix is SA only if *no*
  customer route exists at all).
* **vantage points** — how the number of collector peers changes the
  fraction of SA prefixes whose Case-3 classification can be identified
  (the paper notes ~90% identifiable from Oregon's peers).
"""

from __future__ import annotations

from repro.core.causes import CauseAnalyzer
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import provider_tables, sa_reports
from repro.experiments.registry import register
from repro.reporting.tables import format_percent
from repro.simulation.collector import CollectorTable, RouteViewsCollector


@register
class AblationExperiment(Experiment):
    """Sensitivity of the SA-prefix findings to the pipeline's design choices."""

    experiment_id = "ablations"
    title = "Ablations: inferred relationships, route visibility, vantage count"
    paper_reference = "DESIGN.md Section 5 (supports paper Sections 4.3 and 5.1.5)"
    requires = frozenset(
        {Stage.TOPOLOGY, Stage.PROPAGATION, Stage.OBSERVATION, Stage.ANALYSIS}
    )

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        result.headers = ["ablation", "provider", "variant", "value"]
        self._relationship_ablation(dataset, result)
        self._visibility_ablation(dataset, result)
        self._vantage_ablation(dataset, result)
        return result

    # -- inferred vs ground-truth relationships ----------------------------------

    def _relationship_ablation(self, dataset: StageView, result: ExperimentResult) -> None:
        # The Gao inference is shared with Table 4 through the engine cache.
        inferred_graph = dataset.analysis.inferred_graph()
        inferred_analyzer = ExportPolicyAnalyzer(inferred_graph)
        tables = provider_tables(dataset)
        baseline = sa_reports(dataset)
        for provider, table in tables.items():
            truth_report = baseline[provider]
            try:
                inferred_report = inferred_analyzer.find_sa_prefixes(provider, table)
            except Exception:
                continue
            result.rows.append(
                ["relationships", f"AS{provider}", "ground truth",
                 format_percent(truth_report.percent_sa, 1)]
            )
            result.rows.append(
                ["relationships", f"AS{provider}", "Gao-inferred",
                 format_percent(inferred_report.percent_sa, 1)]
            )
        result.notes.append(
            "relationships: the SA percentage should move only slightly when inferred "
            "relationships replace ground truth (paper Section 4.3)."
        )

    # -- best routes vs all routes ---------------------------------------------------

    def _visibility_ablation(self, dataset: StageView, result: ExperimentResult) -> None:
        engine = dataset.analysis
        for provider, report in sa_reports(dataset).items():
            strict_sa = engine.strict_sa_count(provider)
            result.rows.append(
                ["visibility", f"AS{provider}", "best routes (paper)", report.sa_prefix_count]
            )
            result.rows.append(
                ["visibility", f"AS{provider}", "all candidate routes", strict_sa]
            )
        result.notes.append(
            "visibility: with typical LOCAL_PREF a customer route would have been selected "
            "as best, so the two variants should nearly coincide (paper Section 5.1.1)."
        )

    # -- collector vantage count ------------------------------------------------------------

    def _vantage_ablation(self, dataset: StageView, result: ExperimentResult) -> None:
        analyzer = CauseAnalyzer(dataset.ground_truth_graph)
        reports = sa_reports(dataset)
        provider = next(iter(reports))
        report = reports[provider]
        full_vantages = dataset.vantage_ases
        for fraction, label in ((1.0, "all vantages"), (0.5, "half"), (0.25, "quarter")):
            count = max(1, int(len(full_vantages) * fraction))
            collector = self._collector_subset(dataset, full_vantages[:count])
            case3 = analyzer.case3_analysis(report, collector)
            result.rows.append(
                ["vantage points", f"AS{provider}", f"{label} ({count})",
                 format_percent(case3.percent_identified, 0) + " identified"]
            )
        result.notes.append(
            "vantage points: fewer collector peers leave more SA prefixes unclassifiable "
            "(the paper could identify ~90% from Oregon's 56 peers)."
        )

    @staticmethod
    def _collector_subset(dataset: StageView, vantages: list[int]) -> CollectorTable:
        return RouteViewsCollector(vantages).collect(dataset.result)
