"""The BGP best-route decision process (paper Section 2.2.1).

The paper lists the sequential criteria a BGP router applies to pick the best
route for a prefix:

1. highest LOCAL_PREF,
2. shortest AS path,
3. lowest ORIGIN,
4. smallest MED (compared between routes with the same next-hop AS),
5. eBGP preferred over iBGP,
6. smallest IGP metric to the egress router,
7. smallest router ID.

:class:`DecisionProcess` implements that order and reports *which* step
decided the comparison — the import-policy inference (Section 4) needs to
know whether LOCAL_PREF or a later tie-breaker picked the winner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.bgp.route import Route, RouteSource
from repro.exceptions import PolicyError


class DecisionStep(enum.IntEnum):
    """The decision-process step that determined a comparison."""

    LOCAL_PREF = 1
    AS_PATH_LENGTH = 2
    ORIGIN = 3
    MED = 4
    EBGP_OVER_IBGP = 5
    IGP_METRIC = 6
    ROUTER_ID = 7
    TIE = 8


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing two routes.

    Attributes:
        winner: the preferred route (``None`` for a complete tie).
        step: the decision step that broke the tie.
    """

    winner: Route | None
    step: DecisionStep


class DecisionProcess:
    """The sequential BGP route-selection procedure.

    Args:
        compare_med_only_same_neighbor: when ``True`` (the default, matching
            the paper and Cisco behaviour without ``always-compare-med``),
            MED is only compared between routes learned from the same
            next-hop AS.
    """

    def __init__(self, compare_med_only_same_neighbor: bool = True) -> None:
        self.compare_med_only_same_neighbor = compare_med_only_same_neighbor

    # -- pairwise comparison -----------------------------------------------

    def compare(self, left: Route, right: Route) -> Comparison:
        """Compare two routes to the same prefix and report the deciding step."""
        if left.prefix != right.prefix:
            raise PolicyError(
                f"cannot compare routes to different prefixes: "
                f"{left.prefix} vs {right.prefix}"
            )
        # Step 1: highest LOCAL_PREF.
        if left.local_pref != right.local_pref:
            winner = left if left.local_pref > right.local_pref else right
            return Comparison(winner, DecisionStep.LOCAL_PREF)
        # Step 2: shortest AS path.
        if len(left.as_path) != len(right.as_path):
            winner = left if len(left.as_path) < len(right.as_path) else right
            return Comparison(winner, DecisionStep.AS_PATH_LENGTH)
        # Step 3: lowest origin type.
        if left.origin != right.origin:
            winner = left if left.origin < right.origin else right
            return Comparison(winner, DecisionStep.ORIGIN)
        # Step 4: smallest MED, only between routes from the same next-hop AS.
        med_comparable = (
            not self.compare_med_only_same_neighbor
            or left.next_hop_as == right.next_hop_as
        )
        if med_comparable and left.med != right.med:
            winner = left if left.med < right.med else right
            return Comparison(winner, DecisionStep.MED)
        # Step 5: eBGP over iBGP.
        left_ebgp = left.source is not RouteSource.IBGP
        right_ebgp = right.source is not RouteSource.IBGP
        if left_ebgp != right_ebgp:
            winner = left if left_ebgp else right
            return Comparison(winner, DecisionStep.EBGP_OVER_IBGP)
        # Step 6: smallest IGP metric to the egress router.
        if left.igp_metric != right.igp_metric:
            winner = left if left.igp_metric < right.igp_metric else right
            return Comparison(winner, DecisionStep.IGP_METRIC)
        # Step 7: smallest router ID.
        if left.router_id != right.router_id:
            winner = left if left.router_id < right.router_id else right
            return Comparison(winner, DecisionStep.ROUTER_ID)
        return Comparison(None, DecisionStep.TIE)

    def prefer(self, left: Route, right: Route) -> Route:
        """Return the preferred of two routes (``left`` on a complete tie)."""
        comparison = self.compare(left, right)
        return comparison.winner if comparison.winner is not None else left

    # -- best-route selection -----------------------------------------------------

    def select_best(self, routes: Sequence[Route] | Iterable[Route]) -> Route | None:
        """Return the best route among ``routes`` (``None`` if empty).

        Later routes only displace the current best when strictly preferred,
        which makes the selection deterministic for a given input order and
        mirrors router behaviour where the incumbent best route is retained
        on a complete tie.
        """
        best: Route | None = None
        for route in routes:
            if best is None:
                best = route
                continue
            comparison = self.compare(best, route)
            if comparison.winner is route:
                best = route
        return best

    def deciding_step(self, routes: Sequence[Route]) -> DecisionStep | None:
        """Return the step that separates the best route from the runner-up.

        Used by the import-policy analysis to check how often LOCAL_PREF (as
        opposed to AS-path length or later tie-breakers) is what actually
        picks the best route.  Returns ``None`` when fewer than two routes
        are supplied.
        """
        if len(routes) < 2:
            return None
        best = self.select_best(routes)
        runner_up: Route | None = None
        for route in routes:
            if route is best:
                continue
            if runner_up is None:
                runner_up = route
                continue
            if self.compare(runner_up, route).winner is route:
                runner_up = route
        assert best is not None and runner_up is not None
        return self.compare(best, runner_up).step
