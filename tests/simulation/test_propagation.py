"""Tests of the propagation engine on generated Internets."""

import pytest

from repro.bgp.route import NeighborKind
from repro.exceptions import SimulationError
from repro.simulation.collector import RouteViewsCollector
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.propagation import PropagationEngine
from repro.topology.generator import GeneratorParameters, InternetGenerator


@pytest.fixture(scope="module")
def tiny_internet():
    return InternetGenerator(
        GeneratorParameters(seed=3, tier1_count=4, tier2_count=8, tier3_count=12, stub_count=60)
    ).generate()


@pytest.fixture(scope="module")
def plain_assignment(tiny_internet):
    """No selective announcement, no atypical policies: the baseline Internet."""
    parameters = PolicyParameters(
        seed=1,
        atypical_scheme_probability=0.0,
        atypical_neighbor_probability=0.0,
        prefix_based_fraction=0.0,
        selective_announcement_probability=0.0,
        transit_selective_probability=0.0,
        peer_withhold_probability=0.0,
    )
    return PolicyGenerator(parameters).generate(tiny_internet)


@pytest.fixture(scope="module")
def plain_result(tiny_internet, plain_assignment):
    observed = tiny_internet.tier1 + tiny_internet.stub_ases()[:3]
    return PropagationEngine(tiny_internet, plain_assignment, observed_ases=observed).run()


@pytest.fixture(scope="module")
def policied_assignment(tiny_internet):
    return PolicyGenerator(PolicyParameters(seed=9)).generate(tiny_internet)


@pytest.fixture(scope="module")
def policied_result(tiny_internet, policied_assignment):
    return PropagationEngine(
        tiny_internet, policied_assignment, observed_ases=tiny_internet.tier1
    ).run()


class TestBaselinePropagation:
    def test_tier1_sees_every_prefix(self, tiny_internet, plain_result):
        all_prefixes = set(tiny_internet.all_prefixes())
        for tier1 in tiny_internet.tier1:
            table = plain_result.table_of(tier1)
            missing = all_prefixes - set(table.prefixes())
            assert not missing, f"AS{tier1} is missing {len(missing)} prefixes"

    def test_stub_sees_every_prefix(self, tiny_internet, plain_result):
        stub = tiny_internet.stub_ases()[0]
        table = plain_result.table_of(stub)
        assert set(tiny_internet.all_prefixes()) <= set(table.prefixes())

    def test_observed_tables_only(self, tiny_internet, plain_result):
        unobserved = tiny_internet.stub_ases()[-1]
        with pytest.raises(SimulationError):
            plain_result.table_of(unobserved)

    def test_best_paths_are_valley_free(self, tiny_internet, plain_result):
        graph = tiny_internet.graph
        for asn in plain_result.observed_ases:
            for route in plain_result.table_of(asn).best_routes():
                if route.is_local:
                    continue
                path = [asn] + list(route.as_path.deduplicate())
                assert graph.is_valley_free(path), f"valley in {path} at AS{asn}"

    def test_paths_are_loop_free(self, plain_result):
        for asn in plain_result.observed_ases:
            for route in plain_result.table_of(asn).best_routes():
                asns = list(route.as_path.deduplicate())
                assert len(asns) == len(set(asns))
                if not route.is_local:
                    assert asn not in asns

    def test_route_origin_matches_ground_truth(self, tiny_internet, plain_result):
        for tier1 in tiny_internet.tier1:
            for route in plain_result.table_of(tier1).best_routes():
                if route.is_local:
                    continue
                assert route.prefix in tiny_internet.prefixes_of(route.origin_as)

    def test_without_selective_announcement_customers_reached_via_customers(
        self, tiny_internet, plain_result
    ):
        """With no selective announcement, a provider reaches every prefix
        originated inside its customer cone via a customer route."""
        graph = tiny_internet.graph
        for tier1 in tiny_internet.tier1:
            table = plain_result.table_of(tier1)
            cone = graph.customer_cone(tier1)
            for origin in cone:
                for prefix in tiny_internet.prefixes_of(origin):
                    best = table.best_route(prefix)
                    assert best is not None
                    assert best.is_customer_route, (
                        f"AS{tier1} reaches {prefix} (origin AS{origin}) via "
                        f"{best.neighbor_kind}"
                    )

    def test_typical_local_pref_assignment(self, plain_result):
        for asn in plain_result.observed_ases:
            for entry in plain_result.table_of(asn).entries():
                for route in entry.routes:
                    if route.is_local:
                        continue
                    if route.neighbor_kind is NeighborKind.CUSTOMER:
                        assert route.local_pref == 110
                    elif route.neighbor_kind is NeighborKind.PEER:
                        assert route.local_pref == 100
                    elif route.neighbor_kind is NeighborKind.PROVIDER:
                        assert route.local_pref == 90

    def test_message_count_reported(self, plain_result):
        assert plain_result.message_count > 0


class TestPoliciedPropagation:
    def test_selective_announcement_creates_peer_or_missing_routes(
        self, tiny_internet, policied_assignment, policied_result
    ):
        """At least one Tier-1 reaches some cone-internal prefix via a peer
        (or not at all) once selective announcement is enabled."""
        graph = tiny_internet.graph
        curved = 0
        for tier1 in tiny_internet.tier1:
            table = policied_result.table_of(tier1)
            for origin, prefixes in policied_assignment.selective_origins.items():
                if not graph.is_customer_of(origin, tier1):
                    continue
                for prefix in prefixes:
                    best = table.best_route(prefix)
                    if best is None or not best.is_customer_route:
                        curved += 1
        assert curved > 0

    def test_scoped_routes_do_not_leak_past_their_provider(
        self, tiny_internet, policied_assignment, policied_result
    ):
        """A prefix announced only with the scoped community never shows up
        beyond the chosen providers' own tables."""
        graph = tiny_internet.graph
        for origin, prefixes in policied_assignment.scoped_origins.items():
            policy = policied_assignment.policies[origin]
            for prefix in prefixes:
                scoped_targets = policy.scoped_providers_for_prefix(prefix)
                plain_targets = policy.providers_for_prefix(
                    prefix, graph.providers_of(origin)
                )
                if plain_targets - scoped_targets:
                    continue  # also announced plainly somewhere; may spread
                for tier1 in tiny_internet.tier1:
                    if tier1 in scoped_targets:
                        continue
                    best = policied_result.table_of(tier1).best_route(prefix)
                    assert best is None, (
                        f"scoped prefix {prefix} leaked to AS{tier1} via {best}"
                    )

    def test_community_tagging_visible_at_tier1(
        self, tiny_internet, policied_assignment, policied_result
    ):
        tagging_tier1 = [
            asn for asn in tiny_internet.tier1 if asn in policied_assignment.tagging_ases
        ]
        if not tagging_tier1:
            pytest.skip("no Tier-1 AS tags communities under this seed")
        from repro.simulation.policies import SCOPED_ANNOUNCEMENT_VALUE

        asn = tagging_tier1[0]
        plan = policied_assignment.policies[asn].community_plan
        tagged = 0
        for route in policied_result.table_of(asn).best_routes():
            if route.is_local:
                continue
            # Communities carrying this AS's number are either relationship
            # tags (decodable by the plan) or a customer's scoped-announcement
            # marker addressed to this AS.
            own = {
                community
                for community in route.communities.from_asn(asn)
                if community.value != SCOPED_ANNOUNCEMENT_VALUE
            }
            if own:
                tagged += 1
                relationships = {plan.relationship_of(c) for c in own}
                assert None not in relationships
        assert tagged > 0


class TestCollector:
    def test_collector_table_covers_vantages(self, tiny_internet, plain_result):
        collector = RouteViewsCollector(vantage_ases=tiny_internet.tier1)
        table = collector.collect(plain_result)
        assert table.vantages() == tiny_internet.tier1
        assert len(table) >= len(tiny_internet.all_prefixes())

    def test_collector_paths_start_with_vantage(self, tiny_internet, plain_result):
        collector = RouteViewsCollector(vantage_ases=tiny_internet.tier1[:2])
        table = collector.collect(plain_result)
        for entry in table.entries:
            assert entry.as_path.next_hop_as == entry.vantage

    def test_collector_requires_vantages(self):
        with pytest.raises(SimulationError):
            RouteViewsCollector(vantage_ases=[])
