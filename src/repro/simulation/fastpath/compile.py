"""Graph + policy compilation for the fast propagation core.

:func:`compile_topology` lowers an annotated AS graph and a
:class:`~repro.simulation.policies.PolicyAssignment` into flat arrays indexed
by *dense AS ids* (0..n-1, assigned in ascending AS-number order so sorting
by id equals sorting by ASN, which is what keeps the fast engine's message
schedule identical to the legacy engine's):

* a flat adjacency in CSR slot order (rows sorted by neighbor AS number)
  with a per-row ``nbr_slot`` map for O(1) edge lookup;
* per-edge import decisions resolved once into three parallel columns
  indexed by the receiver-side CSR slot — ``edge_lp`` (base LOCAL_PREF:
  neighbor override or relationship scheme), ``edge_tag`` (community tag
  the receiver attaches, ``-1`` when it does not tag) and ``edge_rel``
  (relationship code) — plus a sparse ``edge_overrides`` map holding the
  receiver's per-prefix LOCAL_PREF overrides for the few slots that have
  any.  Flat integer columns (instead of the former list of 4-tuples) are
  what lets :mod:`repro.simulation.fastpath.shm` expose the same data as
  zero-copy array views over a shared-memory segment;
* per-AS export templates for the three route classes of Section 2.2.2
  (locally originated, learned from a customer/sibling, learned from a
  peer/provider), with the transit-level selective-export restriction
  already applied.  Each template is a pre-sorted tuple of
  ``(target, slot)`` pairs, where ``slot`` is the *receiver-side* CSR slot
  of the edge — so the engine's hot loop never looks an edge up;
* per-(origin, prefix) seed plans replaying the origin's selective /
  scoped / peer-withholding export policy as ordered announcement groups;
* an initial community-set intern table (id 0 is the empty set; scoped
  announcements intern their "do not propagate" marker at compile time).

A process-pool fan-out never pickles the compiled object: the parent lowers
it into a shared-memory segment (:mod:`repro.simulation.fastpath.shm`) and
workers attach zero-copy views by segment name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.attributes import EMPTY_COMMUNITIES, Community, CommunitySet
from repro.exceptions import SimulationError
from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.simulation.policies import (
    SCOPED_ANNOUNCEMENT_VALUE,
    ASPolicy,
    PolicyAssignment,
    scoped_community,
)
from repro.topology.generator import SyntheticInternet
from repro.topology.graph import Relationship

#: Dense relationship codes (what the *sender* is to the receiving AS).
REL_CUSTOMER = 0
REL_PEER = 1
REL_PROVIDER = 2
REL_SIBLING = 3
#: Pseudo-kind of a locally originated route (not a relationship).
KIND_LOCAL = 4

_REL_CODE = {
    Relationship.CUSTOMER: REL_CUSTOMER,
    Relationship.PEER: REL_PEER,
    Relationship.PROVIDER: REL_PROVIDER,
    Relationship.SIBLING: REL_SIBLING,
}

#: An announcement fan-out: ((target dense id, receiver-side CSR slot), ...).
TargetPairs = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class SeedPlan:
    """The origin's opening announcements for one prefix.

    Attributes:
        groups: ordered announcement groups ``(target pairs, community-set
            id)``; flattened, the groups enqueue targets in the exact order
            the legacy engine does (plain providers, scoped providers, then
            peers + customers + siblings).
        announced: the set of seeded targets (the origin's initial
            ``announced_to``).
    """

    groups: tuple[tuple[TargetPairs, int], ...]
    announced: frozenset[int]


@dataclass
class CompiledTopology:
    """The flat, integer-indexed form of one (graph, policy assignment) pair.

    All per-AS arrays are indexed by dense id; the ``edge_*`` columns are
    indexed by CSR slot (``nbr_slot[u][v]``).  ``comm_table`` / ``comm_index``
    hold the *initial* community-set intern table; engines copy and extend it
    per process.
    """

    asns: tuple[ASN, ...]
    index_of: dict[ASN, int]
    #: Per-AS edge lookup: neighbor dense id -> CSR slot (rows sorted by
    #: neighbor ASN; slots enumerate edges in row-major order).
    nbr_slot: list[dict[int, int]]
    #: Per-edge import decisions, three parallel columns indexed by the
    #: *receiver's* CSR slot: base LOCAL_PREF, tag id into
    #: ``tag_communities`` (-1 when the receiver does not tag), and the
    #: relationship code of the sender.
    edge_lp: list[int]
    edge_tag: list[int]
    edge_rel: list[int]
    #: Sparse per-prefix LOCAL_PREF overrides: slot -> {prefix: lp}, present
    #: only for slots whose receiver has prefix-based overrides (edges of
    #: one receiver share a single dict).
    edge_overrides: dict[int, dict[Prefix, int]]
    tag_communities: list[Community]
    # Per-AS export state.
    honor_scoped: list[bool]
    scoped_marker: list[tuple[int, int]]  # (asn % 65536, SCOPED_ANNOUNCEMENT_VALUE)
    exp_local: list[TargetPairs]
    exp_local_set: list[frozenset[int]]
    exp_customer: list[TargetPairs]
    exp_down: list[TargetPairs]
    # Origination.
    origin_tasks: list[tuple[int, Prefix]]
    seeds: dict[tuple[int, Prefix], SeedPlan]
    # Observation.
    observed: tuple[int, ...]
    # Community-set interning (initial table; engines copy then extend).
    comm_table: list[CommunitySet] = field(default_factory=lambda: [EMPTY_COMMUNITIES])
    comm_index: dict[CommunitySet, int] = field(
        default_factory=lambda: {EMPTY_COMMUNITIES: 0}
    )

    @property
    def as_count(self) -> int:
        """Number of ASes in the compiled graph."""
        return len(self.asns)

    def pairs_from(self, sender_idx: int, targets: list[int]) -> TargetPairs:
        """Lower a target id list into (target, receiver-side slot) pairs.

        Raises:
            SimulationError: if a target is not a neighbor of the sender.
        """
        pairs = []
        for target in targets:
            slot = self.nbr_slot[target].get(sender_idx)
            if slot is None:
                raise SimulationError(
                    f"AS{self.asns[sender_idx]} announced a route to "
                    f"non-neighbor AS{self.asns[target]}"
                )
            pairs.append((target, slot))
        return tuple(pairs)


def compile_seed_plan(
    topology: CompiledTopology,
    policy: ASPolicy,
    providers: list[ASN],
    peers: list[ASN],
    customers: list[ASN],
    siblings: list[ASN],
    prefix: Prefix,
    intern_comm,
) -> SeedPlan:
    """Lower one origin's export policy for one prefix into a seed plan.

    ``intern_comm`` maps a :class:`CommunitySet` to its intern id (the
    compiler interns into the topology's initial table; an engine compiling
    an ad-hoc plan interns into its own run table).
    """
    index_of = topology.index_of
    origin_idx = index_of[policy.asn]
    plain = policy.providers_for_prefix(prefix, providers)
    scoped = policy.scoped_providers_for_prefix(prefix)
    peer_targets = policy.peers_for_prefix(prefix, peers)

    groups: list[tuple[TargetPairs, int]] = []
    plain_targets = [index_of[p] for p in sorted(plain - scoped)]
    if plain_targets:
        groups.append((topology.pairs_from(origin_idx, plain_targets), 0))
    for provider in sorted(scoped):
        marked = EMPTY_COMMUNITIES.add(scoped_community(provider))
        groups.append(
            (
                topology.pairs_from(origin_idx, [index_of[provider]]),
                intern_comm(marked),
            )
        )
    rest = [
        index_of[t] for t in sorted(peer_targets) + sorted(customers) + sorted(siblings)
    ]
    if rest:
        groups.append((topology.pairs_from(origin_idx, rest), 0))
    announced = frozenset(
        pair[0] for pairs, _ in groups for pair in pairs
    )
    return SeedPlan(groups=tuple(groups), announced=announced)


def compile_topology(
    internet: SyntheticInternet,
    assignment: PolicyAssignment,
    observed_ases: list[ASN] | None = None,
) -> CompiledTopology:
    """Compile a synthetic Internet + policy assignment for the fast engine.

    Args:
        internet: the synthetic Internet (graph + prefix ownership).
        assignment: per-AS policies; ASes without an explicit policy get the
            default-typical one (same behaviour as the legacy engine).
        observed_ases: ASes whose tables the engine will retain; defaults to
            the Tier-1 clique, mirroring the legacy engine.
    """
    graph = internet.graph
    asns = tuple(sorted(graph.ases()))
    index_of = {asn: i for i, asn in enumerate(asns)}
    observed = tuple(
        sorted(
            index_of[asn]
            for asn in set(observed_ases if observed_ases is not None else internet.tier1)
        )
    )

    nbr_slot: list[dict[int, int]] = []
    edge_lp: list[int] = []
    edge_tag: list[int] = []
    edge_rel: list[int] = []
    edge_overrides: dict[int, dict[Prefix, int]] = {}
    tag_communities: list[Community] = []
    tag_index: dict[Community, int] = {}
    honor_scoped: list[bool] = []
    scoped_marker: list[tuple[int, int]] = []

    neighbor_lists: dict[ASN, dict[int, list[ASN]]] = {}

    for asn in asns:
        policy = assignment.policy_for(asn)
        scheme = policy.local_pref
        plan = policy.community_plan
        overrides = policy.neighbor_local_pref
        overrides_map = dict(policy.prefix_local_pref) or None
        row: dict[int, int] = {}
        by_rel: dict[int, list[ASN]] = {
            REL_CUSTOMER: [],
            REL_PEER: [],
            REL_PROVIDER: [],
            REL_SIBLING: [],
        }
        # Sorting by (neighbor, relationship) is sorting by neighbor ASN:
        # each neighbor appears exactly once per row.
        for position, (neighbor, relationship) in enumerate(
            sorted(graph.neighbor_items(asn))
        ):
            slot = len(edge_lp)
            row[index_of[neighbor]] = slot
            code = _REL_CODE[relationship]
            by_rel[code].append(neighbor)
            if neighbor in overrides:
                lp = overrides[neighbor]
            else:
                lp = scheme.value_for(relationship)
            if plan is None:
                tag_id = -1
            else:
                tag = plan.community_for(relationship, position)
                tag_id = tag_index.get(tag)
                if tag_id is None:
                    tag_id = len(tag_communities)
                    tag_communities.append(tag)
                    tag_index[tag] = tag_id
            edge_lp.append(lp)
            edge_tag.append(tag_id)
            edge_rel.append(code)
            if overrides_map is not None:
                edge_overrides[slot] = overrides_map
        nbr_slot.append(row)
        neighbor_lists[asn] = by_rel

        honor_scoped.append(policy.honor_scoped_communities)
        scoped_marker.append((asn % 65536, SCOPED_ANNOUNCEMENT_VALUE))

    topology = CompiledTopology(
        asns=asns,
        index_of=index_of,
        nbr_slot=nbr_slot,
        edge_lp=edge_lp,
        edge_tag=edge_tag,
        edge_rel=edge_rel,
        edge_overrides=edge_overrides,
        tag_communities=tag_communities,
        honor_scoped=honor_scoped,
        scoped_marker=scoped_marker,
        exp_local=[],
        exp_local_set=[],
        exp_customer=[],
        exp_down=[],
        origin_tasks=[],
        seeds={},
        observed=observed,
    )

    # Export templates need every CSR row in place (they store the
    # *receiver-side* slot of each edge), hence the second pass.
    for asn in asns:
        policy = assignment.policies[asn]
        by_rel = neighbor_lists[asn]
        sender_idx = index_of[asn]
        customers = [index_of[a] for a in by_rel[REL_CUSTOMER]]
        providers = [index_of[a] for a in by_rel[REL_PROVIDER]]
        peers = [index_of[a] for a in by_rel[REL_PEER]]
        siblings = [index_of[a] for a in by_rel[REL_SIBLING]]
        allowed = policy.export_customer_prefixes_to
        allowed_providers = (
            providers
            if allowed is None
            else [p for p in providers if asns[p] in allowed]
        )
        local = sorted(customers + siblings + providers + peers)
        topology.exp_local.append(topology.pairs_from(sender_idx, local))
        topology.exp_local_set.append(frozenset(local))
        topology.exp_customer.append(
            topology.pairs_from(
                sender_idx, sorted(customers + siblings + allowed_providers + peers)
            )
        )
        topology.exp_down.append(
            topology.pairs_from(sender_idx, sorted(customers + siblings))
        )

    def intern_comm(communities: CommunitySet) -> int:
        comm_id = topology.comm_index.get(communities)
        if comm_id is None:
            comm_id = len(topology.comm_table)
            topology.comm_table.append(communities)
            topology.comm_index[communities] = comm_id
        return comm_id

    for origin in sorted(internet.originated):
        if origin not in index_of:
            raise SimulationError(f"origin AS{origin} is not in the graph")
        origin_idx = index_of[origin]
        by_rel = neighbor_lists[origin]
        policy = assignment.policy_for(origin)
        for prefix in internet.prefixes_of(origin):
            topology.origin_tasks.append((origin_idx, prefix))
            topology.seeds[(origin_idx, prefix)] = compile_seed_plan(
                topology,
                policy,
                by_rel[REL_PROVIDER],
                by_rel[REL_PEER],
                by_rel[REL_CUSTOMER],
                by_rel[REL_SIBLING],
                prefix,
                intern_comm,
            )
    return topology
