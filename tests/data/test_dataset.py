"""Tests for the study-dataset assembly."""

import pytest

from repro.data.dataset import (
    DatasetParameters,
    StudyDataset,
    build_dataset,
    small_dataset,
)
from repro.exceptions import SimulationError
from repro.topology.generator import GeneratorParameters


@pytest.fixture(scope="module")
def dataset() -> StudyDataset:
    return small_dataset()


class TestParameters:
    def test_defaults_valid(self):
        DatasetParameters().validate()

    def test_parameters_are_frozen(self):
        # build_dataset can no longer be affected by callers mutating the
        # parameters after (or during) assembly.
        params = DatasetParameters()
        with pytest.raises(AttributeError):
            params.seed = 1
        with pytest.raises(AttributeError):
            params.topology.stub_count = 5
        with pytest.raises(AttributeError):
            params.policy.seed = 2

    def test_parameters_are_hashable(self):
        assert hash(DatasetParameters()) == hash(DatasetParameters())
        assert hash(GeneratorParameters(seed=1)) != hash(GeneratorParameters(seed=2))

    def test_rejects_too_many_tier1_looking_glasses(self):
        params = DatasetParameters(looking_glass_count=2, tier1_looking_glass_count=5)
        with pytest.raises(SimulationError):
            params.validate()

    def test_rejects_no_vantages(self):
        with pytest.raises(SimulationError):
            DatasetParameters(collector_vantage_count=0).validate()


class TestAssembly:
    def test_looking_glass_count(self, dataset):
        assert len(dataset.looking_glass_ases) == dataset.parameters.looking_glass_count
        assert set(dataset.looking_glasses) == set(dataset.looking_glass_ases)

    def test_tier1_looking_glasses_present(self, dataset):
        tier1_lg = set(dataset.looking_glass_ases) & set(dataset.tier1_ases)
        assert len(tier1_lg) >= dataset.parameters.tier1_looking_glass_count

    def test_vantages_include_tier1(self, dataset):
        assert set(dataset.tier1_ases) <= set(dataset.vantage_ases)

    def test_collector_covers_vantages(self, dataset):
        assert dataset.collector.vantages() == sorted(dataset.vantage_ases)

    def test_collector_sees_most_prefixes(self, dataset):
        all_prefixes = set(dataset.internet.all_prefixes())
        seen = set(dataset.collector.prefixes())
        # Scoped announcements can hide a few prefixes entirely, but the
        # overwhelming majority must be visible from the collector.
        assert len(seen) / len(all_prefixes) > 0.9

    def test_looking_glass_tables_expose_local_pref(self, dataset):
        glass = dataset.looking_glass_of(dataset.looking_glass_ases[0])
        prefs = {route.local_pref for route in glass.best_routes()}
        assert len(prefs) > 1

    def test_looking_glass_of_unknown_as_raises(self, dataset):
        with pytest.raises(SimulationError):
            dataset.looking_glass_of(999_999)

    def test_irr_populated(self, dataset):
        assert len(dataset.irr) > 0
        assert len(dataset.irr) <= len(dataset.internet.graph)

    def test_as_info_inventory(self, dataset):
        assert set(dataset.as_info) == set(dataset.vantage_ases) | set(
            dataset.looking_glass_ases
        )
        for info in dataset.as_info.values():
            assert info.degree == dataset.ground_truth_graph.degree(info.asn)
            assert info.location in {"NA", "Eu", "Au", "As"}
            assert info.tier >= 1

    def test_providers_under_study_are_largest_tier1s(self, dataset):
        providers = dataset.providers_under_study(3)
        assert len(providers) == 3
        assert set(providers) <= set(dataset.tier1_ases)
        degrees = [dataset.ground_truth_graph.degree(asn) for asn in providers]
        assert degrees == sorted(degrees, reverse=True)

    def test_no_truncated_prefixes(self, dataset):
        assert dataset.result.truncated_prefixes == []

    def test_small_dataset_is_memoised(self):
        assert small_dataset() is small_dataset()

    def test_build_dataset_respects_topology_override(self):
        params = DatasetParameters(
            topology=GeneratorParameters(
                seed=3, tier1_count=3, tier2_count=5, tier3_count=8, stub_count=30
            ),
            looking_glass_count=4,
            tier1_looking_glass_count=2,
            collector_vantage_count=6,
        )
        dataset = build_dataset(params)
        assert len(dataset.internet.graph) == 46
        assert len(dataset.looking_glass_ases) == 4
