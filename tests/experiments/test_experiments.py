"""Integration tests: every registered experiment runs and matches the paper's shape."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import all_experiments, get_experiment
from repro.experiments.common import persistence_snapshots
from repro.experiments.registry import experiment_class
from repro.session import StageView, get_scenario


@pytest.fixture(scope="module")
def dataset():
    return get_scenario("small").study().dataset()


@pytest.fixture(scope="module", autouse=True)
def fast_persistence():
    """Shrink the persistence panels so fig6/fig7 stay quick in the test suite."""
    from repro.experiments.fig6 import Figure6Experiment
    from repro.experiments.fig7 import Figure7Experiment

    originals = (
        Figure6Experiment.month_snapshots,
        Figure6Experiment.day_snapshots,
        Figure7Experiment.month_snapshots,
        Figure7Experiment.day_snapshots,
    )
    Figure6Experiment.month_snapshots = 5
    Figure6Experiment.day_snapshots = 3
    Figure7Experiment.month_snapshots = 5
    Figure7Experiment.day_snapshots = 3
    yield
    (
        Figure6Experiment.month_snapshots,
        Figure6Experiment.day_snapshots,
        Figure7Experiment.month_snapshots,
        Figure7Experiment.day_snapshots,
    ) = originals


class TestRegistry:
    def test_all_expected_experiments_registered(self):
        identifiers = {experiment.experiment_id for experiment in all_experiments()}
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table7",
            "table8", "table9", "table10", "table11",
            "fig2", "fig6", "fig7", "fig9", "case3", "ablations",
        }
        assert expected <= identifiers

    def test_get_experiment_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("table99")

    def test_experiments_have_metadata(self):
        for experiment in all_experiments():
            assert experiment.title
            assert experiment.paper_reference


class TestEveryExperimentRuns:
    # The shared analysis engine is memoised on the dataset, but the stage
    # gate sits on `StageView.analysis` itself, so each experiment's declared
    # requires is genuinely exercised regardless of which view touched the
    # engine first.

    @pytest.mark.parametrize(
        "experiment_id",
        [e.experiment_id for e in all_experiments()],
    )
    def test_runs_and_renders(self, dataset, experiment_id):
        # Run through a view restricted to the declared requires, proving the
        # declaration is sufficient for the experiment's whole analysis.
        cls = experiment_class(experiment_id)
        experiment = cls()
        result = experiment.run(StageView(dataset, cls.requires))
        assert result.experiment_id == experiment_id
        assert result.headers
        assert result.rows, f"{experiment_id} produced no rows"
        rendered = result.render()
        assert experiment_id in rendered
        assert "+-" in rendered


class TestShapeMatchesPaper:
    def test_table2_typical_fractions_high(self, dataset):
        result = get_experiment("table2").run(dataset)
        percentages = [float(row[-1].rstrip("%")) for row in result.rows]
        assert all(p >= 90.0 for p in percentages)

    def test_table3_typical_fractions_high(self, dataset):
        result = get_experiment("table3").run(dataset)
        percentages = [float(row[-1].rstrip("%")) for row in result.rows]
        assert percentages and min(p for p in percentages) >= 75.0

    def test_table4_verification_high(self, dataset):
        result = get_experiment("table4").run(dataset)
        percentages = [float(row[-1].rstrip("%")) for row in result.rows]
        assert percentages
        assert sum(percentages) / len(percentages) > 80.0

    def test_table5_tier1s_have_sa_prefixes(self, dataset):
        result = get_experiment("table5").run(dataset)
        tier1_rows = [row for row in result.rows if row[1] == "yes"]
        assert tier1_rows
        assert any(row[3] > 0 for row in tier1_rows)

    def test_table8_multihomed_majority(self, dataset):
        result = get_experiment("table8").run(dataset)
        total_multi = sum(row[1] for row in result.rows)
        total_single = sum(row[2] for row in result.rows)
        assert total_multi > total_single

    def test_table9_selective_dominates(self, dataset):
        result = get_experiment("table9").run(dataset)
        total_selective = sum(row[4] for row in result.rows)
        total_other = sum(row[2] + row[3] for row in result.rows)
        assert total_selective > total_other

    def test_table10_most_peers_announce(self, dataset):
        result = get_experiment("table10").run(dataset)
        percentages = [float(row[2].rstrip("%")) for row in result.rows]
        assert all(p >= 50.0 for p in percentages)

    def test_fig2_high_consistency(self, dataset):
        result = get_experiment("fig2").run(dataset)
        percentages = [float(row[-1].rstrip("%")) for row in result.rows]
        assert all(p > 70.0 for p in percentages)
        panels = {row[0] for row in result.rows}
        assert panels == {"fig2a", "fig2b"}

    def test_fig6_sa_counts_present_every_snapshot(self, dataset):
        result = get_experiment("fig6").run(dataset)
        sa_counts = [row[3] for row in result.rows]
        totals = [row[2] for row in result.rows]
        assert all(0 <= sa <= total for sa, total in zip(sa_counts, totals))
        assert any(sa > 0 for sa in sa_counts)

    def test_fig7_rows_consistent(self, dataset):
        result = get_experiment("fig7").run(dataset)
        for row in result.rows:
            assert row[2] >= 0 and row[3] >= 0

    def test_fig9_provider_views_show_full_table_gap(self, dataset):
        result = get_experiment("fig9").run(dataset)
        by_view = {}
        for view, has_providers, rank, neighbor, count in result.rows:
            by_view.setdefault((view, has_providers), []).append(count)
        for (view, has_providers), counts in by_view.items():
            assert counts == sorted(counts, reverse=True)
            if has_providers == "yes":
                # The top announcer (a provider) sends far more than the median
                # neighbor — the "big gap" of the Appendix.
                assert counts[0] >= 5 * max(1, counts[len(counts) // 2])

    def test_case3_majority_not_exported(self, dataset):
        result = get_experiment("case3").run(dataset)
        exported = [float(row[3].rstrip("%")) for row in result.rows]
        not_exported = [float(row[4].rstrip("%")) for row in result.rows]
        assert sum(not_exported) > sum(exported)

    def test_ablations_include_three_dimensions(self, dataset):
        result = get_experiment("ablations").run(dataset)
        dimensions = {row[0] for row in result.rows}
        assert dimensions == {"relationships", "visibility", "vantage points"}


class TestCommandLine:
    def test_list_option(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out and "fig6" in out

    def test_run_single_experiment_small(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--small", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Typical local preference" in out
        assert "+-" in out
