"""The visitor-based AST rule engine behind ``python -m repro lint``.

The engine parses each file once into a :class:`ModuleUnderLint` (AST plus
inline suppressions), then runs every registered :class:`Rule` whose scope
matches the file.  Findings on a line carrying a matching hash-prefixed
``repro: noqa[RULE]`` comment are dropped; suppressions that never match
a finding — and suppressions naming unknown rules — are themselves
reported (``LINT001``), so stale escapes cannot accumulate silently.

Rules register themselves with the :func:`register` decorator at import
time; :func:`all_rules` returns one instance per rule, sorted by id.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.devtools.model import Finding

#: Inline suppression comments: a hash, then ``repro: noqa[DET001]`` or
#: ``repro: noqa[DET001,POOL002] -- rationale text``.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]*)\](?:\s*--\s*(?P<reason>.*\S))?"
)

#: Rule id of the engine's own bookkeeping findings (unused/unknown noqa).
SUPPRESSION_RULE = "LINT001"

#: Rule id reported for files the engine cannot parse.
PARSE_RULE = "LINT002"


@dataclass
class Suppression:
    """One inline ``# repro: noqa[...]`` comment.

    Attributes:
        line: 1-based line the comment sits on.
        rules: rule ids the comment names, in source order.
        reason: rationale text after ``--`` (empty when omitted).
        used: rule ids that actually matched a finding on this line.
    """

    line: int
    rules: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


@dataclass
class ModuleUnderLint:
    """One parsed source file, ready for rules to visit.

    Attributes:
        path: repo-relative posix path used in findings and scope matching.
        source: the file's text.
        tree: the parsed :class:`ast.Module`.
        suppressions: inline suppressions, keyed by nothing — scan the list.
    """

    path: str
    source: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleUnderLint":
        """Parse one file into a lintable module.

        Args:
            path: repo-relative posix path (display + scope matching).
            source: the file's text.

        Returns:
            The parsed module with its suppression comments extracted.

        Raises:
            SyntaxError: when the source does not parse.
        """
        tree = ast.parse(source, filename=path)
        suppressions = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA.search(line)
            if match is None:
                continue
            rules = tuple(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            suppressions.append(
                Suppression(line=lineno, rules=rules, reason=match.group("reason") or "")
            )
        return cls(path=path, source=source, tree=tree, suppressions=suppressions)

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering ``rule`` on ``line``, if any."""
        for suppression in self.suppressions:
            if suppression.line == line and rule in suppression.rules:
                return suppression
        return None

    def finding(self, rule: "Rule | str", node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` in this module."""
        rule_id = rule if isinstance(rule, str) else rule.id
        return Finding(
            rule=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class LintContext:
    """Run-wide state shared by every rule invocation.

    Attributes:
        root: the project root (paths in findings are relative to it).
        src_roots: import-resolution roots for cross-module rules (the
            CODEC family resolves ``from repro.x import Y`` against these).
        module_cache: parsed-module cache keyed by absolute path, shared by
            rules that read other files.
    """

    root: Path
    src_roots: tuple[Path, ...] = ()
    module_cache: dict[Path, ast.Module | None] = field(default_factory=dict)

    def parse_module(self, path: Path) -> ast.Module | None:
        """Parse (and cache) another source file, ``None`` when unreadable."""
        resolved = path.resolve()
        if resolved not in self.module_cache:
            try:
                self.module_cache[resolved] = ast.parse(
                    resolved.read_text(), filename=str(resolved)
                )
            except (OSError, SyntaxError, ValueError):
                self.module_cache[resolved] = None
        return self.module_cache[resolved]

    def resolve_import(self, dotted: str) -> Path | None:
        """The source file of a dotted module name under ``src_roots``."""
        relative = Path(*dotted.split("."))
        for src_root in self.src_roots:
            for candidate in (
                src_root / relative.with_suffix(".py"),
                src_root / relative / "__init__.py",
            ):
                if candidate.is_file():
                    return candidate
        return None


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        id: the rule identifier (``"DET001"``, ...).
        family: the rule family (``"DET"``, ``"CODEC"``, ``"POOL"``).
        summary: one-line description shown in ``docs/linting.md`` and
            error listings.
        applies_to: fnmatch globs (posix, repo-relative) the rule is scoped
            to; ``None`` means every file (the rule self-gates on content).
    """

    id: str = ""
    family: str = ""
    summary: str = ""
    applies_to: tuple[str, ...] | None = None

    def applies(self, path: str) -> bool:
        """``True`` when the rule's scope covers ``path``."""
        if self.applies_to is None:
            return True
        return any(fnmatch.fnmatch(path, pattern) for pattern in self.applies_to)

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the global registry.

    Args:
        rule_cls: the rule class; its ``id`` must be unique.

    Returns:
        The class, unchanged (decorator use).

    Raises:
        ValueError: when the id is empty or already registered.
    """
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    return [rule for _, rule in sorted(_REGISTRY.items())]


def get_rule(rule_id: str) -> Rule:
    """The registered rule with the given id.

    Args:
        rule_id: a rule identifier.

    Returns:
        The rule instance.

    Raises:
        KeyError: when no rule has that id.
    """
    return _REGISTRY[rule_id]


def rule_ids() -> list[str]:
    """Every registered rule id plus the engine's own ids, sorted."""
    return sorted([*_REGISTRY, SUPPRESSION_RULE, PARSE_RULE])


def lint_module(
    module: ModuleUnderLint,
    context: LintContext,
    rules: Iterable[Rule] | None = None,
    respect_scopes: bool = True,
) -> list[Finding]:
    """Run rules over one parsed module and apply inline suppressions.

    Args:
        module: the parsed file.
        context: run-wide state (roots, module cache).
        rules: the rules to run (default: every registered rule).
        respect_scopes: honour each rule's ``applies_to`` scope (tests
            lint fixtures outside the real scopes with ``False``).

    Returns:
        Unsuppressed findings, plus one :data:`SUPPRESSION_RULE` finding per
        unused or unknown suppression, sorted by ``(line, rule)``.
    """
    selected = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    ran_ids = set()
    for rule in selected:
        if respect_scopes and not rule.applies(module.path):
            continue
        ran_ids.add(rule.id)
        for finding in rule.check(module, context):
            suppression = module.suppression_for(finding.rule, finding.line)
            if suppression is not None:
                suppression.used.add(finding.rule)
            else:
                findings.append(finding)
    known = set(rule_ids())
    for suppression in module.suppressions:
        for rule_id in suppression.rules:
            if rule_id not in known:
                findings.append(
                    _suppression_finding(
                        module, suppression, f"suppression names unknown rule {rule_id!r}"
                    )
                )
            elif rule_id in ran_ids and rule_id not in suppression.used:
                findings.append(
                    _suppression_finding(
                        module,
                        suppression,
                        f"suppression of {rule_id} matches no finding; remove it",
                    )
                )
    findings.sort(key=lambda finding: (finding.line, finding.rule, finding.column))
    return findings


def _suppression_finding(
    module: ModuleUnderLint, suppression: Suppression, message: str
) -> Finding:
    """A :data:`SUPPRESSION_RULE` finding at the suppression's line."""
    return Finding(
        rule=SUPPRESSION_RULE,
        path=module.path,
        line=suppression.line,
        column=0,
        message=message,
    )


# -- shared AST helpers used by several rule families --------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def walk_scopes(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope node, body)`` for the module and every function.

    Class bodies are not scopes of their own — their statements belong to
    the enclosing scope for the flow-insensitive name tracking the rules
    do — but functions nested at any depth each get their own entry.
    """
    yield tree, list(tree.body)
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, list(child.body)
            stack.append(child)


def scope_statements(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested functions.

    Function definitions themselves are yielded (a scope may need their
    names) but their bodies belong to the nested scope, never this one.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iteration_sites(
    scope_body: list[ast.stmt],
) -> Iterator[tuple[ast.expr, str]]:
    """Yield ``(iterated expression, context label)`` pairs in one scope.

    Covers ``for`` loops, comprehension generators, ordered-materialising
    calls (``tuple``/``list``/``enumerate``/``iter``/``map``/``filter``/
    ``zip`` and ``<sep>.join``) and ``*``-unpacking into ordered displays.
    Order-insensitive consumers (``sorted``, ``len``, ``sum``, ``min``,
    ``max``, ``any``, ``all``, ``set``, ``frozenset``) are deliberately
    not iteration sites.
    """
    for node in scope_statements(scope_body):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "for loop"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            # Set comprehensions are order-insensitive (the result is a set
            # again); list/dict/generator results all preserve iteration order.
            if not isinstance(node, ast.SetComp):
                for generator in node.generators:
                    yield generator.iter, "comprehension"
        elif isinstance(node, ast.Call):
            yield from _call_iteration_sites(node)
        elif isinstance(node, (ast.List, ast.Tuple)):
            for element in node.elts:
                if isinstance(element, ast.Starred):
                    yield element.value, "unpacking"


#: Ordered-materialising builtins and the argument positions they iterate.
_ORDERED_CALLS: dict[str, Callable[[list[ast.expr]], list[ast.expr]]] = {
    "tuple": lambda args: args[:1],
    "list": lambda args: args[:1],
    "iter": lambda args: args[:1],
    "enumerate": lambda args: args[:1],
    "map": lambda args: args[1:],
    "filter": lambda args: args[1:2],
    "zip": lambda args: args,
}


def _call_iteration_sites(node: ast.Call) -> Iterator[tuple[ast.expr, str]]:
    """Iteration sites introduced by one call expression."""
    if isinstance(node.func, ast.Name):
        selector = _ORDERED_CALLS.get(node.func.id)
        if selector is not None:
            for argument in selector(node.args):
                yield argument, f"{node.func.id}() argument"
    elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
        for argument in node.args[:1]:
            yield argument, "join() argument"
