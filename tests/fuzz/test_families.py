"""Tests for the scenario-family registry and the built-in samplers."""

import pytest
from hypothesis import given, settings
from strategies import seeds

from repro.exceptions import ExperimentError
from repro.session import StudyConfig, fingerprint
from repro.session.scenarios import (
    _FAMILIES,
    all_families,
    family_names,
    get_family,
    register_family,
    resolve_scenario,
)

BUILTIN_FAMILIES = {
    "peering-density",
    "multihoming",
    "hierarchy-depth",
    "community-adoption",
    "collector-size",
}


class TestRegistry:
    def test_builtin_families_registered(self):
        assert BUILTIN_FAMILIES <= set(family_names())

    def test_all_families_sorted_and_documented(self):
        families = all_families()
        assert [f.name for f in families] == sorted(f.name for f in families)
        assert all(f.description and f.parameter for f in families)

    def test_get_family_unknown_name(self):
        with pytest.raises(ExperimentError, match="unknown scenario family"):
            get_family("does-not-exist")

    def test_register_rejects_duplicate_family(self):
        with pytest.raises(ExperimentError, match="duplicate scenario family"):
            register_family(
                "multihoming", "again", "m", lambda seed: StudyConfig()
            )

    def test_register_rejects_preset_collision(self):
        with pytest.raises(ExperimentError, match="collides with a scenario preset"):
            register_family(
                "standard", "shadowing a preset", "-", lambda seed: StudyConfig()
            )

    def test_register_new_family(self):
        _FAMILIES.pop("tiny-family-test", None)
        family = register_family(
            "tiny-family-test", "registered on the fly", "-", lambda seed: StudyConfig()
        )
        try:
            assert get_family("tiny-family-test") is family
            assert family.sample(1) == StudyConfig()
        finally:
            _FAMILIES.pop("tiny-family-test", None)


class TestSamplers:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds())
    def test_sampling_is_deterministic(self, seed):
        for family in all_families():
            first = family.sample(seed)
            second = family.sample(seed)
            assert first == second
            assert fingerprint(first) == fingerprint(second)

    def test_samples_vary_with_the_seed(self):
        for family in all_families():
            configs = {family.sample(seed) for seed in range(1, 6)}
            assert len(configs) > 1, f"{family.name} ignores its seed"

    def test_samples_validate(self):
        for family in all_families():
            for seed in range(1, 4):
                family.sample(seed).validate()  # raises on an invalid draw

    def test_hierarchy_depth_reaches_two_tier_samples(self):
        family = get_family("hierarchy-depth")
        depths = {family.sample(seed).topology.tier3_count == 0 for seed in range(1, 20)}
        assert depths == {True, False}, "both depths should appear within 19 seeds"

    def test_collector_size_sweeps_the_vantage_count(self):
        family = get_family("collector-size")
        counts = {
            family.sample(seed).observation.collector_vantage_count
            for seed in range(1, 20)
        }
        assert len(counts) >= 5


class TestResolveScenario:
    def test_resolves_presets(self):
        assert resolve_scenario("small").name == "small"

    def test_resolves_family_samples(self):
        scenario = resolve_scenario("multihoming@7")
        assert scenario.name == "multihoming@7"
        assert scenario.config() == get_family("multihoming").sample(7)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ExperimentError, match="integer seed"):
            resolve_scenario("multihoming@seven")

    def test_rejects_unknown_family(self):
        with pytest.raises(ExperimentError, match="unknown scenario family"):
            resolve_scenario("nope@3")

    def test_bare_family_name_suggests_a_seed(self):
        with pytest.raises(ExperimentError, match="sample it with an explicit seed"):
            resolve_scenario("multihoming")

    def test_presets_cannot_shadow_families(self):
        from repro.session.scenarios import register_scenario

        with pytest.raises(ExperimentError, match="collides with a scenario family"):
            register_scenario("multihoming", "shadowing a family", StudyConfig)
