"""Per-stage codec round-trips: disk-loaded artifacts equal fresh ones."""

from repro.session.cache import StageCache
from repro.session.stages import Stage
from repro.session.study import Study
from repro.session.suite import run_suite
from repro.storage.codecs import codec_for
from repro.storage.store import DiskStore


def rib_rows(table):
    """A Loc-RIB as comparable rows: (prefix, candidate routes, best index)."""
    return [
        (
            entry.prefix,
            entry.routes,
            None if entry.best is None else entry.routes.index(entry.best),
        )
        for entry in table.entries()
    ]


def _warm_study(tiny_study, tmp_path) -> Study:
    """A second study over the same config whose cache hits only the disk."""
    disk = DiskStore(tmp_path)
    cold = Study(tiny_study.config, cache=StageCache(disk=disk))
    cold.dataset()
    cold.analysis()
    warm = Study(tiny_study.config, cache=StageCache(disk=disk))
    return warm


class TestStageRoundTrips:
    def test_every_persistable_stage_has_a_codec(self):
        for stage in Stage:
            assert codec_for(stage.value) is not None
        assert codec_for("dataset") is None

    def test_topology(self, tiny_study, tmp_path):
        warm = _warm_study(tiny_study, tmp_path)
        fresh = tiny_study.topology()
        loaded = warm.topology()
        assert warm.cache.stats_for("topology").disk_hits == 1
        assert loaded.graph.adjacency_rows() == fresh.graph.adjacency_rows()
        assert loaded.tiers.tiers == fresh.tiers.tiers
        assert loaded.tiers.tier1 == fresh.tiers.tier1
        assert loaded.originated == fresh.originated
        assert loaded.split_pairs == fresh.split_pairs
        assert loaded.provider_assigned == fresh.provider_assigned
        assert loaded.allocator.blocks == fresh.allocator.blocks
        assert loaded.allocator.dump_state() == fresh.allocator.dump_state()
        assert loaded.parameters is warm.config.topology

    def test_policies(self, tiny_study, tmp_path):
        warm = _warm_study(tiny_study, tmp_path)
        fresh = tiny_study.policies()
        loaded = warm.policies()
        assert warm.cache.stats_for("policies").disk_hits == 1
        assert loaded.vantage_ases == fresh.vantage_ases
        assert loaded.looking_glass_ases == fresh.looking_glass_ases
        assert loaded.assignment.policies == fresh.assignment.policies
        assert loaded.assignment.selective_origins == fresh.assignment.selective_origins
        assert loaded.assignment.scoped_origins == fresh.assignment.scoped_origins
        assert loaded.assignment.selective_transits == fresh.assignment.selective_transits
        assert loaded.assignment.atypical_ases == fresh.assignment.atypical_ases
        assert loaded.assignment.tagging_ases == fresh.assignment.tagging_ases

    def test_propagation(self, tiny_study, tmp_path):
        warm = _warm_study(tiny_study, tmp_path)
        fresh = tiny_study.propagation()
        loaded = warm.propagation()
        assert warm.cache.stats_for("propagation").disk_hits == 1
        assert loaded.message_count == fresh.message_count
        assert loaded.truncated_prefixes == fresh.truncated_prefixes
        assert loaded.observed_ases == fresh.observed_ases
        for asn in fresh.observed_ases:
            assert rib_rows(loaded.table_of(asn)) == rib_rows(fresh.table_of(asn))
        # The decoded result shares the upstream artifacts, not copies.
        assert loaded.internet is warm.topology()
        assert loaded.assignment is warm.policies().assignment

    def test_propagation_best_route_identity(self, tiny_study, tmp_path):
        warm = _warm_study(tiny_study, tmp_path)
        loaded = warm.propagation()
        for asn in loaded.observed_ases:
            for entry in loaded.table_of(asn).entries():
                if entry.best is not None:
                    assert any(route is entry.best for route in entry.routes)
                    assert entry.best not in entry.alternatives()

    def test_observation(self, tiny_study, tmp_path):
        warm = _warm_study(tiny_study, tmp_path)
        fresh = tiny_study.observation()
        loaded = warm.observation()
        assert warm.cache.stats_for("observation").disk_hits == 1
        assert loaded.collector.entries == fresh.collector.entries
        assert set(loaded.looking_glasses) == set(fresh.looking_glasses)
        assert loaded.as_info == fresh.as_info
        # Glasses wrap the propagation artifact's tables (object sharing).
        result = warm.propagation()
        for asn, glass in loaded.looking_glasses.items():
            assert glass.table is result.table_of(asn)

    def test_irr(self, tiny_study, tmp_path):
        warm = _warm_study(tiny_study, tmp_path)
        assert warm.irr().render() == tiny_study.irr().render()
        assert warm.cache.stats_for("irr").disk_hits == 1

    def test_analysis(self, tiny_study, tmp_path):
        warm = _warm_study(tiny_study, tmp_path)
        fresh = tiny_study.analysis()
        loaded = warm.analysis()
        assert warm.cache.stats_for("analysis").disk_hits == 1
        assert loaded.index.stats() == fresh.index.stats()
        assert loaded.index.prefixes == fresh.index.prefixes
        assert loaded.index.paths == fresh.index.paths
        assert loaded.index.collapsed == fresh.index.collapsed
        assert loaded.index.adjacency == fresh.index.adjacency
        assert loaded.index.rows_by_prefix == fresh.index.rows_by_prefix
        # The decoded engine is adopted as the dataset's memoised engine.
        assert warm.dataset().analysis_engine() is loaded


class TestResultEquality:
    def test_suite_json_identical_fresh_cold_warm(self, tiny_study, tmp_path):
        disk = DiskStore(tmp_path)
        fresh = run_suite(tiny_study, scenario="tiny").to_json(include_timing=False)
        cold = run_suite(
            Study(tiny_study.config, cache=StageCache(disk=disk)), scenario="tiny"
        ).to_json(include_timing=False)
        warm_study = Study(tiny_study.config, cache=StageCache(disk=disk))
        warm = run_suite(warm_study, scenario="tiny").to_json(include_timing=False)
        assert fresh == cold == warm
        for stage in Stage:
            assert warm_study.cache.stats_for(stage.value).misses == 0, stage

    def test_corrupt_artifact_falls_back_to_build(self, tiny_study, tmp_path):
        disk = DiskStore(tmp_path)
        cold = Study(tiny_study.config, cache=StageCache(disk=disk))
        cold.propagation()
        key = cold.stage_key(Stage.PROPAGATION)
        path = disk.path_for("propagation", key)
        path.write_bytes(path.read_bytes()[:100])  # truncate: header survives?
        warm = Study(tiny_study.config, cache=StageCache(disk=disk))
        loaded = warm.propagation()
        stats = warm.cache.stats_for("propagation")
        assert stats.misses == 1  # rebuilt, not decoded
        assert loaded.message_count == tiny_study.propagation().message_count
