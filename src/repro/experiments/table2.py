"""Table 2 — typical LOCAL_PREF assignment from Looking Glass tables."""

from __future__ import annotations

from repro.session.stages import Stage, StageView
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.reporting.tables import format_percent


@register
class Table2Experiment(Experiment):
    """Percentage of prefixes with typical LOCAL_PREF per Looking Glass AS."""

    experiment_id = "table2"
    title = "Typical local preference assignment (from BGP tables)"
    paper_reference = "Table 2, Section 4.1"
    requires = frozenset({Stage.ANALYSIS})

    def run(self, dataset: StageView) -> ExperimentResult:
        result = self._result()
        rows = dataset.analysis.import_typicality()
        result.headers = ["AS", "comparable prefixes", "% typical local preference"]
        for row in sorted(rows, key=lambda r: r.asn):
            result.rows.append(
                [f"AS{row.asn}", row.comparable_prefixes, format_percent(row.percent_typical, 2)]
            )
        overall_total = sum(r.comparable_prefixes for r in rows)
        overall_typical = sum(r.typical_prefixes for r in rows)
        if overall_total:
            result.notes.append(
                "overall typical fraction: "
                + format_percent(100.0 * overall_typical / overall_total, 2)
            )
        result.notes.append(
            "Paper Table 2: 94.3%-100% typical across the 15 Looking Glass ASes."
        )
        return result
