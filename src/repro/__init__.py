"""repro — reproduction of Wang & Gao, "On Inferring and Characterizing
Internet Routing Policies" (IMC 2003).

The front door is the **session API**: a staged, cacheable
:class:`~repro.session.study.Study` (``topology -> policies -> propagation
-> observation -> irr -> analysis``) with named scenario presets and a
parallel experiment runner::

    from repro.session import get_scenario, run_suite

    study = get_scenario("small").study()
    report = run_suite(study, ["table5", "table9"], workers=2)
    print(report.render())

``study.with_(policy=...)`` derives a variant that reuses every cached
upstream stage — a sensitivity sweep pays topology generation once.  The
same pipeline powers the CLI: ``python -m repro run --scenario small``.

The package is organised bottom-up:

* :mod:`repro.net` — prefixes, AS paths, radix trie, address allocation.
* :mod:`repro.bgp` — route attributes, RIBs, the decision process, the
  route-map/prefix-list policy engine and Cisco-style configuration.
* :mod:`repro.topology` — the annotated AS graph and the synthetic Internet
  generator.
* :mod:`repro.relationships` — AS-relationship inference baselines (Gao
  ToN'01 and a rank-based variant).
* :mod:`repro.simulation` — policy-aware BGP route propagation, collectors
  (RouteViews-style and Looking Glass), and multi-snapshot timelines.
* :mod:`repro.data` — on-disk formats (MRT-style dumps, ``show ip bgp`` text,
  RPSL/IRR) and the flat :class:`~repro.data.dataset.StudyDataset` view.
* :mod:`repro.session` — the staged Study pipeline, the two-tier
  content-addressed stage cache, scenario presets, the ``run_suite`` runner
  and the resumable ``run_sweep`` orchestrator.
* :mod:`repro.storage` — the durable artifact store: deterministic binary
  packing, per-stage codecs and the content-addressed disk tier shared
  across processes.
* :mod:`repro.analysis` — the compiled columnar measurement index and the
  one-pass analyzer engine the experiments query (the cached ``analysis``
  stage).
* :mod:`repro.core` — the paper's contribution: import-policy inference,
  SA-prefix (export-policy) inference, verification, cause attribution,
  persistence, peer-export and community-based relationship verification.
* :mod:`repro.experiments` — one module per table/figure of the paper, each
  declaring the pipeline stages it requires.
* :mod:`repro.reporting` — ASCII tables and series used by the experiments.
"""

__version__ = "2.0.0"

from repro.exceptions import (
    ASPathError,
    ConfigError,
    DataFormatError,
    ExperimentError,
    InferenceError,
    PolicyError,
    PrefixError,
    ReproError,
    SimulationError,
    StorageError,
    TopologyError,
)

__all__ = [
    "ASPathError",
    "ConfigError",
    "DataFormatError",
    "ExperimentError",
    "InferenceError",
    "PolicyError",
    "PrefixError",
    "ReproError",
    "SimulationError",
    "StorageError",
    "TopologyError",
    "__version__",
]
