"""Seed-determinism regression: the same (family, seed) in two fresh processes.

The content-addressed stage cache keys on ``repr`` fingerprints of the
sampled :class:`~repro.session.stages.StudyConfig`; a family sampler that
leaked any per-process state (``PYTHONHASHSEED``-dependent iteration,
unseeded randomness, wall-clock) would silently poison those keys and make
"reproduce from (family, seed)" a lie.  Two *fresh interpreter* runs must
therefore print byte-identical config fingerprints and byte-identical
suite JSON.
"""

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Prints one config fingerprint line per built-in family, then the full
#: (timing-masked) SuiteReport JSON of two experiments on one small sample.
_SCRIPT = """
from repro.session.cache import StageCache, fingerprint
from repro.session.scenarios import family_names, get_family
from repro.session.study import Study
from repro.session.suite import run_suite

for name in family_names():
    print(name, fingerprint(get_family(name).sample(11)))

study = Study(get_family("collector-size").sample(11), cache=StageCache())
report = run_suite(study, ["table5", "table10"], scenario="collector-size@11")
print(report.to_json(include_timing=False))
"""


def _fresh_process_output() -> str:
    result = subprocess.run(
        [sys.executable, "-X", "utf8", "-c", _SCRIPT],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            # Different hash seeds per process: determinism must not depend
            # on dict/set iteration order of hash-randomised types.
            "PYTHONHASHSEED": "random",
        },
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.fixture(scope="module")
def two_runs():
    return _fresh_process_output(), _fresh_process_output()


def test_config_fingerprints_are_process_independent(two_runs):
    first, second = two_runs
    first_prints = first.splitlines()[:5]
    second_prints = second.splitlines()[:5]
    assert first_prints == second_prints
    assert len(first_prints) == 5  # one line per built-in family


def test_suite_report_json_is_byte_identical(two_runs):
    first, second = two_runs
    assert first == second
