"""Hand-built scenarios reproducing the paper's illustrative figures.

These small, fully deterministic set-ups are used by the unit tests, the
documentation and ``examples/quickstart.py`` to demonstrate each mechanism in
isolation:

* :func:`figure1_scenario` — the annotated AS graph of Fig. 1.
* :func:`figure3_scenario` — Fig. 3: customer A announces prefix ``p`` to
  provider C but not to provider B, so B's provider D sees ``p`` via its peer
  E (an SA prefix at D).
* :func:`figure5_scenario` — Fig. 5: AS6280's prefix reaches AS1 via its
  peer AS3549 instead of via its customer AS852.
* :func:`figure8_multihomed_scenario` / :func:`figure8_singlehomed_scenario`
  — Fig. 8: the two connectivity patterns behind SA prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.asn import ASN
from repro.net.prefix import Prefix
from repro.simulation.policies import ASPolicy, PolicyAssignment
from repro.simulation.propagation import PropagationEngine, SimulationResult
from repro.topology.generator import GeneratorParameters, SyntheticInternet
from repro.topology.graph import AnnotatedASGraph
from repro.topology.hierarchy import classify_tiers
from repro.net.allocator import AddressAllocator


@dataclass
class Scenario:
    """A small, deterministic simulation set-up.

    Attributes:
        name: short identifier ("figure3", ...).
        internet: the synthetic Internet (usually a handful of ASes).
        assignment: the policy assignment (selective announcements included).
        observed_ases: the ASes whose tables the scenario is about.
        focus_prefix: the prefix whose treatment the figure illustrates, if any.
        focus_provider: the provider at which the effect is observed, if any.
    """

    name: str
    internet: SyntheticInternet
    assignment: PolicyAssignment
    observed_ases: list[ASN]
    focus_prefix: Prefix | None = None
    focus_provider: ASN | None = None

    def run(self) -> SimulationResult:
        """Propagate the scenario and return the observed tables."""
        engine = PropagationEngine(
            self.internet, self.assignment, observed_ases=self.observed_ases
        )
        return engine.run()


def _internet_from_graph(
    graph: AnnotatedASGraph, originated: dict[ASN, list[Prefix]]
) -> SyntheticInternet:
    """Wrap a hand-built graph and prefix ownership into a SyntheticInternet."""
    parameters = GeneratorParameters()
    return SyntheticInternet(
        parameters=parameters,
        graph=graph,
        tiers=classify_tiers(graph),
        allocator=AddressAllocator(),
        originated=originated,
    )


def figure1_scenario() -> Scenario:
    """The annotated AS graph of Fig. 1 with every AS originating one prefix."""
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[(1, 2), (1, 3), (2, 4), (2, 5), (4, 6)],
        peer_peer=[(3, 4)],
    )
    originated = {
        asn: [Prefix.parse(f"10.{asn}.0.0/16")] for asn in graph.ases()
    }
    internet = _internet_from_graph(graph, originated)
    assignment = PolicyAssignment()
    for asn in graph.ases():
        assignment.policies[asn] = ASPolicy(asn=asn)
    return Scenario(
        name="figure1",
        internet=internet,
        assignment=assignment,
        observed_ases=sorted(graph.ases()),
    )


def figure3_scenario() -> Scenario:
    """Fig. 3: selective announcement observed at provider D.

    Topology (AS numbers in parentheses):  customer A (100) is multihomed to
    providers B (20) and C (30).  D (10) is B's provider and peers with
    E (11), which is C's provider.  A announces prefix ``p`` to C only, so D
    receives ``p`` from its peer E even though A is in D's customer cone.
    """
    provider_d, peer_e = 10, 11
    provider_b, provider_c = 20, 30
    customer_a = 100
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[
            (provider_d, provider_b),
            (peer_e, provider_c),
            (provider_b, customer_a),
            (provider_c, customer_a),
        ],
        peer_peer=[(provider_d, peer_e)],
    )
    prefix = Prefix.parse("10.100.0.0/16")
    originated = {customer_a: [prefix]}
    internet = _internet_from_graph(graph, originated)
    assignment = PolicyAssignment()
    for asn in graph.ases():
        assignment.policies[asn] = ASPolicy(asn=asn)
    policy_a = assignment.policy_for(customer_a)
    policy_a.announce_to_providers[prefix] = frozenset({provider_c})
    assignment.selective_origins[customer_a] = {prefix}
    return Scenario(
        name="figure3",
        internet=internet,
        assignment=assignment,
        observed_ases=[provider_d, peer_e, provider_b, provider_c],
        focus_prefix=prefix,
        focus_provider=provider_d,
    )


def figure5_scenario() -> Scenario:
    """Fig. 5: AS1 receives AS6280's prefix from its peer AS3549.

    AS852 is AS1's customer and AS6280's provider; AS13768 is AS3549's
    customer and AS6280's other provider.  AS6280 announces ``p`` only via
    AS13768, so AS1 sees ``p`` over the AS1–AS3549 peer link.
    """
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[
            (1, 852),
            (3549, 13768),
            (852, 6280),
            (13768, 6280),
        ],
        peer_peer=[(1, 3549)],
    )
    prefix = Prefix.parse("10.62.80.0/24")
    originated = {6280: [prefix]}
    internet = _internet_from_graph(graph, originated)
    assignment = PolicyAssignment()
    for asn in graph.ases():
        assignment.policies[asn] = ASPolicy(asn=asn)
    policy = assignment.policy_for(6280)
    policy.announce_to_providers[prefix] = frozenset({13768})
    assignment.selective_origins[6280] = {prefix}
    return Scenario(
        name="figure5",
        internet=internet,
        assignment=assignment,
        observed_ases=[1, 3549, 852, 13768],
        focus_prefix=prefix,
        focus_provider=1,
    )


def figure8_multihomed_scenario() -> Scenario:
    """Fig. 8(a): multihomed customer, disjoint best path and customer path.

    Customer v (5) is multihomed to u3 (3) and u1 (1).  Provider u0 (0) has
    customer u3 and peers with u2 (2), which is u1's provider.  v announces
    its prefix only to u1, so u0's best path (u0 u2 u1 v) and the customer
    path (u0 u3 v) are disjoint.
    """
    u0, u1, u2, u3, v = 10, 1, 2, 3, 5
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[(u0, u3), (u2, u1), (u3, v), (u1, v)],
        peer_peer=[(u0, u2)],
    )
    prefix = Prefix.parse("10.5.0.0/16")
    originated = {v: [prefix]}
    internet = _internet_from_graph(graph, originated)
    assignment = PolicyAssignment()
    for asn in graph.ases():
        assignment.policies[asn] = ASPolicy(asn=asn)
    policy = assignment.policy_for(v)
    policy.announce_to_providers[prefix] = frozenset({u1})
    assignment.selective_origins[v] = {prefix}
    return Scenario(
        name="figure8a",
        internet=internet,
        assignment=assignment,
        observed_ases=[u0, u1, u2, u3],
        focus_prefix=prefix,
        focus_provider=u0,
    )


def figure8_singlehomed_scenario() -> Scenario:
    """Fig. 8(b): single-homed customer, curving path caused upstream.

    Customer v (5) is single-homed to u1 (1).  u1 is itself multihomed to
    providers u3 (3) and u2 (2).  u0 (10) is u3's provider and peers with u2.
    u1 exports v's prefix (and its own) to u2 but not to u3, so u0 reaches v
    via the peer path u0–u2–u1–v even though the customer path u0–u3–u1–v
    exists.
    """
    u0, u1, u2, u3, v = 10, 1, 2, 3, 5
    graph = AnnotatedASGraph.from_edges(
        provider_customer=[(u0, u3), (u3, u1), (u2, u1), (u1, v)],
        peer_peer=[(u0, u2)],
    )
    prefix = Prefix.parse("10.5.0.0/16")
    originated = {v: [prefix]}
    internet = _internet_from_graph(graph, originated)
    assignment = PolicyAssignment()
    for asn in graph.ases():
        assignment.policies[asn] = ASPolicy(asn=asn)
    # The intermediate AS u1 (the "last common AS") restricts its exports of
    # customer routes to provider u2 only.
    policy_u1 = assignment.policy_for(u1)
    policy_u1.export_customer_prefixes_to = frozenset({u2})
    # u1 also originates its own prefix and announces it only to u2.
    own_prefix = Prefix.parse("10.1.0.0/16")
    internet.originated[u1] = [own_prefix]
    policy_u1.announce_to_providers[own_prefix] = frozenset({u2})
    assignment.selective_origins[u1] = {own_prefix}
    assignment.selective_transits.add(u1)
    return Scenario(
        name="figure8b",
        internet=internet,
        assignment=assignment,
        observed_ases=[u0, u1, u2, u3],
        focus_prefix=prefix,
        focus_provider=u0,
    )
