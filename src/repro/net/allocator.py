"""Address-space allocation for the synthetic Internet.

The topology generator needs to hand out prefixes to ASes the way the real
Internet did circa 2002:

* large providers receive big blocks directly ("provider-independent" space),
* some customers receive sub-allocations carved out of their provider's block
  ("provider-assigned" space) — exactly the situation that makes *prefix
  aggregating* possible (paper Section 5.1.5, Case 2), and
* some ASes split one of their prefixes into more-specifics for traffic
  engineering — the *prefix splitting* case (Case 1).

:class:`AddressAllocator` tracks which AS owns which block and who carved a
block out of whose space, so the causes analysis can be validated against
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import PrefixError
from repro.net.asn import ASN
from repro.net.prefix import Prefix


@dataclass(frozen=True)
class AddressBlock:
    """One allocated block of address space.

    Attributes:
        prefix: the allocated prefix.
        owner: AS number the block was allocated to.
        parent_owner: AS number of the provider the block was carved out of,
            or ``None`` for a direct (provider-independent) allocation.
    """

    prefix: Prefix
    owner: ASN
    parent_owner: ASN | None = None

    @property
    def is_provider_assigned(self) -> bool:
        """``True`` when the block was sub-allocated out of a provider's space."""
        return self.parent_owner is not None


@dataclass
class AddressAllocator:
    """Sequentially allocates non-overlapping blocks from a private pool.

    The pool starts at ``base`` (default ``10.0.0.0``) and walks upward in
    units of the requested block size.  Sub-allocations are carved from the
    *unused tail* of a previously allocated block.

    Attributes:
        base: first address of the pool (dotted quad).
        blocks: every block handed out so far, in allocation order.
    """

    base: str = "10.0.0.0"
    blocks: list[AddressBlock] = field(default_factory=list)
    _cursor: int = field(default=0, init=False)
    _sub_cursors: dict[Prefix, int] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        from repro.net.prefix import parse_ipv4

        self._cursor = parse_ipv4(self.base)

    # -- direct allocations ------------------------------------------------

    def allocate(self, owner: ASN, length: int) -> AddressBlock:
        """Allocate the next free block of the given prefix length to ``owner``."""
        if not (8 <= length <= 30):
            raise PrefixError(f"unsupported allocation length: /{length}")
        size = 1 << (32 - length)
        # Align the cursor to the block size so the prefix is canonical.
        if self._cursor % size:
            self._cursor += size - (self._cursor % size)
        prefix = Prefix(self._cursor, length)
        self._cursor += size
        block = AddressBlock(prefix=prefix, owner=owner)
        self.blocks.append(block)
        return block

    def allocate_many(self, owner: ASN, length: int, count: int) -> list[AddressBlock]:
        """Allocate ``count`` blocks of the same length to ``owner``."""
        return [self.allocate(owner, length) for _ in range(count)]

    # -- provider-assigned sub-allocations --------------------------------------

    def suballocate(
        self, parent: AddressBlock, owner: ASN, length: int
    ) -> AddressBlock:
        """Carve a more-specific block for ``owner`` out of ``parent``.

        Sub-allocations from the same parent never overlap; they are carved
        sequentially from the start of the parent block.

        Raises:
            PrefixError: if the requested length does not fit inside the
                parent or the parent block is exhausted.
        """
        if length <= parent.prefix.length:
            raise PrefixError(
                f"sub-allocation /{length} is not more specific than parent "
                f"{parent.prefix}"
            )
        size = 1 << (32 - length)
        cursor = self._sub_cursors.get(parent.prefix, parent.prefix.network)
        if cursor + size - 1 > parent.prefix.broadcast:
            raise PrefixError(f"parent block {parent.prefix} is exhausted")
        prefix = Prefix(cursor, length)
        self._sub_cursors[parent.prefix] = cursor + size
        block = AddressBlock(prefix=prefix, owner=owner, parent_owner=parent.owner)
        self.blocks.append(block)
        return block

    # -- state snapshots (used by the storage codecs) -----------------------

    def dump_state(self) -> tuple:
        """Snapshot the allocator's complete state as plain values.

        Returns ``(base, cursor, blocks, sub_cursors)`` where blocks are
        ``(prefix, owner, parent_owner)`` triples in allocation order and
        sub-cursors are ``(parent prefix, next address)`` pairs in map
        order.  :meth:`from_state` restores an allocator that will hand
        out exactly the same future allocations.
        """
        return (
            self.base,
            self._cursor,
            [(block.prefix, block.owner, block.parent_owner) for block in self.blocks],
            list(self._sub_cursors.items()),
        )

    @classmethod
    def from_state(cls, state: tuple) -> "AddressAllocator":
        """Rebuild an allocator from a :meth:`dump_state` snapshot."""
        base, cursor, blocks, sub_cursors = state
        allocator = cls(base=base)
        allocator._cursor = cursor
        allocator.blocks = [
            AddressBlock(prefix=prefix, owner=owner, parent_owner=parent_owner)
            for prefix, owner, parent_owner in blocks
        ]
        allocator._sub_cursors = dict(sub_cursors)
        return allocator

    # -- queries -------------------------------------------------------------

    def blocks_of(self, owner: ASN) -> list[AddressBlock]:
        """Return every block allocated to ``owner`` (direct and provider-assigned)."""
        return [block for block in self.blocks if block.owner == owner]

    def prefixes_of(self, owner: ASN) -> list[Prefix]:
        """Return the prefixes of every block allocated to ``owner``."""
        return [block.prefix for block in self.blocks_of(owner)]

    def owner_of(self, prefix: Prefix) -> ASN | None:
        """Return the AS that owns the most specific allocated block covering ``prefix``."""
        best: AddressBlock | None = None
        for block in self.blocks:
            if block.prefix.contains(prefix):
                if best is None or block.prefix.length > best.prefix.length:
                    best = block
        return best.owner if best else None

    def provider_assigned_blocks(self) -> Iterator[AddressBlock]:
        """Yield every block that was sub-allocated from a provider's space."""
        for block in self.blocks:
            if block.is_provider_assigned:
                yield block

    def __len__(self) -> int:
        return len(self.blocks)
