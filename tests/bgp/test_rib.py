"""Unit tests for repro.bgp.rib."""

from repro.bgp.rib import AdjRibIn, LocRib
from repro.bgp.route import NeighborKind, Route
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def route(prefix, path, **kwargs):
    return Route(prefix=Prefix.parse(prefix), as_path=ASPath.parse(path), **kwargs)


class TestAdjRibIn:
    def test_add_get_withdraw(self):
        rib = AdjRibIn(neighbor=1239, kind=NeighborKind.PEER)
        announced = route("10.0.0.0/16", "1239 6280")
        rib.add(announced)
        assert rib.get(Prefix.parse("10.0.0.0/16")) is announced
        assert Prefix.parse("10.0.0.0/16") in rib
        assert len(rib) == 1
        rib.withdraw(Prefix.parse("10.0.0.0/16"))
        assert rib.get(Prefix.parse("10.0.0.0/16")) is None
        assert len(rib) == 0

    def test_replace_same_prefix(self):
        rib = AdjRibIn(neighbor=1239)
        rib.add(route("10.0.0.0/16", "1239 6280"))
        rib.add(route("10.0.0.0/16", "1239 701 6280"))
        assert len(rib) == 1
        assert len(rib.get(Prefix.parse("10.0.0.0/16")).as_path) == 3

    def test_routes_iteration(self):
        rib = AdjRibIn(neighbor=1239)
        rib.add(route("10.0.0.0/16", "1239 6280"))
        rib.add(route("10.1.0.0/16", "1239 852"))
        assert len(list(rib.routes())) == 2


class TestLocRib:
    def test_best_route_selection(self):
        rib = LocRib(owner=1)
        customer = route("10.0.0.0/16", "852 6280", local_pref=110,
                         neighbor_kind=NeighborKind.CUSTOMER)
        peer = route("10.0.0.0/16", "3549 6280", local_pref=90,
                     neighbor_kind=NeighborKind.PEER)
        rib.add_routes([peer, customer])
        assert rib.best_route(Prefix.parse("10.0.0.0/16")) is customer
        assert len(rib.all_routes(Prefix.parse("10.0.0.0/16"))) == 2

    def test_entry_alternatives(self):
        rib = LocRib(owner=1)
        a = route("10.0.0.0/16", "2 9", local_pref=110)
        b = route("10.0.0.0/16", "3 9", local_pref=80)
        rib.add_routes([a, b])
        entry = rib.entry(Prefix.parse("10.0.0.0/16"))
        assert entry.best is a
        assert entry.alternatives() == [b]

    def test_same_neighbor_replaces_previous_announcement(self):
        rib = LocRib(owner=1)
        rib.add_route(route("10.0.0.0/16", "2 9"))
        rib.add_route(route("10.0.0.0/16", "2 7 9"))
        assert len(rib.all_routes(Prefix.parse("10.0.0.0/16"))) == 1

    def test_withdraw_reselects(self):
        rib = LocRib(owner=1)
        best = route("10.0.0.0/16", "2 9", local_pref=120)
        backup = route("10.0.0.0/16", "3 9", local_pref=90)
        rib.add_routes([best, backup])
        rib.withdraw(Prefix.parse("10.0.0.0/16"), neighbor=2)
        assert rib.best_route(Prefix.parse("10.0.0.0/16")) is backup

    def test_withdraw_last_route_removes_entry(self):
        rib = LocRib(owner=1)
        rib.add_route(route("10.0.0.0/16", "2 9"))
        rib.withdraw(Prefix.parse("10.0.0.0/16"), neighbor=2)
        assert Prefix.parse("10.0.0.0/16") not in rib
        assert len(rib) == 0

    def test_withdraw_unknown_prefix_is_noop(self):
        rib = LocRib(owner=1)
        rib.withdraw(Prefix.parse("10.0.0.0/16"), neighbor=2)
        assert len(rib) == 0

    def test_longest_prefix_lookup(self):
        rib = LocRib(owner=1)
        rib.add_route(route("10.0.0.0/8", "2 9"))
        rib.add_route(route("10.1.0.0/16", "3 9"))
        found = rib.lookup("10.1.2.3")
        assert found.prefix == Prefix.parse("10.1.0.0/16")

    def test_best_routes_and_neighbors(self):
        rib = LocRib(owner=1)
        rib.add_route(route("10.0.0.0/16", "2 9"))
        rib.add_route(route("10.1.0.0/16", "3 8"))
        assert len(list(rib.best_routes())) == 2
        assert rib.neighbors() == {2, 3}

    def test_routes_from_neighbor(self):
        rib = LocRib(owner=1)
        rib.add_route(route("10.0.0.0/16", "2 9"))
        rib.add_route(route("10.1.0.0/16", "2 8"))
        rib.add_route(route("10.2.0.0/16", "3 8"))
        assert len(list(rib.routes_from(2))) == 2
        assert len(list(rib.best_routes_from(3))) == 1

    def test_prefixes_originated_by(self):
        rib = LocRib(owner=1)
        rib.add_route(route("10.0.0.0/16", "2 9"))
        rib.add_route(route("10.1.0.0/16", "3 9"))
        rib.add_route(route("10.2.0.0/16", "3 8"))
        originated = rib.prefixes_originated_by(9)
        assert set(originated) == {Prefix.parse("10.0.0.0/16"), Prefix.parse("10.1.0.0/16")}

    def test_repr(self):
        assert "AS1" in repr(LocRib(owner=1))
