"""CODEC: schema-drift cross-check between codecs and the classes they serialize.

A :class:`~repro.storage.codecs.StageCodec` must read every field of the
dataclasses it lowers and write every field when it raises them — a field
added to ``Route`` or ``ASPolicy`` that no codec touches silently drops
data from the durable store, and a codec touching a renamed attribute
fails only at decode time.  These rules resolve both sides statically:

* the *schema* side from the AST of the defining modules
  (:mod:`repro.devtools.schema` — dataclass fields, plain-class
  ``self.X`` attributes, constructor signatures);
* the *codec* side from the codec module's AST — attribute reads on
  annotation-bound or constructor-bound names, and constructor keyword /
  positional arguments.

Rules:

* :class:`UnknownAttributeRule` (CODEC001) — the codec module touches an
  attribute or constructor argument the class does not define;
* :class:`UncoveredFieldRule` (CODEC002) — a dataclass used by the codec
  module has a field no code in the module ever reads or writes.

CODEC002 is restricted to dataclasses: plain classes (``MeasurementIndex``)
keep internal derived state a codec legitimately recomputes, so only their
attribute *existence* is enforced.

Both rules self-gate on "does this module define a ``StageCodec``
subclass", so they run everywhere without scoping noise and cover any
future codec module automatically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.engine import LintContext, ModuleUnderLint, Rule, register, walk_scopes
from repro.devtools.model import Finding
from repro.devtools.schema import ClassSchema, collect_schemas


@dataclass
class CodecAnalysis:
    """Accumulated cross-check state for one codec module.

    Attributes:
        registry: resolvable class schemas, keyed by local name.
        touched: attribute/field names each class had read or written.
        first_use: line where each class was first bound or constructed.
        findings: CODEC001 findings collected during the walk.
    """

    registry: dict[str, ClassSchema] = field(default_factory=dict)
    touched: dict[str, set[str]] = field(default_factory=dict)
    first_use: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)


def _is_codec_module(tree: ast.Module) -> bool:
    """``True`` when the module defines a ``StageCodec`` subclass."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if name == "StageCodec":
                    return True
    return False


def _imported_schemas(
    tree: ast.Module, context: LintContext
) -> dict[str, ClassSchema]:
    """Schemas of classes imported into the codec module, by local name."""
    registry: dict[str, ClassSchema] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.level or not node.module:
            continue
        source = context.resolve_import(node.module)
        if source is None:
            continue
        imported_tree = context.parse_module(source)
        if imported_tree is None:
            continue
        schemas = collect_schemas(imported_tree, node.module)
        for alias in node.names:
            if alias.name in schemas:
                registry[alias.asname or alias.name] = schemas[alias.name]
    return registry


def _schema_name_of_annotation(annotation: ast.expr | None) -> str | None:
    """The class name an annotation points at, if it is a plain reference."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip("'\"").rpartition(".")[2]
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def crosscheck(
    module: ModuleUnderLint,
    context: LintContext,
    schema_overrides: dict[str, ClassSchema] | None = None,
) -> CodecAnalysis | None:
    """Cross-check one codec module against its classes' static schemas.

    Args:
        module: the parsed module (must define a ``StageCodec`` subclass,
            otherwise ``None`` is returned and no rules apply).
        context: lint context providing import resolution.
        schema_overrides: replacement schemas by class name — the
            missing-field regression tests inject a cloned dataclass with
            an extra field here to prove the check would catch the drift.

    Returns:
        The analysis (findings carry rule ids CODEC001/CODEC002), or
        ``None`` for non-codec modules.
    """
    if not _is_codec_module(module.tree):
        return None
    analysis = CodecAnalysis()
    analysis.registry.update(_imported_schemas(module.tree, context))
    analysis.registry.update(collect_schemas(module.tree, module.path))
    if schema_overrides:
        analysis.registry.update(schema_overrides)
    for scope, body in walk_scopes(module.tree):
        bindings = _scope_bindings(scope, body, analysis)
        _check_scope(module, body, bindings, analysis)
    _append_uncovered_field_findings(module, analysis)
    return analysis


def _scope_bindings(
    scope: ast.AST, body: list[ast.stmt], analysis: CodecAnalysis
) -> dict[str, str]:
    """Names bound to registry classes within one scope.

    A name is bound by an annotated parameter, an annotated assignment, a
    direct construction (``x = Route(...)``) or a factory-classmethod call
    (``x = MeasurementIndex.hollow(...)``).
    """
    bindings: dict[str, str] = {}
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = scope.args
        for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs):
            name = _schema_name_of_annotation(arg.annotation)
            if name in analysis.registry:
                bindings[arg.arg] = name
                _mark_use(analysis, name, scope.lineno)
    for node in _scope_statements(body):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            name = _schema_name_of_annotation(node.annotation)
            if name in analysis.registry:
                bindings[node.target.id] = name
                _mark_use(analysis, name, node.lineno)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = _constructed_class(node.value, analysis)
            if name is not None:
                _mark_use(analysis, name, node.value.lineno)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = name
    return bindings


def _constructed_class(call: ast.Call, analysis: CodecAnalysis) -> str | None:
    """The registry class a call constructs (directly or via classmethod)."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in analysis.registry:
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in analysis.registry
        and func.attr in analysis.registry[func.value.id].members
    ):
        return func.value.id
    return None


def _scope_statements(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _mark_use(analysis: CodecAnalysis, class_name: str, line: int) -> None:
    """Record that ``class_name`` is serialized by this module."""
    analysis.touched.setdefault(class_name, set())
    analysis.first_use.setdefault(class_name, line)


def _check_scope(
    module: ModuleUnderLint,
    body: list[ast.stmt],
    bindings: dict[str, str],
    analysis: CodecAnalysis,
) -> None:
    """Collect attribute and constructor usage (and CODEC001 findings)."""
    for node in _scope_statements(body):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in bindings
        ):
            class_name = bindings[node.value.id]
            schema = analysis.registry[class_name]
            if node.attr in schema.members:
                analysis.touched.setdefault(class_name, set()).add(node.attr)
            else:
                analysis.findings.append(
                    module.finding(
                        "CODEC001",
                        node,
                        f"'{node.value.id}.{node.attr}' touches unknown "
                        f"attribute '{node.attr}' of {schema.module}.{schema.name}",
                    )
                )
        elif isinstance(node, ast.Call):
            class_name = _directly_constructed(node, analysis)
            if class_name is not None:
                _mark_use(analysis, class_name, node.lineno)
                _check_constructor(module, node, class_name, analysis)


def _directly_constructed(call: ast.Call, analysis: CodecAnalysis) -> str | None:
    """The registry class name when the call is a direct ``Class(...)``."""
    if isinstance(call.func, ast.Name) and call.func.id in analysis.registry:
        return call.func.id
    return None


def _check_constructor(
    module: ModuleUnderLint,
    call: ast.Call,
    class_name: str,
    analysis: CodecAnalysis,
) -> None:
    """Validate one ``Class(...)`` call's arguments against the schema."""
    schema = analysis.registry[class_name]
    touched = analysis.touched.setdefault(class_name, set())
    for position, argument in enumerate(call.args):
        if isinstance(argument, ast.Starred):
            break
        if position < len(schema.init_params):
            touched.add(schema.init_params[position])
    for keyword in call.keywords:
        if keyword.arg is None:  # **kwargs: opaque, nothing to verify
            continue
        if keyword.arg in schema.init_params or keyword.arg in schema.members:
            touched.add(keyword.arg)
        else:
            analysis.findings.append(
                module.finding(
                    "CODEC001",
                    call,
                    f"{class_name}(...) passes unknown constructor argument "
                    f"'{keyword.arg}' ({schema.module}.{schema.name} does not "
                    "declare it)",
                )
            )


def _append_uncovered_field_findings(
    module: ModuleUnderLint, analysis: CodecAnalysis
) -> None:
    """Emit CODEC002 for dataclass fields the module never touches."""
    for class_name, touched in sorted(analysis.touched.items()):
        schema = analysis.registry[class_name]
        if not schema.is_dataclass:
            continue
        for field_name in schema.fields:
            if field_name not in touched:
                analysis.findings.append(
                    Finding(
                        rule="CODEC002",
                        path=module.path,
                        line=analysis.first_use.get(class_name, 1),
                        column=0,
                        message=(
                            f"field '{field_name}' of {schema.module}."
                            f"{schema.name} is never read or written by this "
                            "codec module (schema drift: the durable store "
                            "would silently drop it)"
                        ),
                    )
                )


@register
class UnknownAttributeRule(Rule):
    """CODEC001: a codec touches an attribute its target class lacks.

    Fires on attribute reads/writes through bound instance names and on
    unknown constructor keyword arguments — the static shadow of the
    ``AttributeError``/``TypeError`` a decode would raise at runtime.
    """

    id = "CODEC001"
    family = "CODEC"
    summary = "codec touches an attribute the serialized class does not define"
    applies_to = None  # self-gated on StageCodec subclasses

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield CODEC001 findings for one codec module."""
        analysis = crosscheck(module, context)
        if analysis is not None:
            yield from (f for f in analysis.findings if f.rule == self.id)


@register
class UncoveredFieldRule(Rule):
    """CODEC002: a serialized dataclass has a field no codec code touches.

    The canonical drift: a field added to ``Route``/``ASPolicy``/an
    artifact dataclass whose codec was not updated — round-trips silently
    lose the field until a golden test (or production) notices.
    """

    id = "CODEC002"
    family = "CODEC"
    summary = "dataclass field not covered by its codec (silent data loss)"
    applies_to = None  # self-gated on StageCodec subclasses

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield CODEC002 findings for one codec module."""
        analysis = crosscheck(module, context)
        if analysis is not None:
            yield from (f for f in analysis.findings if f.rule == self.id)
