"""Edge cases of the core analyzers the equivalence suite relies on.

Empty and degenerate observed artifacts must behave identically in the
legacy analyzers and in the analysis layer's fast paths; these tests pin
the legacy behaviour down with handcrafted fixtures.
"""

import pytest

from repro.analysis.persistence import SnapshotSACore
from repro.bgp.rib import LocRib
from repro.bgp.route import Route, originate
from repro.core.atoms import PolicyAtomAnalyzer
from repro.core.community import CommunityAnalyzer
from repro.core.export_policy import ExportPolicyAnalyzer
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.collector import CollectorEntry, CollectorTable, LookingGlass
from repro.topology.graph import AnnotatedASGraph

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P3 = Prefix.parse("10.0.2.0/24")


class TestAtomsEdgeCases:
    def test_empty_collector_table_has_no_atoms(self):
        analyzer = PolicyAtomAnalyzer()
        atoms = analyzer.compute_atoms(CollectorTable())
        assert atoms == []
        stats = analyzer.statistics(atoms)
        assert stats.atom_count == 0
        assert stats.prefix_count == 0
        assert stats.average_atom_size == 0.0
        assert stats.largest_atom_size == 0

    def test_single_vantage_atoms_group_by_path(self):
        # One vantage: prefixes sharing the one observed path share an atom.
        table = CollectorTable(
            entries=[
                CollectorEntry(vantage=10, prefix=P1, as_path=ASPath([10, 20, 30])),
                CollectorEntry(vantage=10, prefix=P2, as_path=ASPath([10, 20, 30])),
                CollectorEntry(vantage=10, prefix=P3, as_path=ASPath([10, 40])),
            ]
        )
        atoms = PolicyAtomAnalyzer().compute_atoms(table)
        assert [atom.prefixes for atom in atoms] == [[P1, P2], [P3]]
        assert atoms[0].signature == ((10, ASPath([10, 20, 30])),)
        assert atoms[0].origin_ases == {30}
        assert atoms[1].origin_ases == {40}

    def test_single_prefix_atoms_counted(self):
        table = CollectorTable(
            entries=[
                CollectorEntry(vantage=10, prefix=P1, as_path=ASPath([10, 30])),
                CollectorEntry(vantage=10, prefix=P2, as_path=ASPath([10, 40])),
            ]
        )
        analyzer = PolicyAtomAnalyzer()
        stats = analyzer.statistics(analyzer.compute_atoms(table))
        assert stats.single_prefix_atoms == 2
        assert stats.single_origin_atoms == 2


class TestExportPolicyNoCustomers:
    @pytest.fixture()
    def graph(self):
        graph = AnnotatedASGraph()
        # AS1 is AS2's provider; AS2 is a stub with no customers at all.
        graph.add_provider_customer(1, 2)
        graph.add_provider_customer(1, 3)
        return graph

    @pytest.fixture()
    def stub_table(self):
        table = LocRib(owner=2)
        table.add_route(originate(P1, 2))
        table.add_route(Route(prefix=P2, as_path=ASPath([1, 3]), local_pref=90))
        return table

    def test_stub_provider_has_empty_sa_report(self, graph, stub_table):
        report = ExportPolicyAnalyzer(graph).find_sa_prefixes(2, stub_table)
        assert report.customer_prefix_count == 0
        assert report.sa_prefixes == []
        assert report.customer_route_prefix_count == 0
        assert report.percent_sa == 0.0

    def test_snapshot_core_matches_legacy_on_stub(self, graph, stub_table):
        legacy = ExportPolicyAnalyzer(graph).find_sa_prefixes(2, stub_table)
        fast = SnapshotSACore(graph).sa_report(2, stub_table)
        assert fast == legacy

    def test_known_prefixes_of_noncustomers_do_not_count_missing(self, graph, stub_table):
        report = ExportPolicyAnalyzer(graph).find_sa_prefixes(
            2, stub_table, known_customer_prefixes={3: [P3]}
        )
        assert report.missing_prefix_count == 0


class TestCommunityNoCommunities:
    @pytest.fixture()
    def glass(self):
        table = LocRib(owner=5)
        # Routes with no community tags at all (the next hop is the first
        # AS on the path; the owner is not prepended inside its own table).
        table.add_route(Route(prefix=P1, as_path=ASPath([6, 7]), local_pref=100))
        table.add_route(Route(prefix=P2, as_path=ASPath([8]), local_pref=90))
        return LookingGlass(5, table)

    def test_signatures_have_no_dominant_community(self, glass):
        signatures = CommunityAnalyzer().neighbor_signatures(glass)
        assert set(signatures) == {6, 8}
        assert all(s.community is None for s in signatures.values())

    def test_semantics_stay_empty_without_communities(self, glass):
        semantics = CommunityAnalyzer().infer_semantics(glass)
        assert semantics.value_to_relationship == {}
        assert semantics.anchors == {}
        assert semantics.relationship_for_neighbor(6) is None

    def test_empty_glass_yields_empty_semantics(self):
        glass = LookingGlass(5, LocRib(owner=5))
        semantics = CommunityAnalyzer().infer_semantics(glass)
        assert semantics.signatures == {}
        assert semantics.value_to_relationship == {}
