"""Shared, memoised computations used by several experiments.

Several tables consume the same intermediate products (the SA-prefix reports
of the studied providers, the set of tagging Looking Glass ASes, the
persistence timeline).  Since the :mod:`repro.analysis` layer those shared
products are served by the dataset's memoised
:class:`~repro.analysis.engine.AnalysisEngine` — one compiled measurement
index per dataset, shared by every experiment and every ``run_suite``
worker — so the helpers here are thin delegates kept for compatibility.
"""

from __future__ import annotations

import functools

from repro.bgp.rib import LocRib
from repro.core.export_policy import SAPrefixReport
from repro.net.asn import ASN
from repro.session.stages import StageView
from repro.simulation.collector import LookingGlass
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.timeline import Snapshot, Timeline, TimelineParameters
from repro.topology.generator import GeneratorParameters, InternetGenerator

# The number of studied providers ("AS1, AS3549 and AS7018" in the paper)
# is configured per study via repro.session.stages.AnalysisParameters
# (study_provider_count, default 3); the dataset's engine is built with it.


def _engine(dataset):
    """The dataset's analysis engine.

    Goes through ``StageView.analysis`` when given a view, so an experiment
    that reaches these helpers without declaring ``Stage.ANALYSIS`` still
    fails loudly.
    """
    if isinstance(dataset, StageView):
        return dataset.analysis
    return dataset.analysis_engine()


def provider_tables(dataset: StageView, count: int | None = None) -> dict[ASN, LocRib]:
    """The routing tables of the studied (largest Tier-1) providers.

    ``count=None`` defers to the engine's configured
    ``study_provider_count``, so the whole suite agrees on one provider set.
    """
    return _engine(dataset).provider_tables(count)


def sa_reports(dataset: StageView) -> dict[ASN, SAPrefixReport]:
    """The Fig. 4 SA-prefix reports for the studied providers."""
    return _engine(dataset).sa_reports()


def all_provider_reports(dataset: StageView) -> dict[ASN, SAPrefixReport]:
    """SA-prefix reports for every observed AS that has customers (Table 5)."""
    return _engine(dataset).all_provider_reports()


def tagging_glasses(dataset: StageView) -> list[LookingGlass]:
    """Looking Glass ASes that tag routes with relationship communities."""
    return [
        dataset.looking_glass_of(asn)
        for asn in dataset.looking_glass_ases
        if dataset.assignment.policies[asn].community_plan is not None
    ]


@functools.lru_cache(maxsize=4)
def persistence_snapshots(
    snapshot_count: int = 31, seed: int = 315
) -> tuple[ASN, tuple[Snapshot, ...], object]:
    """A memoised persistence timeline on a dedicated small Internet.

    The persistence study (Figs. 6 and 7) re-simulates the Internet once per
    snapshot, so it runs on a smaller topology than the main dataset.
    Returns ``(studied provider, snapshots, annotated graph)``.
    """
    internet = InternetGenerator(
        GeneratorParameters(
            seed=777, tier1_count=4, tier2_count=8, tier3_count=16, stub_count=90
        )
    ).generate()
    assignment = PolicyGenerator(PolicyParameters(seed=915)).generate(internet)
    provider = max(internet.tier1, key=internet.graph.degree)
    timeline = Timeline(
        internet,
        assignment,
        observed_ases=[provider],
        parameters=TimelineParameters(
            snapshot_count=snapshot_count,
            churn_probability=0.015,
            appear_probability=0.008,
            disappear_probability=0.005,
            seed=seed,
        ),
    )
    return provider, tuple(timeline.run()), internet.graph
