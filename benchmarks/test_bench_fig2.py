"""Benchmark: reproduce Figure 2 (LOCAL_PREF / next-hop consistency).

Paper shape: LOCAL_PREF is keyed on the next-hop AS for close to all prefixes
— both across the 14 Looking Glass ASes (Fig. 2a) and across the 30 backbone
routers of one large AS (Fig. 2b).
"""


def test_bench_fig2(benchmark, run_experiment):
    result = run_experiment(benchmark, "fig2")
    fig2a = [float(row[-1].rstrip("%")) for row in result.rows if row[0] == "fig2a"]
    fig2b = [float(row[-1].rstrip("%")) for row in result.rows if row[0] == "fig2b"]
    assert fig2a and fig2b
    assert len(fig2b) == 30
    assert sum(fig2a) / len(fig2a) > 90.0
    assert sum(fig2b) / len(fig2b) > 85.0
