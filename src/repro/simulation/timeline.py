"""Multi-snapshot simulation for the persistence study (paper Section 5.1.4).

The paper examines how stable SA prefixes are over a month of daily
RouteViews snapshots and over one day of 2-hour snapshots (Figs. 6 and 7).
Between snapshots, operators occasionally change their export policies —
switching announcements between providers, adding or removing selective
announcement — which turns SA prefixes into non-SA prefixes and vice versa.

:class:`Timeline` re-runs the propagation engine once per snapshot under a
slowly churning policy assignment and records, for each snapshot, the tables
at the studied providers.  The churn operates only on the origin-level export
policies; topology and import policies stay fixed, matching the paper's
premise that what changes day to day is the announcement pattern.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.net.asn import ASN
from repro.simulation.fastpath import FastPropagationEngine
from repro.simulation.policies import PolicyAssignment
from repro.simulation.propagation import PropagationEngine, SimulationResult
from repro.topology.generator import SyntheticInternet


@dataclass
class TimelineParameters:
    """Knobs of the persistence timeline.

    Attributes:
        snapshot_count: number of snapshots to simulate (31 for the monthly
            study, 12 for the 2-hour intra-day study).
        churn_probability: probability that a selectively announcing origin
            AS changes its announcement pattern between two snapshots.
        appear_probability: probability that a previously fully announcing
            multihomed origin AS *starts* selective announcement at a
            snapshot boundary.
        disappear_probability: probability that a selectively announcing
            origin AS reverts to announcing everywhere.
        seed: seed of the churn random source.
    """

    snapshot_count: int = 31
    churn_probability: float = 0.08
    appear_probability: float = 0.01
    disappear_probability: float = 0.03
    seed: int = 315

    def validate(self) -> None:
        """Raise :class:`SimulationError` for invalid settings."""
        if self.snapshot_count < 1:
            raise SimulationError("snapshot_count must be at least 1")
        for name in ("churn_probability", "appear_probability", "disappear_probability"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise SimulationError(f"{name} must be a probability, got {value}")


@dataclass
class Snapshot:
    """One point-in-time observation.

    Attributes:
        index: snapshot number, starting at 0.
        result: the simulation result (tables at the observed ASes).
        changed_origins: origins whose export policy changed relative to the
            previous snapshot.
    """

    index: int
    result: SimulationResult
    changed_origins: set[ASN] = field(default_factory=set)


class Timeline:
    """Repeated propagation under churning origin export policies."""

    def __init__(
        self,
        internet: SyntheticInternet,
        assignment: PolicyAssignment,
        observed_ases: list[ASN],
        parameters: TimelineParameters | None = None,
        engine: str = "fast",
    ) -> None:
        self.internet = internet
        self.base_assignment = assignment
        self.observed_ases = observed_ases
        self.parameters = parameters or TimelineParameters()
        self.parameters.validate()
        if engine not in ("fast", "legacy"):
            raise SimulationError(
                f"unknown propagation engine {engine!r}; known: fast, legacy"
            )
        self.engine = engine

    def run(self) -> list[Snapshot]:
        """Simulate every snapshot and return them in chronological order."""
        rng = random.Random(self.parameters.seed)
        assignment = copy.deepcopy(self.base_assignment)
        snapshots: list[Snapshot] = []
        for index in range(self.parameters.snapshot_count):
            changed: set[ASN] = set()
            if index > 0:
                changed = self._churn(assignment, rng)
            # The churn mutates export policies in place, so each snapshot
            # compiles (or classifies) the assignment afresh; both engines
            # produce identical snapshots.
            if self.engine == "fast":
                engine: PropagationEngine | FastPropagationEngine = FastPropagationEngine(
                    self.internet, assignment, observed_ases=self.observed_ases
                )
            else:
                engine = PropagationEngine(
                    self.internet, assignment, observed_ases=self.observed_ases
                )
            result = engine.run()
            snapshots.append(Snapshot(index=index, result=result, changed_origins=changed))
        return snapshots

    # -- churn ---------------------------------------------------------------------

    def _churn(self, assignment: PolicyAssignment, rng: random.Random) -> set[ASN]:
        """Mutate origin export policies in place; return the affected origins."""
        params = self.parameters
        graph = self.internet.graph
        changed: set[ASN] = set()

        # Existing selective announcers may reshuffle or stop.
        for origin in sorted(assignment.selective_origins):
            policy = assignment.policy_for(origin)
            providers = graph.providers_of(origin)
            if len(providers) < 2:
                continue
            if rng.random() < params.disappear_probability:
                policy.announce_to_providers.clear()
                policy.scoped_to_providers.clear()
                changed.add(origin)
                continue
            if rng.random() < params.churn_probability:
                for prefix in list(policy.announce_to_providers):
                    subset_size = rng.randint(1, len(providers) - 1)
                    policy.announce_to_providers[prefix] = frozenset(
                        rng.sample(providers, k=subset_size)
                    )
                changed.add(origin)

        # A few fully announcing multihomed origins may start being selective.
        if params.appear_probability > 0:
            for origin in sorted(self.internet.originated):
                if origin in assignment.selective_origins:
                    continue
                providers = graph.providers_of(origin)
                prefixes = self.internet.prefixes_of(origin)
                if len(providers) < 2 or not prefixes:
                    continue
                if rng.random() < params.appear_probability:
                    policy = assignment.policy_for(origin)
                    prefix = rng.choice(prefixes)
                    subset_size = rng.randint(1, len(providers) - 1)
                    policy.announce_to_providers[prefix] = frozenset(
                        rng.sample(providers, k=subset_size)
                    )
                    assignment.selective_origins.setdefault(origin, set()).add(prefix)
                    changed.add(origin)
        # Track disappearance in the ground truth too.
        for origin in list(assignment.selective_origins):
            policy = assignment.policy_for(origin)
            if not policy.announce_to_providers and not policy.scoped_to_providers:
                del assignment.selective_origins[origin]
        return changed
