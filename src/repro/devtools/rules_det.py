"""DET: determinism-hazard rules for storage, fingerprint and stage code.

The repro's storage layer promises byte-identical artifacts across fresh
interpreters under randomized ``PYTHONHASHSEED``; the scenario families
promise identical ``family@seed`` samples across processes.  These rules
flag the constructs that silently break those promises:

* :class:`UnsortedSetIterationRule` (DET001) — iterating a ``set``-valued
  expression in an order-sensitive context without ``sorted()``;
* :class:`NondeterministicCallRule` (DET002) — ``id()``, ``hash()``,
  global-state ``random`` functions, wall-clock ``time`` reads, argless
  ``datetime.now()`` and friends in pure stage/codec/family code;
* :class:`UnsortedFilesystemIterationRule` (DET003) — iterating
  ``os.listdir``/``iterdir``/``glob`` results, whose order is
  filesystem-defined, without ``sorted()``.

All three are scoped (:data:`DET_SCOPE`) to the paths whose output feeds
fingerprints or encoded artifacts; elsewhere (benchmarks, CLI timing) the
same constructs are legitimate.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from repro.devtools.engine import (
    LintContext,
    ModuleUnderLint,
    Rule,
    dotted_name,
    iteration_sites,
    register,
    scope_statements,
    walk_scopes,
)
from repro.devtools.model import Finding

#: Paths whose code must be deterministic: everything that produces bytes
#: that end up in artifacts or fingerprints, plus the seed->config samplers.
DET_SCOPE = (
    "src/repro/storage/*.py",
    "src/repro/session/cache.py",
    "src/repro/session/stages.py",
    "src/repro/fuzz/families.py",
    "src/repro/analysis/index.py",
)

#: ``set``-returning method names (on an already set-valued receiver).
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: ``random`` module functions that use the hidden global generator.
_RANDOM_GLOBALS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: ``time`` module functions that read a clock.
_TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    }
)

#: Filesystem-iteration producers whose order is platform-defined.
_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})
_FS_FUNCTIONS = frozenset({"os.listdir", "os.scandir", "os.walk"})


def _set_valued(node: ast.expr, set_names: frozenset[str]) -> bool:
    """``True`` when the expression statically looks ``set``-valued.

    Args:
        node: the expression to classify.
        set_names: local names known (flow-insensitively) to hold sets.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.IfExp):
        return _set_valued(node.body, set_names) or _set_valued(node.orelse, set_names)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _set_valued(node.left, set_names)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _set_valued(node.func.value, set_names)
        ):
            return True
    return False


def _scope_names(
    body: list[ast.stmt], classify: Callable[[ast.expr], bool]
) -> frozenset[str]:
    """Names assigned only matching values within one scope.

    A name qualifies when at least one of its assignments matches
    ``classify`` and none of them definitely does not (flow-insensitive:
    good enough for lint, and suppressible when wrong).

    Args:
        body: the scope's statement list.
        classify: predicate over assigned value expressions.

    Returns:
        The qualifying names.
    """
    positive: set[str] = set()
    negative: set[str] = set()
    for node in scope_statements(body):
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target] if isinstance(node.target, ast.Name) else []
            value = node.value
        else:
            continue
        bucket = positive if classify(value) else negative
        for target in targets:
            bucket.add(target.id)
    return frozenset(positive - negative)


@register
class UnsortedSetIterationRule(Rule):
    """DET001: iteration over a ``set``-valued expression without ``sorted()``.

    Set iteration order depends on element hashes (and, for strings, on
    ``PYTHONHASHSEED``); anything order-sensitive built from it — a list, a
    dict's insertion order, encoded bytes — varies across interpreters.
    Wrap the expression in ``sorted()`` or suppress with an insertion-order
    rationale.
    """

    id = "DET001"
    family = "DET"
    summary = "iteration over a set-valued expression needs sorted()"
    applies_to = DET_SCOPE

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield one finding per order-sensitive iteration of a set value."""
        for _scope, body in walk_scopes(module.tree):
            names = _scope_names(body, lambda value: _set_valued(value, frozenset()))
            for expression, label in iteration_sites(body):
                if _set_valued(expression, names):
                    yield module.finding(
                        self,
                        expression,
                        f"{label} iterates set-valued expression "
                        f"'{ast.unparse(expression)}'; wrap in sorted() or "
                        "justify the ordering with a noqa rationale",
                    )


@register
class NondeterministicCallRule(Rule):
    """DET002: nondeterministic builtins/modules in pure deterministic code.

    ``id()`` and ``hash()`` vary per process (and per ``PYTHONHASHSEED``),
    the global ``random`` functions and clock reads vary per call, and
    ``datetime.now()`` stamps wall-clock time into what must be a pure
    function of the configuration.  Seeded ``random.Random(...)`` instances
    remain allowed — they are the deterministic alternative.
    """

    id = "DET002"
    family = "DET"
    summary = "id()/hash()/global random/clock reads are nondeterministic"
    applies_to = DET_SCOPE

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield one finding per nondeterministic call or banned import."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                message = self._call_message(node)
                if message is not None:
                    yield module.finding(self, node, message)
            elif isinstance(node, ast.ImportFrom) and node.module in ("random", "time"):
                banned = _RANDOM_GLOBALS if node.module == "random" else _TIME_FUNCS
                for alias in node.names:
                    if alias.name in banned:
                        yield module.finding(
                            self,
                            node,
                            f"from {node.module} import {alias.name} pulls a "
                            "nondeterministic function into deterministic code",
                        )

    @staticmethod
    def _call_message(node: ast.Call) -> str | None:
        """The violation message for one call, or ``None`` when clean."""
        if isinstance(node.func, ast.Name) and node.func.id in ("id", "hash"):
            return (
                f"call to {node.func.id}() is process-dependent; derive a "
                "stable key from the value instead"
            )
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        head, _, tail = dotted.rpartition(".")
        if head == "random" and tail in _RANDOM_GLOBALS:
            return (
                f"{dotted}() uses the hidden global generator; use a seeded "
                "random.Random instance"
            )
        if head == "time" and tail in _TIME_FUNCS:
            return f"{dotted}() reads a clock inside deterministic code"
        if dotted == "os.urandom" or (head == "uuid" and tail in ("uuid1", "uuid4")):
            return f"{dotted}() is nondeterministic by design"
        parts = dotted.split(".")
        if tail in ("utcnow", "today") and any(p in ("datetime", "date") for p in parts):
            return f"{dotted}() stamps wall-clock time into deterministic code"
        if (
            tail == "now"
            and not node.args
            and not node.keywords
            and any(p in ("datetime", "date") for p in parts)
        ):
            return f"argless {dotted}() stamps wall-clock time into deterministic code"
        return None


@register
class UnsortedFilesystemIterationRule(Rule):
    """DET003: filesystem-ordered iteration without ``sorted()``.

    ``os.listdir``, ``Path.iterdir`` and ``glob`` yield entries in
    filesystem order, which differs across machines and over time.  Any
    order-sensitive consumer in the storage layer must sort first.
    """

    id = "DET003"
    family = "DET"
    summary = "directory-listing iteration order is filesystem-defined"
    applies_to = DET_SCOPE

    def check(self, module: ModuleUnderLint, context: LintContext) -> Iterator[Finding]:
        """Yield one finding per order-sensitive directory iteration."""
        for _scope, body in walk_scopes(module.tree):
            names = _scope_names(body, self._fs_valued)
            for expression, label in iteration_sites(body):
                if self._fs_valued(expression) or (
                    isinstance(expression, ast.Name) and expression.id in names
                ):
                    yield module.finding(
                        self,
                        expression,
                        f"{label} iterates directory listing "
                        f"'{ast.unparse(expression)}' in filesystem order; "
                        "wrap in sorted() or justify with a noqa rationale",
                    )

    @staticmethod
    def _fs_valued(node: ast.expr) -> bool:
        """``True`` for calls that produce filesystem-ordered listings."""
        if not isinstance(node, ast.Call):
            return False
        if isinstance(node.func, ast.Attribute) and node.func.attr in _FS_METHODS:
            return True
        dotted = dotted_name(node.func)
        return dotted in _FS_FUNCTIONS
