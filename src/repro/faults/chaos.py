"""The chaos harness: ``python -m repro chaos --seed S``.

Runs the same small sweep four ways and asserts the robustness invariants
the fault-injection layer is supposed to guarantee:

1. **baseline** — a fault-free sweep; its per-case timing-masked suite
   reports are the reference bytes.
2. **chaos** — the same cases under a :meth:`FaultPlan.generate` schedule
   (worker kills, ``ENOSPC``/``EIO`` write errors, artifact corruption,
   latency) over a process pool.  The sweep must terminate with every case
   completed (bounded faults + bounded retries), and every report must be
   byte-identical to the baseline.
3. **kill-point resume** — the sweep is interrupted after a seed-derived
   number of cases (the ``fail_after`` crash hook) and re-run; the resume
   must complete the full case list with byte-identical reports.
4. **degradation** — every disk write fails (``ENOSPC``, unbounded); the
   sweep must still complete every case with byte-identical reports, with
   the store reporting ``degraded`` instead of raising.

Finally a **warm re-read** over the chaos cache (which may hold corrupted
artifacts) must quarantine-and-rebuild its way to byte-identical reports.

Every check is deterministic in ``--seed``; a failure prints the seed that
reproduces it.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan, FaultRule
from repro.session.sweep import SweepInterrupted, SweepReport, run_sweep

#: Experiments each chaos case runs (small but multi-stage: the full
#: pipeline builds, two analysis tables render).
DEFAULT_EXPERIMENTS = ("table2", "table5")


def default_specs(seed: int, count: int = 3) -> list[str]:
    """The seed-derived case list: small, fast family samples."""
    if count < 2:
        count = 2
    specs = [f"collector-size@{seed + index}" for index in range(count - 1)]
    specs.append(f"multihoming@{seed}")
    return specs


@dataclass
class ChaosCheck:
    """One robustness invariant: name, verdict, human-readable detail."""

    name: str
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        """A JSON-ready mapping with a stable key order."""
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class ChaosReport:
    """The structured result of one :func:`run_chaos` call."""

    seed: int
    specs: list[str] = field(default_factory=list)
    checks: list[ChaosCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when every robustness invariant held."""
        return all(check.ok for check in self.checks)

    def to_dict(self) -> dict:
        """A JSON-ready mapping with a stable key order."""
        return {
            "seed": self.seed,
            "specs": self.specs,
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The report as deterministic JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """A human-readable per-check summary."""
        lines = [f"chaos: seed {self.seed}, cases {', '.join(self.specs)}"]
        for check in self.checks:
            marker = "ok  " if check.ok else "FAIL"
            lines.append(f"{marker} {check.name:24s} {check.detail}")
        verdict = "all invariants held" if self.ok else "INVARIANT VIOLATED"
        lines.append(f"chaos seed {self.seed}: {verdict}")
        return "\n".join(lines)


def _report_bytes(report: SweepReport) -> dict[str, bytes]:
    """Per-spec report file bytes of a sweep (missing files map to ``b''``)."""
    result: dict[str, bytes] = {}
    for case in report.cases:
        if case.report_path is None:
            result[case.spec] = b""
            continue
        try:
            result[case.spec] = pathlib.Path(case.report_path).read_bytes()
        except OSError:
            result[case.spec] = b""
    return result


def _identical(baseline: dict[str, bytes], other: dict[str, bytes]) -> tuple[bool, str]:
    """Compare per-case report bytes against the baseline."""
    missing = sorted(set(baseline) - set(other))
    if missing:
        return False, f"missing case reports: {', '.join(missing)}"
    differing = sorted(spec for spec in baseline if baseline[spec] != other[spec])
    if differing:
        return False, f"report bytes differ from baseline: {', '.join(differing)}"
    return True, f"{len(baseline)} reports byte-identical to baseline"


def run_chaos(
    seed: int,
    *,
    specs: list[str] | None = None,
    count: int = 3,
    experiments: list[str] | None = None,
    workers: int = 2,
    retries: int = 4,
    root: str | pathlib.Path | None = None,
    keep: bool = False,
) -> ChaosReport:
    """Run every chaos check for one seed.

    Args:
        seed: drives the case list, the fault schedule and the kill point.
        specs: explicit case list (default: :func:`default_specs`).
        count: size of the default case list.
        experiments: experiment ids per case (default
            :data:`DEFAULT_EXPERIMENTS`).
        workers: pool width of the chaos sweep (>= 2 so worker kills
            exercise ``BrokenProcessPool`` recovery).
        retries: retry budget of the chaos sweep; must exceed the worst
            case collateral attempts (own kill + in-flight neighbours).
        root: scratch directory (default: a fresh temp dir).
        keep: leave the scratch directory behind for inspection.

    Returns:
        The :class:`ChaosReport`; ``report.ok`` is the harness verdict.
    """
    cases = list(specs) if specs else default_specs(seed, count)
    ids = list(experiments) if experiments else list(DEFAULT_EXPERIMENTS)
    scratch = pathlib.Path(root) if root else pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    scratch.mkdir(parents=True, exist_ok=True)
    report = ChaosReport(seed=seed, specs=cases)

    try:
        baseline_sweep = run_sweep(
            cases, cache_dir=scratch / "baseline", experiments=ids
        )
        baseline = _report_bytes(baseline_sweep)
        report.checks.append(
            ChaosCheck(
                "baseline",
                baseline_sweep.ok,
                f"{len(cases)} fault-free cases completed",
            )
        )
        if not baseline_sweep.ok:
            return report

        report.checks.append(_check_chaos_sweep(seed, cases, ids, workers, retries, scratch, baseline))
        report.checks.extend(_check_kill_resume(seed, cases, ids, scratch, baseline))
        report.checks.append(_check_degradation(cases, ids, scratch, baseline))
        report.checks.append(_check_warm_reread(cases, ids, scratch, baseline))
        return report
    finally:
        if not keep and root is None:
            shutil.rmtree(scratch, ignore_errors=True)


def _check_chaos_sweep(
    seed, cases, ids, workers, retries, scratch, baseline
) -> ChaosCheck:
    """Invariant 2: the generated fault schedule cannot change the output."""
    plan = FaultPlan.generate(seed, scratch / "faultstate")
    chaotic = run_sweep(
        cases,
        cache_dir=scratch / "chaos",
        experiments=ids,
        workers=workers,
        retries=retries,
        retry_delay=0.01,
        fault_plan=plan,
    )
    if not chaotic.ok:
        bad = [f"{c.spec}={c.status}" for c in chaotic.cases if c.status in ("failed", "quarantined")]
        return ChaosCheck("chaos-sweep", False, f"cases did not complete: {', '.join(bad)}")
    identical, detail = _identical(baseline, _report_bytes(chaotic))
    retried = sum(1 for case in chaotic.cases if case.attempts > 1)
    return ChaosCheck(
        "chaos-sweep", identical, f"{detail}; {retried} case(s) needed retries"
    )


def _check_kill_resume(seed, cases, ids, scratch, baseline) -> list[ChaosCheck]:
    """Invariant 3: an interrupt at a seed-derived point resumes cleanly."""
    kill_point = 1 + seed % max(1, len(cases) - 1)
    kwargs = dict(cache_dir=scratch / "resume", experiments=ids)
    interrupted = False
    try:
        run_sweep(cases, fail_after=kill_point, **kwargs)
    except SweepInterrupted:
        interrupted = True
    checks = [
        ChaosCheck(
            "kill-point",
            interrupted,
            f"sweep interrupted after {kill_point} case(s)"
            if interrupted
            else f"fail_after={kill_point} did not interrupt",
        )
    ]
    if not interrupted:
        return checks
    resumed = run_sweep(cases, **kwargs)
    accounted = (
        resumed.count("resumed") + resumed.count("completed") + resumed.count("cached")
    )
    if not resumed.ok or accounted != len(cases):
        checks.append(
            ChaosCheck(
                "resume", False, f"resume accounted for {accounted}/{len(cases)} cases"
            )
        )
        return checks
    identical, detail = _identical(baseline, _report_bytes(resumed))
    checks.append(
        ChaosCheck(
            "resume",
            identical,
            f"resumed {resumed.count('resumed')} case(s), completed the rest; {detail}",
        )
    )
    return checks


def _check_degradation(cases, ids, scratch, baseline) -> ChaosCheck:
    """Invariant 4: a disk tier that rejects every write degrades, not fails."""
    plan = FaultPlan(
        seed=0,
        state_dir=str(scratch / "faultstate-degraded"),
        rules=(FaultRule("store-write", rate=1.0, times=None, param="ENOSPC"),),
    )
    degraded_sweep = run_sweep(
        cases,
        cache_dir=scratch / "degraded",
        experiments=ids,
        retries=0,
        fault_plan=plan,
    )
    if not degraded_sweep.ok:
        return ChaosCheck("degradation", False, "sweep failed under persistent ENOSPC")
    flags = [
        (case.cache_stats or {}).get("store", {}).get("degraded")
        for case in degraded_sweep.cases
    ]
    if not all(flags):
        return ChaosCheck(
            "degradation", False, f"disk tier did not report degraded: {flags}"
        )
    identical, detail = _identical(baseline, _report_bytes(degraded_sweep))
    return ChaosCheck(
        "degradation",
        identical,
        f"every case completed memory-only under ENOSPC; {detail}",
    )


def _check_warm_reread(cases, ids, scratch, baseline) -> ChaosCheck:
    """Invariant 5: corrupted artifacts quarantine and rebuild on re-read."""
    warm = run_sweep(
        cases,
        cache_dir=scratch / "chaos",  # may hold corrupted artifacts
        sweep_dir=scratch / "chaos-warm",
        experiments=ids,
    )
    if not warm.ok:
        return ChaosCheck("warm-reread", False, "warm sweep over chaos cache failed")
    identical, detail = _identical(baseline, _report_bytes(warm))
    quarantined = max(
        (case.cache_stats or {}).get("store", {}).get("quarantined_files", 0)
        for case in warm.cases
    )
    return ChaosCheck(
        "warm-reread",
        identical,
        f"{detail}; {quarantined} corrupted artifact(s) in quarantine",
    )
