"""CODEC family: schema resolution plus the drift cross-check."""

import ast
import pathlib

from repro.devtools.engine import LintContext, ModuleUnderLint
from repro.devtools.rules_codec import crosscheck
from repro.devtools.schema import collect_schemas

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _crosscheck_fixture(name: str):
    path = pathlib.Path(__file__).parent / "fixtures" / name
    module = ModuleUnderLint.parse(f"tests/devtools/fixtures/{name}", path.read_text())
    context = LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))
    return crosscheck(module, context)


class TestSchemaCollection:
    def test_dataclass_fields_in_declaration_order(self):
        tree = ast.parse(
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n"
            "@dataclass\n"
            "class Point:\n"
            "    x: int\n"
            "    y: int = 0\n"
            "    kind: ClassVar[str] = 'point'\n"
            "    def shift(self):\n"
            "        self.moved = True\n"
        )
        schema = collect_schemas(tree, "geo")["Point"]
        assert schema.is_dataclass
        assert schema.fields == ("x", "y")  # ClassVar excluded
        assert schema.init_params == ("x", "y")
        assert {"x", "y", "kind", "shift", "moved"} <= set(schema.members)

    def test_plain_class_self_attributes_and_init_params(self):
        tree = ast.parse(
            "class Index:\n"
            "    def __init__(self, dataset):\n"
            "        self._attach(dataset)\n"
            "    @classmethod\n"
            "    def hollow(cls, dataset):\n"
            "        self = object.__new__(cls)\n"
            "        return self\n"
            "    def _attach(self, dataset):\n"
            "        self.dataset = dataset\n"
            "        self.rows = []\n"
        )
        schema = collect_schemas(tree, "idx")["Index"]
        assert not schema.is_dataclass
        assert schema.fields == ("dataset", "rows")
        assert schema.init_params == ("dataset",)
        assert "hollow" in schema.members

    def test_with_extra_field_clone(self):
        tree = ast.parse(
            "from dataclasses import dataclass\n@dataclass\nclass P:\n    x: int\n"
        )
        schema = collect_schemas(tree, "m")["P"].with_extra_field("shadow")
        assert schema.fields == ("x", "shadow")
        assert "shadow" in schema.members


class TestFixtures:
    def test_dirty_fixture_unknown_attribute_and_kwarg(self, lint_fixture):
        findings = lint_fixture("codec_dirty.py", rules=("CODEC001",))
        messages = "\n".join(finding.message for finding in findings)
        assert len(findings) == 2
        assert "unknown attribute 'missing'" in messages
        assert "unknown constructor argument 'bogus'" in messages

    def test_dirty_fixture_uncovered_field(self, lint_fixture):
        findings = lint_fixture("codec_dirty.py", rules=("CODEC002",))
        (finding,) = findings
        assert "field 'forgotten'" in finding.message

    def test_clean_fixture_has_no_findings(self, lint_fixture):
        assert lint_fixture("codec_clean.py") == []

    def test_non_codec_module_is_skipped(self, lint_source):
        findings = lint_source(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class P:\n"
            "    x: int\n"
            "p = P(x=1)\n"
            "print(p.nonexistent)\n"
        )
        # No StageCodec subclass in the module: the CODEC family self-gates off.
        assert findings == []


class TestRealCodecs:
    def test_crosscheck_reaches_every_registered_codec(self):
        source_path = REPO_ROOT / "src/repro/storage/codecs.py"
        module = ModuleUnderLint.parse(
            "src/repro/storage/codecs.py", source_path.read_text()
        )
        context = LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))
        analysis = crosscheck(module, context)
        assert analysis is not None
        # Every stage's primary artifact class is resolved and touched.
        for class_name in (
            "SyntheticInternet",
            "PolicyStageArtifact",
            "ASPolicy",
            "Route",
            "SimulationResult",
            "ObservationArtifact",
            "IrrDatabase",
            "MeasurementIndex",
            "GlassIndex",
        ):
            assert class_name in analysis.registry, class_name
            assert analysis.touched.get(class_name), class_name

    def test_real_codecs_have_only_the_baselined_findings(self):
        source_path = REPO_ROOT / "src/repro/storage/codecs.py"
        module = ModuleUnderLint.parse(
            "src/repro/storage/codecs.py", source_path.read_text()
        )
        context = LintContext(root=REPO_ROOT, src_roots=(REPO_ROOT / "src",))
        analysis = crosscheck(module, context)
        # The allocator round-trips wholesale via dump_state()/from_state();
        # its private fields are the acknowledged baseline entries.
        assert sorted({finding.rule for finding in analysis.findings}) in (
            [],
            ["CODEC002"],
        )
        for finding in analysis.findings:
            assert "AddressAllocator" in finding.message
