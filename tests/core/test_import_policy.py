"""Tests for the import-policy (LOCAL_PREF typicality) inference."""

import pytest

from repro.bgp.rib import LocRib
from repro.bgp.route import Route
from repro.core.import_policy import ImportPolicyAnalyzer
from repro.data.rpsl import AutNumObject, IrrDatabase, PolicyLine, local_pref_to_rpsl_pref
from repro.exceptions import InferenceError
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.collector import LookingGlass
from repro.topology.graph import AnnotatedASGraph


def small_graph():
    """AS10's neighbors: AS1 provider, AS2 peer, AS3 and AS4 customers."""
    return AnnotatedASGraph.from_edges(
        provider_customer=[(1, 10), (10, 3), (10, 4)],
        peer_peer=[(10, 2)],
    )


def glass_with_routes(routes):
    table = LocRib(owner=10)
    table.add_routes(routes)
    return LookingGlass(10, table)


def route(prefix, path, local_pref):
    return Route(
        prefix=Prefix.parse(prefix), as_path=ASPath.parse(path), local_pref=local_pref
    )


class TestLookingGlassTypicality:
    def test_typical_prefix(self):
        glass = glass_with_routes(
            [
                route("10.9.0.0/16", "3 9", 110),
                route("10.9.0.0/16", "2 9", 100),
                route("10.9.0.0/16", "1 9", 90),
            ]
        )
        result = ImportPolicyAnalyzer(small_graph()).analyze_looking_glass(glass)
        assert result.comparable_prefixes == 1
        assert result.typical_prefixes == 1
        assert result.percent_typical == 100.0

    def test_atypical_prefix_detected(self):
        glass = glass_with_routes(
            [
                route("10.9.0.0/16", "3 9", 90),   # customer route below peer
                route("10.9.0.0/16", "2 9", 100),
            ]
        )
        result = ImportPolicyAnalyzer(small_graph()).analyze_looking_glass(glass)
        assert result.comparable_prefixes == 1
        assert result.typical_prefixes == 0
        assert result.atypical_examples == [Prefix.parse("10.9.0.0/16")]

    def test_peer_vs_provider_ordering_checked(self):
        glass = glass_with_routes(
            [
                route("10.9.0.0/16", "2 9", 90),   # peer
                route("10.9.0.0/16", "1 9", 100),  # provider above peer: atypical
            ]
        )
        result = ImportPolicyAnalyzer(small_graph()).analyze_looking_glass(glass)
        assert result.typical_prefixes == 0

    def test_single_class_prefixes_not_comparable(self):
        glass = glass_with_routes(
            [
                route("10.9.0.0/16", "3 9", 110),
                route("10.9.0.0/16", "4 9", 105),
            ]
        )
        result = ImportPolicyAnalyzer(small_graph()).analyze_looking_glass(glass)
        assert result.comparable_prefixes == 0
        assert result.percent_typical == 100.0

    def test_equal_preference_across_classes_is_typical(self):
        glass = glass_with_routes(
            [
                route("10.9.0.0/16", "3 9", 100),
                route("10.9.0.0/16", "2 9", 100),
            ]
        )
        result = ImportPolicyAnalyzer(small_graph()).analyze_looking_glass(glass)
        # Equal values do not violate the strict order in either direction is
        # false — customer must be strictly higher, so this is atypical.
        assert result.typical_prefixes == 0

    def test_unknown_neighbors_ignored(self):
        glass = glass_with_routes(
            [
                route("10.9.0.0/16", "999 9", 50),
                route("10.9.0.0/16", "3 9", 110),
            ]
        )
        result = ImportPolicyAnalyzer(small_graph()).analyze_looking_glass(glass)
        assert result.comparable_prefixes == 0


class TestDatasetTypicality:
    def test_most_prefixes_typical_on_dataset(self, dataset, graph, glasses):
        analyzer = ImportPolicyAnalyzer(graph)
        results = analyzer.analyze_many(glasses)
        assert results
        comparable = [r for r in results if r.comparable_prefixes >= 20]
        assert comparable, "expected Looking Glass ASes with comparable prefixes"
        for result in comparable:
            assert result.percent_typical > 85.0

    def test_atypical_fraction_is_small_overall(self, dataset, graph, glasses):
        analyzer = ImportPolicyAnalyzer(graph)
        results = analyzer.analyze_many(glasses)
        total = sum(r.comparable_prefixes for r in results)
        typical = sum(r.typical_prefixes for r in results)
        assert total > 0
        assert typical / total > 0.9


class TestIrrTypicality:
    def test_typical_registration(self):
        irr = IrrDatabase()
        obj = AutNumObject(asn=10, last_updated="20020601")
        for neighbor, pref in ((1, 90), (2, 100), (3, 110), (4, 110)):
            obj.imports.append(
                PolicyLine("import", peer_as=neighbor, pref=local_pref_to_rpsl_pref(pref))
            )
        irr.add(obj)
        results = ImportPolicyAnalyzer(small_graph()).analyze_irr(irr, min_neighbors=3)
        assert len(results) == 1
        assert results[0].asn == 10
        assert results[0].percent_typical == 100.0

    def test_atypical_registration_detected(self):
        irr = IrrDatabase()
        obj = AutNumObject(asn=10, last_updated="20020601")
        for neighbor, pref in ((1, 120), (2, 100), (3, 110), (4, 110)):
            obj.imports.append(
                PolicyLine("import", peer_as=neighbor, pref=local_pref_to_rpsl_pref(pref))
            )
        irr.add(obj)
        results = ImportPolicyAnalyzer(small_graph()).analyze_irr(irr, min_neighbors=3)
        assert results[0].percent_typical < 100.0

    def test_stale_objects_filtered_by_year(self):
        irr = IrrDatabase()
        obj = AutNumObject(asn=10, last_updated="20010601")
        for neighbor, pref in ((1, 90), (2, 100), (3, 110), (4, 110)):
            obj.imports.append(
                PolicyLine("import", peer_as=neighbor, pref=local_pref_to_rpsl_pref(pref))
            )
        irr.add(obj)
        analyzer = ImportPolicyAnalyzer(small_graph())
        assert analyzer.analyze_irr(irr, min_neighbors=3, updated_during="2002") == []
        assert analyzer.analyze_irr(irr, min_neighbors=3, updated_during=None)

    def test_min_neighbors_filter(self):
        irr = IrrDatabase()
        obj = AutNumObject(asn=10, last_updated="20020601")
        obj.imports.append(PolicyLine("import", peer_as=1, pref=910))
        obj.imports.append(PolicyLine("import", peer_as=3, pref=890))
        irr.add(obj)
        analyzer = ImportPolicyAnalyzer(small_graph())
        assert analyzer.analyze_irr(irr, min_neighbors=3) == []
        assert len(analyzer.analyze_irr(irr, min_neighbors=2)) == 1

    def test_min_neighbors_validation(self):
        with pytest.raises(InferenceError):
            ImportPolicyAnalyzer(small_graph()).analyze_irr(IrrDatabase(), min_neighbors=1)

    def test_dataset_irr_mostly_typical(self, dataset, graph):
        analyzer = ImportPolicyAnalyzer(graph)
        results = analyzer.analyze_irr(dataset.irr, min_neighbors=5)
        assert results
        average = sum(r.percent_typical for r in results) / len(results)
        assert average > 90.0
