"""Assembly of the full study dataset (paper Section 3, Table 1).

The paper's dataset is: the Oregon RouteViews table (56 peer ASes, AS paths
only), BGP tables from 15 ASes' Looking Glass servers (LOCAL_PREF and
communities visible, 3 of them Tier-1s), and the IRR database.  A
:class:`StudyDataset` is the offline substitute: one synthetic Internet, one
policy assignment, one propagation run observed at the collector's vantage
ASes and at the Looking Glass ASes, plus a synthetic IRR.

Everything the experiment modules need hangs off this object, and
:func:`default_dataset` memoises the standard configuration so the benchmark
harness pays the simulation cost only once per session.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field

from repro.data.rpsl import IrrDatabase
from repro.exceptions import SimulationError
from repro.net.asn import ASN
from repro.simulation.collector import CollectorTable, LookingGlass, RouteViewsCollector
from repro.simulation.policies import PolicyAssignment, PolicyGenerator, PolicyParameters
from repro.simulation.propagation import PropagationEngine, SimulationResult
from repro.topology.generator import GeneratorParameters, InternetGenerator, SyntheticInternet

#: Regions used to synthesise the Table 1 style inventory.
_REGIONS = ("NA", "Eu", "Au", "As")
_REGION_WEIGHTS = (0.55, 0.35, 0.05, 0.05)


@dataclass
class DatasetParameters:
    """Configuration of the study dataset.

    The default topology is deliberately smaller than the default
    :class:`GeneratorParameters` Internet so that the full experiment suite
    runs in minutes; the scale can be raised without touching any experiment
    code.

    Attributes:
        topology: the synthetic-Internet generator parameters.
        policy: the policy-generator parameters.
        looking_glass_count: number of Looking Glass ASes (the paper has 15).
        tier1_looking_glass_count: how many of them are Tier-1s (paper: 3).
        collector_vantage_count: number of ASes peering with the collector
            (the paper's Oregon server peers with 56).
        irr_registration_probability: fraction of ASes registered in the IRR.
        irr_stale_probability: fraction of registered objects that are stale.
        seed: seed for vantage/looking-glass sampling and Table 1 metadata.
    """

    topology: GeneratorParameters = field(
        default_factory=lambda: GeneratorParameters(
            seed=2002,
            tier1_count=6,
            tier2_count=18,
            tier3_count=45,
            stub_count=260,
        )
    )
    policy: PolicyParameters = field(default_factory=PolicyParameters)
    looking_glass_count: int = 15
    tier1_looking_glass_count: int = 3
    collector_vantage_count: int = 24
    irr_registration_probability: float = 0.7
    irr_stale_probability: float = 0.15
    seed: int = 1118

    def validate(self) -> None:
        """Raise :class:`SimulationError` on inconsistent settings."""
        if self.tier1_looking_glass_count > self.looking_glass_count:
            raise SimulationError(
                "tier1_looking_glass_count cannot exceed looking_glass_count"
            )
        if self.collector_vantage_count < 1:
            raise SimulationError("collector_vantage_count must be at least 1")


@dataclass
class ASInfo:
    """Table 1 style metadata about one AS in the dataset."""

    asn: ASN
    name: str
    degree: int
    location: str
    tier: int
    is_looking_glass: bool = False
    is_vantage: bool = False


@dataclass
class StudyDataset:
    """The complete dataset every experiment consumes.

    Attributes:
        parameters: the dataset configuration.
        internet: the synthetic Internet (topology, tiers, prefixes).
        assignment: the per-AS policies (with ground truth).
        result: the propagation result observed at vantage + Looking Glass ASes.
        collector: the RouteViews-style collector table.
        looking_glasses: Looking Glass views keyed by AS.
        irr: the synthetic IRR database.
        vantage_ases: ASes peering with the collector.
        looking_glass_ases: ASes with a Looking Glass.
        as_info: Table 1 style metadata per AS in the dataset inventory.
    """

    parameters: DatasetParameters
    internet: SyntheticInternet
    assignment: PolicyAssignment
    result: SimulationResult
    collector: CollectorTable
    looking_glasses: dict[ASN, LookingGlass]
    irr: IrrDatabase
    vantage_ases: list[ASN]
    looking_glass_ases: list[ASN]
    as_info: dict[ASN, ASInfo] = field(default_factory=dict)

    # -- convenience used across experiments -----------------------------------

    @property
    def tier1_ases(self) -> list[ASN]:
        """The Tier-1 clique of the synthetic Internet."""
        return self.internet.tier1

    @property
    def ground_truth_graph(self):
        """The ground-truth annotated AS graph."""
        return self.internet.graph

    def looking_glass_of(self, asn: ASN) -> LookingGlass:
        """Return the Looking Glass view of an AS.

        Raises:
            SimulationError: if the AS has no Looking Glass in this dataset.
        """
        glass = self.looking_glasses.get(asn)
        if glass is None:
            raise SimulationError(f"AS{asn} has no Looking Glass in this dataset")
        return glass

    def providers_under_study(self, count: int = 3) -> list[ASN]:
        """The largest Tier-1 ASes (by degree), mirroring AS1/AS3549/AS7018."""
        return sorted(
            self.tier1_ases,
            key=lambda asn: self.ground_truth_graph.degree(asn),
            reverse=True,
        )[:count]


def build_dataset(parameters: DatasetParameters | None = None) -> StudyDataset:
    """Generate the Internet, assign policies, simulate, and observe.

    This is the one entry point the examples, tests and benchmarks use to get
    a fully populated dataset.
    """
    params = parameters or DatasetParameters()
    params.validate()
    rng = random.Random(params.seed)

    internet = InternetGenerator(params.topology).generate()
    graph = internet.graph
    tier1 = internet.tier1

    # Pick the Looking Glass ASes: a few Tier-1s plus transit ASes below them.
    non_tier1_transit = sorted(
        asn for asn in graph.ases() if asn not in set(tier1) and graph.customers_of(asn)
    )
    tier1_lg = tier1[: params.tier1_looking_glass_count]
    other_lg_count = min(
        params.looking_glass_count - len(tier1_lg), len(non_tier1_transit)
    )
    other_lg = rng.sample(non_tier1_transit, k=other_lg_count) if other_lg_count else []
    looking_glass_ases = sorted(set(tier1_lg) | set(other_lg))

    # Pick the collector's vantage ASes: every Tier-1 plus large transit ASes.
    vantage_pool = sorted(
        (asn for asn in non_tier1_transit), key=graph.degree, reverse=True
    )
    extra_vantages = vantage_pool[: max(0, params.collector_vantage_count - len(tier1))]
    vantage_ases = sorted(set(tier1) | set(extra_vantages))

    policy_generator = PolicyGenerator(params.policy)
    assignment = policy_generator.generate(internet, looking_glass_ases=looking_glass_ases)

    observed = sorted(set(vantage_ases) | set(looking_glass_ases))
    engine = PropagationEngine(internet, assignment, observed_ases=observed)
    result = engine.run()

    collector = RouteViewsCollector(vantage_ases).collect(result)
    looking_glasses = {
        asn: LookingGlass.from_result(result, asn) for asn in looking_glass_ases
    }
    irr = IrrDatabase.from_assignment(
        internet,
        assignment,
        registration_probability=params.irr_registration_probability,
        stale_probability=params.irr_stale_probability,
        seed=params.seed,
    )

    dataset = StudyDataset(
        parameters=params,
        internet=internet,
        assignment=assignment,
        result=result,
        collector=collector,
        looking_glasses=looking_glasses,
        irr=irr,
        vantage_ases=vantage_ases,
        looking_glass_ases=looking_glass_ases,
    )
    _attach_as_info(dataset, rng)
    return dataset


def _attach_as_info(dataset: StudyDataset, rng: random.Random) -> None:
    """Synthesise the Table 1 style inventory for the dataset's vantage points."""
    graph = dataset.ground_truth_graph
    tiers = dataset.internet.tiers
    inventory_ases = sorted(set(dataset.vantage_ases) | set(dataset.looking_glass_ases))
    for asn in inventory_ases:
        location = rng.choices(_REGIONS, weights=_REGION_WEIGHTS, k=1)[0]
        dataset.as_info[asn] = ASInfo(
            asn=asn,
            name=f"AS{asn} Networks",
            degree=graph.degree(asn),
            location=location,
            tier=tiers.tier_of(asn),
            is_looking_glass=asn in set(dataset.looking_glass_ases),
            is_vantage=asn in set(dataset.vantage_ases),
        )


@functools.lru_cache(maxsize=2)
def default_dataset() -> StudyDataset:
    """The memoised standard dataset shared by experiments and benchmarks."""
    return build_dataset(DatasetParameters())


@functools.lru_cache(maxsize=2)
def small_dataset() -> StudyDataset:
    """A smaller memoised dataset for quick runs and the test suite."""
    parameters = DatasetParameters(
        topology=GeneratorParameters(
            seed=7, tier1_count=5, tier2_count=10, tier3_count=20, stub_count=110
        ),
        looking_glass_count=8,
        tier1_looking_glass_count=3,
        collector_vantage_count=12,
    )
    return build_dataset(parameters)
