"""Command-line entry point: run the experiments and print the tables.

Usage::

    python -m repro.experiments                 # run everything (standard dataset)
    python -m repro.experiments table5 fig2     # run selected experiments
    python -m repro.experiments --small         # use the small dataset (quick)
    python -m repro.experiments --list          # list experiment identifiers
"""

from __future__ import annotations

import argparse
import sys

from repro.data.dataset import default_dataset, small_dataset
from repro.experiments.registry import all_experiments, get_experiment


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their rendered results."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the tables and figures of Wang & Gao (IMC 2003).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment identifiers to run (default: all)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the small dataset for a quick run",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_only", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_only:
        for experiment in all_experiments():
            print(f"{experiment.experiment_id:10s} {experiment.title}")
        return 0

    dataset = small_dataset() if args.small else default_dataset()
    if args.experiments:
        selected = [get_experiment(identifier) for identifier in args.experiments]
    else:
        selected = all_experiments()

    for experiment in selected:
        result = experiment.run(dataset)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
