"""The staged, cacheable Study — the session API's central object.

A :class:`Study` is a lazy pipeline over a :class:`~repro.session.stages.StudyConfig`:
each stage (topology, policies, propagation, observation, irr, analysis) is
built on first use and stored in a content-addressed :class:`~repro.session.cache.StageCache`
keyed by the stage's parameters plus its upstream keys.  Studies derived with
:meth:`Study.with_` share the cache, so overriding a downstream stage reuses
every upstream artifact already built::

    study = Study(cache=StageCache())
    study.dataset()                                  # builds everything once
    for p in policy_grid:
        study.with_(policy=p).dataset()              # topology is a cache hit

:meth:`Study.dataset` assembles the familiar
:class:`~repro.data.dataset.StudyDataset` as a *compatibility view* over the
stage artifacts, so everything written against the flat dataset keeps
working.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.data.dataset import ASInfo, DatasetParameters, StudyDataset
from repro.data.rpsl import IrrDatabase
from repro.session.cache import GLOBAL_CACHE, StageCache, fingerprint
from repro.session.stages import (
    ALL_STAGES,
    AnalysisParameters,
    IrrParameters,
    ObservationArtifact,
    ObservationParameters,
    PolicyStageArtifact,
    PropagationSettings,
    Stage,
    StageView,
    StudyConfig,
)
from repro.simulation.collector import LookingGlass, RouteViewsCollector
from repro.simulation.fastpath import FastPropagationEngine
from repro.simulation.policies import PolicyGenerator, PolicyParameters
from repro.simulation.propagation import PropagationEngine, SimulationResult
from repro.topology.generator import GeneratorParameters, InternetGenerator, SyntheticInternet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.engine import AnalysisEngine

#: Regions used to synthesise the Table 1 style inventory.
_REGIONS = ("NA", "Eu", "Au", "As")
_REGION_WEIGHTS = (0.55, 0.35, 0.05, 0.05)


class Study:
    """A staged, cacheable study of one synthetic Internet.

    Args:
        config: the per-stage configuration (defaults to the standard one).
        cache: the stage cache to build into.  Defaults to the process-wide
            cache so scenario studies and the legacy dataset helpers share
            artifacts; pass a fresh :class:`StageCache` for isolation.
        propagation: execution settings of the propagation stage (engine
            choice + worker count); defaults to the fast engine, one worker.
    """

    def __init__(
        self,
        config: StudyConfig | None = None,
        *,
        cache: StageCache | None = None,
        propagation: PropagationSettings | None = None,
    ):
        self.config = config or StudyConfig()
        self.config.validate()
        self.cache = cache if cache is not None else GLOBAL_CACHE
        self.propagation_settings = propagation or PropagationSettings()
        self.propagation_settings.validate()

    # -- derivation ------------------------------------------------------------

    def with_(
        self,
        *,
        topology: GeneratorParameters | None = None,
        policy: PolicyParameters | None = None,
        observation: ObservationParameters | None = None,
        irr: IrrParameters | None = None,
        analysis: AnalysisParameters | None = None,
    ) -> "Study":
        """A study with some stages overridden, sharing this study's cache.

        Stages upstream of every override keep their cache keys, so their
        artifacts are reused rather than rebuilt.
        """
        overrides = {
            name: value
            for name, value in (
                ("topology", topology),
                ("policy", policy),
                ("observation", observation),
                ("irr", irr),
                ("analysis", analysis),
            )
            if value is not None
        }
        return Study(
            replace(self.config, **overrides),
            cache=self.cache,
            propagation=self.propagation_settings,
        )

    def seeded(self, seed: int) -> "Study":
        """A study whose every stage seed derives deterministically from ``seed``.

        Observation and IRR share one derived seed, keeping the config inside
        the space the flat :class:`DatasetParameters` view can represent
        faithfully (its single ``seed`` field covers both).
        """
        config = replace(
            self.config,
            topology=replace(self.config.topology, seed=seed),
            policy=replace(self.config.policy, seed=seed + 1),
            observation=replace(self.config.observation, seed=seed + 2),
            irr=replace(self.config.irr, seed=seed + 2),
        )
        return Study(config, cache=self.cache, propagation=self.propagation_settings)

    # -- stage keys ------------------------------------------------------------

    def stage_key(self, stage: Stage) -> str:
        """The content address of one stage under this config."""
        config = self.config
        if stage is Stage.TOPOLOGY:
            return fingerprint(Stage.TOPOLOGY, config.topology)
        if stage is Stage.POLICIES:
            return fingerprint(
                Stage.POLICIES,
                self.stage_key(Stage.TOPOLOGY),
                config.observation,
                config.policy,
            )
        if stage is Stage.PROPAGATION:
            # The engine name is part of the key so an explicit legacy run
            # really builds with the legacy engine; the worker count is not
            # (sharding never changes the merged artifact).
            return fingerprint(
                Stage.PROPAGATION,
                self.stage_key(Stage.POLICIES),
                self.propagation_settings.engine,
            )
        if stage is Stage.OBSERVATION:
            return fingerprint(
                Stage.OBSERVATION, self.stage_key(Stage.PROPAGATION), config.observation
            )
        if stage is Stage.IRR:
            return fingerprint(Stage.IRR, self.stage_key(Stage.POLICIES), config.irr)
        if stage is Stage.ANALYSIS:
            # The index compiles every observed artifact, so its address
            # covers the full upstream pipeline (observation subsumes
            # topology/policies/propagation) plus the IRR.
            return fingerprint(
                Stage.ANALYSIS,
                self.stage_key(Stage.OBSERVATION),
                self.stage_key(Stage.IRR),
                config.analysis,
            )
        raise ValueError(f"unknown stage: {stage!r}")

    def _build(self, stage: Stage, builder) -> object:
        encode = decode = None
        if self.cache.disk is not None:
            # Codecs are only needed (and only imported) when a disk tier is
            # attached; memory-only caches skip the storage layer entirely.
            from repro.storage.codecs import codec_for

            codec = codec_for(stage.value)
            if codec is not None:
                encode = codec.encode
                decode = lambda data: codec.decode(data, self)  # noqa: E731
        return self.cache.get_or_build(
            stage.value, self.stage_key(stage), builder, encode=encode, decode=decode
        )

    # -- stages ----------------------------------------------------------------

    def topology(self) -> SyntheticInternet:
        """The synthetic Internet (stage 1)."""
        return self._build(
            Stage.TOPOLOGY, lambda: InternetGenerator(self.config.topology).generate()
        )

    def policies(self) -> PolicyStageArtifact:
        """The vantage plan and the policy assignment (stage 2)."""
        return self._build(Stage.POLICIES, self._build_policies)

    def _build_policies(self) -> PolicyStageArtifact:
        internet = self.topology()
        observation = self.config.observation
        graph = internet.graph
        tier1 = internet.tier1
        rng = random.Random(observation.seed)

        # Pick the Looking Glass ASes: a few Tier-1s plus transit ASes below them.
        non_tier1_transit = sorted(
            asn
            for asn in graph.ases()
            if asn not in set(tier1) and graph.customers_of(asn)
        )
        tier1_lg = tier1[: observation.tier1_looking_glass_count]
        other_lg_count = min(
            observation.looking_glass_count - len(tier1_lg), len(non_tier1_transit)
        )
        other_lg = (
            rng.sample(non_tier1_transit, k=other_lg_count) if other_lg_count else []
        )
        looking_glass_ases = sorted(set(tier1_lg) | set(other_lg))

        # Pick the collector's vantage ASes: every Tier-1 plus large transit ASes.
        vantage_pool = sorted(non_tier1_transit, key=graph.degree, reverse=True)
        extra_vantages = vantage_pool[
            : max(0, observation.collector_vantage_count - len(tier1))
        ]
        vantage_ases = sorted(set(tier1) | set(extra_vantages))

        assignment = PolicyGenerator(self.config.policy).generate(
            internet, looking_glass_ases=looking_glass_ases
        )
        return PolicyStageArtifact(
            vantage_ases=tuple(vantage_ases),
            looking_glass_ases=tuple(looking_glass_ases),
            assignment=assignment,
        )

    def _compiled_topology_key(self) -> str:
        """Content address of the compiled-topology tier.

        Keyed by the policies stage (compilation depends only on topology,
        policies and the observation plan) so every sweep case sharing those
        upstream stages attaches the same artifact — worker count and engine
        choice never enter the key.
        """
        from repro.simulation.fastpath import shm

        return fingerprint(shm.STAGE, self.stage_key(Stage.POLICIES))

    def _compiled_topology(self, plan: PolicyStageArtifact):
        """A compiled topology for the fast engine, store-backed when possible.

        With a disk tier attached, the lowered topology is cached as a
        ``compiled-topology`` artifact: on a hit the artifact file is
        mmap'ed and a zero-copy :class:`SharedTopologyView` is returned —
        pool workers then re-attach the same file by path (sharing OS page
        cache) instead of the parent publishing a fresh shared-memory
        segment.  Without a disk tier the topology is compiled in-process.
        """
        from repro.simulation.fastpath import shm

        disk = self.cache.disk
        if disk is None:
            return None  # engine compiles in-process
        key = self._compiled_topology_key()
        artifact = disk.read_view(shm.STAGE, key)
        if artifact is not None:
            try:
                return shm.view_over_payload(
                    artifact.payload, ("file", str(artifact.path)), retain=artifact
                )
            except Exception:
                artifact.close()
        from repro.simulation.fastpath import compile_topology

        compiled = compile_topology(
            self.topology(), plan.assignment, sorted(set(plan.observed_ases))
        )
        try:
            disk.write(shm.STAGE, key, shm.pack_topology(compiled))
        except OSError:
            pass  # best-effort: a read-only store never blocks the run
        return compiled

    def propagation(self) -> SimulationResult:
        """The propagation run observed at the planned vantage ASes (stage 3).

        Executed by the engine selected in :class:`PropagationSettings` —
        the compiled fast engine by default, with optional per-prefix
        process-pool fan-out (``workers``) over the zero-copy shared
        topology.  With a disk cache attached, the compiled topology itself
        is a store tier (``compiled-topology``), so concurrent sweep cases
        attach one mmap'ed artifact instead of each re-compiling.
        """

        def build() -> SimulationResult:
            plan = self.policies()
            settings = self.propagation_settings
            if settings.engine == "legacy":
                engine = PropagationEngine(
                    self.topology(), plan.assignment, observed_ases=plan.observed_ases
                )
            else:
                engine = FastPropagationEngine(
                    self.topology(),
                    plan.assignment,
                    observed_ases=plan.observed_ases,
                    workers=settings.workers,
                    compiled=self._compiled_topology(plan),
                )
            return engine.run()

        return self._build(Stage.PROPAGATION, build)

    def observation(self) -> ObservationArtifact:
        """Collector table, Looking Glass views and Table 1 inventory (stage 4)."""
        return self._build(Stage.OBSERVATION, self._build_observation)

    def _build_observation(self) -> ObservationArtifact:
        internet = self.topology()
        plan = self.policies()
        result = self.propagation()
        collector = RouteViewsCollector(list(plan.vantage_ases)).collect(result)
        looking_glasses = {
            asn: LookingGlass.from_result(result, asn)
            for asn in plan.looking_glass_ases
        }
        as_info = self._build_as_info(internet, plan)
        return ObservationArtifact(
            collector=collector, looking_glasses=looking_glasses, as_info=as_info
        )

    def _build_as_info(
        self, internet: SyntheticInternet, plan: PolicyStageArtifact
    ) -> dict:
        rng = random.Random(f"as-info:{self.config.observation.seed}")
        graph = internet.graph
        inventory = sorted(set(plan.vantage_ases) | set(plan.looking_glass_ases))
        lg_set = set(plan.looking_glass_ases)
        vantage_set = set(plan.vantage_ases)
        info = {}
        for asn in inventory:
            location = rng.choices(_REGIONS, weights=_REGION_WEIGHTS, k=1)[0]
            info[asn] = ASInfo(
                asn=asn,
                name=f"AS{asn} Networks",
                degree=graph.degree(asn),
                location=location,
                tier=internet.tiers.tier_of(asn),
                is_looking_glass=asn in lg_set,
                is_vantage=asn in vantage_set,
            )
        return info

    def irr(self) -> IrrDatabase:
        """The synthetic IRR database (stage 5)."""

        def build() -> IrrDatabase:
            parameters = self.config.irr
            return IrrDatabase.from_assignment(
                self.topology(),
                self.policies().assignment,
                registration_probability=parameters.registration_probability,
                stale_probability=parameters.stale_probability,
                seed=parameters.seed,
            )

        return self._build(Stage.IRR, build)

    def analysis(self) -> "AnalysisEngine":
        """The one-pass analyzer engine over the compiled index (stage 6).

        The engine itself is memoised on the assembled dataset (so bare
        ``StudyDataset`` consumers share it); routing the build through the
        stage cache additionally records hit/miss accounting and lets
        ``run_suite`` amortise one index across every experiment of a suite.
        """

        def build() -> "AnalysisEngine":
            return self.dataset().analysis_engine()

        return self._build(Stage.ANALYSIS, build)

    # -- assembly --------------------------------------------------------------

    def dataset(self) -> StudyDataset:
        """The flat :class:`StudyDataset` compatibility view over the stages.

        The assembled view is itself cached, so repeated calls (and the
        legacy ``default_dataset``/``small_dataset`` helpers built on top)
        return the same object for the same configuration and cache.
        """
        key = fingerprint(
            "dataset", *(self.stage_key(stage) for stage in Stage)
        )
        return self.cache.get_or_build("dataset", key, self._assemble_dataset)

    def _assemble_dataset(self) -> StudyDataset:
        plan = self.policies()
        observed = self.observation()
        return StudyDataset(
            parameters=self.config.dataset_parameters(),
            internet=self.topology(),
            assignment=plan.assignment,
            result=self.propagation(),
            collector=observed.collector,
            looking_glasses=dict(observed.looking_glasses),
            irr=self.irr(),
            vantage_ases=list(plan.vantage_ases),
            looking_glass_ases=list(plan.looking_glass_ases),
            as_info=dict(observed.as_info),
            analysis_parameters=self.config.analysis,
        )

    def view(self, requires: frozenset[Stage] = ALL_STAGES) -> StageView:
        """A stage-gated view over the assembled dataset."""
        return StageView(self.dataset(), requires)


def study_from_dataset_parameters(
    parameters: DatasetParameters | None = None, *, cache: StageCache | None = None
) -> Study:
    """A study equivalent to the legacy ``build_dataset(parameters)`` call."""
    config = (
        StudyConfig.from_dataset_parameters(parameters)
        if parameters is not None
        else StudyConfig()
    )
    return Study(config, cache=cache)
